#!/usr/bin/env python3
"""Procedure equivalence checking (paper §6.4, Fig. 9).

Checks that different sorting algorithms are pairwise equivalent: called
on equal inputs they produce equal outputs.  Following the paper, the
argument reduces to the validity of formula (C):

    equal(I1, I2) ∧ sorted(O1) ∧ ms(I1)=ms(O1)
                  ∧ sorted(O2) ∧ ms(I2)=ms(O2)  ⊨  equal(O1, O2)

whose key step -- two sorted lists with equal multisets are pointwise
equal -- is derived by the strengthen operator (σ_M head reasoning).

Run:  python examples/equivalence_checking.py
"""

from repro import Analyzer
from repro.core.equivalence import check_formula_c, check_equivalence
from repro.lang.benchlib import benchmark_program


def main(full: bool = False) -> None:
    print("Step 1: validity of formula (C) via the combination mechanism")
    valid = check_formula_c()
    print("  sorted(o1) & sorted(o2) & ms(o1)=ms(o2) |= equal(o1, o2):",
          "PASS" if valid else "FAIL")
    assert valid

    print()
    print("Step 2: the AM half -- all sorts preserve the input multiset,")
    print("so equal inputs give outputs with equal multisets:")
    analyzer = Analyzer(benchmark_program())
    from repro.core.equivalence import _check_ms_preserved

    for proc in ["insertsort", "mergesort", "quicksort", "bubblesort"]:
        am = analyzer.analyze(proc, domain="am")
        cfg = analyzer.icfg.cfg(proc)
        out_var = next(p.name for p in cfg.outputs if p.type == "list")
        in_var = next(p.name for p in cfg.inputs if p.type == "list")
        ok = _check_ms_preserved(am, in_var, out_var)
        print(f"  {proc:<12} ms preserved:", "PASS" if ok else "FAIL")
        assert ok

    if not full:
        print()
        print("(run with --full for the complete sortedness-summary check;")
        print(" it re-analyzes each sort in the strengthened AU domain)")
        return

    print()
    print("Step 3: pairwise equivalence (full strengthened AU analyses)")
    pairs = [("insertsort", "mergesort")]
    for p1, p2 in pairs:
        result = check_equivalence(analyzer, p1, p2)
        status = "EQUIVALENT" if result.equivalent else "NOT PROVED"
        print(f"  {p1} ~ {p2}: {status} ({result.detail})")


if __name__ == "__main__":
    import sys

    main(full="--full" in sys.argv)
