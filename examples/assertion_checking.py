#!/usr/bin/env python3
"""Pre/post-condition reasoning with assume/assert (paper §6.3).

LISL programs can carry ``assume``/``assert`` statements over the derived
predicates ``sorted``, ``ms_eq``, ``equal`` and affine data comparisons.
The engine checks asserts against the abstract state (after folding), with
the entailment operator of the corresponding domain.

Run:  python examples/assertion_checking.py
"""

from repro import Analyzer
from repro.core.assertions import AssertionChecker

SOURCE = """
proc floor_at(x: list, lo: int) returns (r: list) {
  local c: list;
  local e: int;
  r = x;
  c = x;
  while (c != NULL) {
    e = c->data;
    if (e < lo) {
      c->data = lo;
    }
    c = c->next;
  }
}

proc client(x: list, lo: int) returns (r: list) {
  local e: int;
  r = floor_at(x, lo);
  if (r != NULL) {
    e = r->data;
    assert e >= lo;
  }
}

proc bad_client(x: list, lo: int) returns (r: list) {
  local e: int;
  r = floor_at(x, lo);
  if (r != NULL) {
    e = r->data;
    assert e > lo;     // too strong: elements may equal lo
  }
}
"""


def run(proc: str) -> bool:
    analyzer = Analyzer.from_source(SOURCE)
    checker = AssertionChecker()
    analyzer.analyze(proc, domain="au", assume_handler=checker)
    for outcome in checker.outcomes:
        print(f"  [{proc}] assert {outcome.formula}: "
              f"{'VERIFIED' if outcome.verified else 'NOT VERIFIED'}")
    return checker.all_verified()


def main() -> None:
    print("Checking a valid postcondition:")
    ok = run("client")
    assert ok

    print()
    print("Checking an invalid (too strong) postcondition:")
    bad = run("bad_client")
    assert not bad
    print()
    print("The analysis correctly verifies the first and rejects the second.")


if __name__ == "__main__":
    main()
