#!/usr/bin/env python3
"""Quickstart: synthesize procedure summaries for a list program.

Reproduces the paper's headline workflow: write a small list-manipulating
procedure, run the inter-procedural analysis in both abstract domains, and
read off the synthesized summary -- the relation between the procedure's
entry state (the ``$0`` snapshot vocabulary) and its exit state.

Run:  python examples/quickstart.py
"""

from repro import Analyzer

SOURCE = """
// Overwrite every element of the list with v and return the same list.
proc init(x: list, v: int) returns (r: list) {
  local c: list;
  r = x;
  c = x;
  while (c != NULL) {
    c->data = v;
    c = c->next;
  }
}
"""


def main() -> None:
    analyzer = Analyzer.from_source(SOURCE)

    print("=" * 72)
    print("AM (multiset) summary of init -- what is preserved:")
    print("=" * 72)
    am = analyzer.analyze("init", domain="am")
    print(am.describe())

    print()
    print("=" * 72)
    print("AU (universal formulas) summary of init -- paper Table 1 row:")
    print("   len(x0) = len(x)  &  hd(x) = v  &  forall y in tl(x). x[y] = v")
    print("=" * 72)
    au = analyzer.analyze("init", domain="au")
    print(au.describe())

    # Programmatic access: check the paper's summary is entailed.
    from repro.datawords import terms as T
    from repro.datawords.patterns import GuardInstance
    from repro.numeric.linexpr import Constraint, LinExpr
    from repro.shape.graph import NULL

    for entry, summary in au.summaries:
        for heap in summary:
            node = heap.graph.labels.get("r", NULL)
            if node == NULL:
                continue
            snapshot = heap.graph.node_of(T.entry_copy("x"))
            value = heap.value
            checks = {
                "len(x) == len(x$0)": value.E.entails(
                    Constraint.eq(
                        LinExpr.var(T.length(node)),
                        LinExpr.var(T.length(snapshot)),
                    )
                ),
                "hd(x) == v": value.E.entails(
                    Constraint.eq(LinExpr.var(T.hd(node)), LinExpr.var("v"))
                ),
            }
            gi = GuardInstance("ALL1", (node,))
            body = value.clauses.get(gi)
            checks["forall y. x[y] == v"] = body is not None and body.entails(
                Constraint.eq(
                    LinExpr.var(T.elem(node, "y1")), LinExpr.var("v")
                )
            )
            print()
            for name, ok in checks.items():
                print(f"  {'PASS' if ok else 'FAIL'}  {name}")
            assert all(checks.values())


if __name__ == "__main__":
    main()
