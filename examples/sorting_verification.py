#!/usr/bin/env python3
"""Verify sorting procedures: multiset preservation + domain combination.

This example reproduces the paper's §5/§7 sorting story:

1. every sorting routine's AM summary proves ``ms(input) = ms(output)``
   (the *preservation* property -- beyond reachability-based methods,
   because the sorts permute data);
2. the combination mechanism: from ``ms(n) = ms(l)`` and ``all elements of
   l are <= d``, strengthen_M recovers the same bound on ``n`` -- the step
   that makes quicksort's sortedness derivable at recursive returns.

Run:  python examples/sorting_verification.py
"""

from fractions import Fraction

from repro import Analyzer
from repro.core.combine import sigma_m_strengthen, strengthen
from repro.datawords import terms as T
from repro.datawords.multiset import MultisetDomain, MultisetValue
from repro.datawords.patterns import GuardInstance, pattern_set
from repro.datawords.universal import UniversalDomain, UniversalValue
from repro.lang.benchlib import benchmark_program
from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron
from repro.shape.graph import NULL

AM = MultisetDomain()


def check_preservation(analyzer: Analyzer, proc: str) -> bool:
    """Does the AM summary entail ms(input at entry) = ms(output)?"""
    result = analyzer.analyze(proc, domain="am")
    cfg = analyzer.icfg.cfg(proc)
    in_var = next(p.name for p in cfg.inputs if p.type == "list")
    out_var = next(p.name for p in cfg.outputs if p.type == "list")
    checked = False
    for entry, summary in result.summaries:
        for heap in summary:
            n_in = heap.graph.labels.get(T.entry_copy(in_var), NULL)
            n_out = heap.graph.labels.get(out_var, NULL)
            if n_in == NULL or n_out == NULL:
                continue
            checked = True
            row = {
                T.mhd(n_in): Fraction(1),
                T.mtl(n_in): Fraction(1),
                T.mhd(n_out): Fraction(-1),
                T.mtl(n_out): Fraction(-1),
            }
            if not AM.entails_row(heap.value, row):
                return False
    return checked


def demo_strengthen() -> None:
    """The §5 quicksort step: recover '<= pivot' after a recursive call."""
    domain = UniversalDomain(pattern_set("P=", "P1"))
    # Before the call: all elements of `left` are <= the pivot d.
    all_left = GuardInstance("ALL1", ("left",))
    known = UniversalValue(
        Polyhedron.of(Constraint.le(LinExpr.var(T.hd("left")), LinExpr.var("d"))),
        {
            all_left: Polyhedron.of(
                Constraint.le(
                    LinExpr.var(T.elem("left", "y1")), LinExpr.var("d")
                )
            )
        },
    )
    # The AM summary of the recursive call: ms(left') = ms(left).
    ms_summary = MultisetValue(
        [
            {
                T.mhd("left'"): Fraction(1),
                T.mtl("left'"): Fraction(1),
                T.mhd("left"): Fraction(-1),
                T.mtl("left"): Fraction(-1),
            }
        ]
    )
    out = strengthen(domain, known, ms_summary, AM)
    head_ok = out.E.entails(
        Constraint.le(LinExpr.var(T.hd("left'")), LinExpr.var("d"))
    )
    gi = GuardInstance("ALL1", ("left'",))
    tail_ok = gi in out.clauses and out.clauses[gi].entails(
        Constraint.le(LinExpr.var(T.elem("left'", "y1")), LinExpr.var("d"))
    )
    print("  strengthen_M recovers  hd(left') <= d        :", "PASS" if head_ok else "FAIL")
    print("  strengthen_M recovers  forall y. left'[y] <= d:", "PASS" if tail_ok else "FAIL")
    assert head_ok and tail_ok


def main() -> None:
    analyzer = Analyzer(benchmark_program())
    print("Multiset preservation (paper: ms(x) = ms(x0) = ms(res)):")
    for proc in ["bubblesort", "insertsort", "quicksort", "mergesort"]:
        ok = check_preservation(analyzer, proc)
        print(f"  {proc:<12} ms(input) = ms(output):", "PASS" if ok else "FAIL")
        assert ok

    print()
    print("Domain combination at quicksort's recursive return (paper §5):")
    demo_strengthen()


if __name__ == "__main__":
    main()
