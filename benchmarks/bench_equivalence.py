"""Experiment E5 (paper §6.4/§7): equivalence checking of sorting routines.

The paper checks pairs of sorting procedures equivalent via the Fig. 9
two-copies program, reduced to the validity of formula (C); "the time
needed to check the validity of (C) is negligible compared with the time
to compute the procedure summaries" -- we benchmark both parts and check
the same relation holds.
"""

import time

import pytest

from repro.core.equivalence import check_equivalence, check_formula_c
from repro.lang.benchlib import benchmark_program


@pytest.fixture(scope="module")
def analyzer():
    from repro import Analyzer

    return Analyzer(benchmark_program())


def test_formula_c_validity(benchmark):
    valid = benchmark.pedantic(check_formula_c, rounds=1, iterations=1)
    assert valid


def test_formula_c_negligible_vs_summary(analyzer):
    t0 = time.perf_counter()
    check_formula_c()
    formula_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    analyzer.analyze("insertsort", domain="am")
    summary_time = time.perf_counter() - t0
    # The paper: negligible.  We require it to be at most comparable.
    assert formula_time < max(0.5, 5 * summary_time)


def test_multiset_equivalence_of_sorts(benchmark, analyzer):
    """The AM half of the reduction: every sort preserves the multiset, so
    on equal inputs all outputs carry the same multiset."""
    from fractions import Fraction

    from repro.core.equivalence import _check_ms_preserved
    from repro.lang.cfg import build_icfg

    def run():
        results = {}
        for proc in ["insertsort", "mergesort", "quicksort", "bubblesort"]:
            am = analyzer.analyze(proc, domain="am")
            cfg = analyzer.icfg.cfg(proc)
            out_var = next(p.name for p in cfg.outputs if p.type == "list")
            in_var = next(p.name for p in cfg.inputs if p.type == "list")
            results[proc] = _check_ms_preserved(am, in_var, out_var)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  summary cache after sweep: {analyzer.cache.stats()}")
    assert all(results.values()), results
