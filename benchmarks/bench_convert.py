"""Experiment E4 (paper §6.1/§7): pattern-set conversion at call boundaries.

The paper's scenario: bubblesort is analyzed with {P=, P1, P2} and clone
with {P=} only.  At the return from clone, the caller knows ``sorted(x)``
and ``eq≈(y, x)``; the sortedness of y is *not* in clone's summary (its
pattern set cannot express it) and must be recovered by the strengthen /
convert operation.  We reproduce that recovery, plus the §5 convert
example (ORD2 sortedness to the SUCC2 pattern form).
"""

import pytest

from repro.core.combine import convert_value, strengthen
from repro.datawords import terms as T
from repro.datawords.patterns import GuardInstance, pattern_set
from repro.datawords.universal import UniversalDomain, UniversalValue
from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron


def v(name):
    return LinExpr.var(name)


def sorted_clauses(domain, value, word):
    value = domain.meet_clause(
        value,
        GuardInstance("ORD2", (word,)),
        Polyhedron.of(
            Constraint.le(v(T.elem(word, "y1")), v(T.elem(word, "y2")))
        ),
    )
    return domain.meet_clause(
        value,
        GuardInstance("ALL1", (word,)),
        Polyhedron.of(Constraint.le(v(T.hd(word)), v(T.elem(word, "y1")))),
    )


def clone_return_context():
    """Caller state after `y = clone(x)` with sorted x.

    The caller domain has {P=, P1, P2}; clone's summary contributed
    eq≈(y, x) (expressed over P= patterns).
    """
    caller = UniversalDomain(pattern_set("P=", "P1", "P2"))
    value = caller.top()
    value = sorted_clauses(caller, value, "x")
    value = caller.add_word_copy_eq(value, "y", "x")
    return caller, value


def is_sorted(domain, value, word) -> bool:
    gi = GuardInstance("ORD2", (word,))
    ctx = value.E.meet(gi.guard_poly()).meet(
        value.clauses.get(gi, Polyhedron.top())
    )
    return not ctx.is_top() and (
        ctx.is_bottom()
        or ctx.entails(
            Constraint.le(v(T.elem(word, "y1")), v(T.elem(word, "y2")))
        )
    )


def test_sortedness_not_directly_in_clone_summary():
    """clone's own pattern set {P=} cannot state sortedness of y."""
    clone_domain = UniversalDomain(pattern_set("P="))
    assert "ORD2" not in clone_domain.patterns


def test_recovery_via_convert(benchmark):
    caller, value = clone_return_context()

    def run():
        # convert re-expresses the combined value over the caller's
        # patterns: the ORD2(y) clause is derived from eq≈(y, x) ∧ ORD2(x).
        return convert_value(value, caller, caller)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert is_sorted(caller, out, "y")


def test_recovery_is_nontrivial():
    """Without the conversion the ORD2(y) clause is absent."""
    caller, value = clone_return_context()
    assert not is_sorted(caller, value, "y")


def test_section5_convert_example(benchmark):
    """ORD2 sortedness to the {FST1, SUCC2, LST1} pattern form (§5)."""
    src = UniversalDomain(pattern_set("P2"))
    dst = UniversalDomain(pattern_set("SUCC2"))
    value = sorted_clauses(src, src.top(), "n")

    out = benchmark.pedantic(
        convert_value, args=(value, src, dst), rounds=1, iterations=1
    )
    succ = GuardInstance("SUCC2", ("n",))
    assert succ in out.clauses
    assert out.clauses[succ].entails(
        Constraint.le(v(T.elem("n", "y1")), v(T.elem("n", "y2")))
    )
