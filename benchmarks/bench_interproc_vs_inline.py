"""Experiment E2 (paper §7): compositional analysis scalability.

The paper: "consider a program that calls the init(v) function on 10
different lists.  Our analysis computes once the summary of this function
and reuses it, while the analysis after inlining computes successively the
effect of all the calls.  Thus, the inter-procedural analysis is ten times
faster."

We reproduce the setup with ten successive init calls versus the manually
inlined ten-loop program, and assert the compositional analysis wins by a
substantial factor (the exact ratio depends on the summary-reuse hit rate,
checked separately).
"""

import time

import pytest

from repro import Analyzer

CALLS = 10


def _call_program(n):
    calls = "\n".join(f"  r = init(r, v);" for _ in range(n))
    return f"""
proc init(x: list, v: int) returns (r: list) {{
  local c: list;
  r = x;
  c = x;
  while (c != NULL) {{ c->data = v; c = c->next; }}
}}
proc main(x: list, v: int) returns (r: list) {{
  r = x;
{calls}
}}
"""


def _inline_program(n):
    loops = "\n".join(
        f"  c = r;\n  while (c != NULL) {{ c->data = v; c = c->next; }}"
        for _ in range(n)
    )
    return f"""
proc main(x: list, v: int) returns (r: list) {{
  local c: list;
  r = x;
{loops}
}}
"""


def analyze_main(source):
    analyzer = Analyzer.from_source(source)
    return analyzer.analyze("main", domain="au")


def _print_engine_stats(label, stats):
    sched = stats.get("scheduler", {})
    cache = stats.get("cache", {})
    print(
        f"\n  {label}: records={stats.get('records')} steps={stats.get('steps')} "
        f"reanalyzed={stats.get('records.reanalyzed', 0)} "
        f"sched[{sched.get('policy')}] pops={sched.get('pops')} "
        f"cache hits={cache.get('hits', 0)}/{cache.get('hits', 0) + cache.get('misses', 0)}"
    )


def test_interproc_reuses_summary(benchmark):
    result = benchmark.pedantic(
        analyze_main, args=(_call_program(CALLS),), rounds=1, iterations=1
    )
    _print_engine_stats("interproc", result.stats)
    # one init record per entry shape, not one per call site
    init_records = [k for k in result.engine.records if k[0] == "init"]
    assert len(init_records) <= 2


def test_inline_baseline(benchmark):
    result = benchmark.pedantic(
        analyze_main, args=(_inline_program(CALLS),), rounds=1, iterations=1
    )
    _print_engine_stats("inline", result.stats)
    assert result.summaries


def test_repeated_analysis_hits_cache():
    """Re-analysis through the same analyzer is a summary-cache lookup."""
    analyzer = Analyzer.from_source(_call_program(3))
    cold = analyzer.analyze("main", domain="au")
    t0 = time.perf_counter()
    warm = analyzer.analyze("main", domain="au")
    warm_time = time.perf_counter() - t0
    _print_engine_stats(f"warm rerun ({warm_time:.4f}s)", warm.stats)
    assert warm.stats["from_cache"]
    assert warm.stats["cache"]["hit_rate"] > 0
    assert len(warm.summaries) == len(cold.summaries)


def test_speedup_factor():
    # A smaller instance keeps the default benchmark run quick; the full
    # 10-call figure is reported by the pedantic benchmarks above.
    n = 5
    t0 = time.perf_counter()
    analyze_main(_call_program(n))
    interproc = time.perf_counter() - t0
    t0 = time.perf_counter()
    analyze_main(_inline_program(n))
    inline = time.perf_counter() - t0
    # The paper reports ~10x for 10 calls; we require a clear win and
    # report the measured ratio in EXPERIMENTS.md.
    assert inline > 1.5 * interproc, (
        f"expected compositional win, got inline={inline:.2f}s "
        f"interproc={interproc:.2f}s"
    )
