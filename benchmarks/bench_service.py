#!/usr/bin/env python3
"""Cold vs warm-resubmit latency of the incremental analysis service.

Runs the Table 1 suite (paper §7, AM domain — every row completes fast)
through an incremental session three times:

- **cold**: empty store, every root analyzed from scratch;
- **warm noop**: resubmit the identical program — everything should be
  answered from retained results, near-zero work;
- **warm edit**: a scripted single-procedure edit — only the edited
  procedure's upward call-graph cone re-analyzes, the rest is reused.

The warm-edit hashes are checked against a cold run of the edited
program (the service's core invariant), so the benchmark doubles as an
end-to-end correctness smoke.

Usage:  python benchmarks/bench_service.py [--json PATH] [--edit PROC]
                                           [--domain am]
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.api import Analyzer
from repro.lang.benchlib import TABLE1, BENCHMARK_SOURCE


def edit_procedure(source, proc):
    """Declare a fresh local at the top of ``proc`` and assign it at the
    end of the body (same scripted edit as tests/test_service.py)."""
    at = source.index(f"proc {proc}(")
    open_brace = source.index("{", at)
    depth, close_brace = 0, -1
    for i in range(open_brace, len(source)):
        if source[i] == "{":
            depth += 1
        elif source[i] == "}":
            depth -= 1
            if depth == 0:
                close_brace = i
                break
    return (
        source[: open_brace + 1]
        + " local __edit: int; "
        + source[open_brace + 1 : close_brace]
        + " __edit = 1; "
        + source[close_brace:]
    )


def hashes(report):
    return {t: out.summary_hashes for t, out in report.outputs.items()}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--json", type=str, default=None,
                        help="write the timing artifact to this path")
    parser.add_argument("--edit", type=str, default="init",
                        help="procedure for the scripted edit")
    parser.add_argument("--domain", type=str, default="am",
                        choices=("am", "au"))
    parser.add_argument("--store", type=str, default=None,
                        help="store directory (default: a temporary one)")
    args = parser.parse_args()

    roots = sorted({entry.name for entry in TABLE1})
    analyzer = Analyzer.from_source(BENCHMARK_SOURCE)
    session = analyzer.open_session(store_dir=args.store)

    t0 = time.perf_counter()
    cold = session.analyze(procs=roots, domains=(args.domain,))
    cold_s = time.perf_counter() - t0
    assert cold.ok, "cold run failed"
    print(f"cold          {cold_s:7.2f}s  "
          f"analyzed={len(cold.analyzed)} reused={len(cold.reused)}")

    t0 = time.perf_counter()
    noop = session.analyze(procs=roots, domains=(args.domain,))
    noop_s = time.perf_counter() - t0
    print(f"warm (no-op)  {noop_s:7.2f}s  "
          f"analyzed={len(noop.analyzed)} reused={len(noop.reused)}")

    edited = edit_procedure(BENCHMARK_SOURCE, args.edit)
    t0 = time.perf_counter()
    delta = session.update_source(edited)
    warm = session.analyze(procs=roots, domains=(args.domain,))
    warm_s = time.perf_counter() - t0
    assert warm.ok, "warm run failed"
    print(f"warm (edit)   {warm_s:7.2f}s  "
          f"analyzed={len(warm.analyzed)} reused={len(warm.reused)}  "
          f"dirty={sorted(delta.dirty)}")

    baseline = Analyzer.from_source(edited).open_session().analyze(
        procs=roots, domains=(args.domain,)
    )
    assert hashes(warm) == hashes(baseline), (
        "warm-resubmit hashes differ from a cold run of the edited program"
    )
    print("warm hashes identical to cold run of the edited program: OK")
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(f"warm-edit speedup over cold: {speedup:.1f}x")

    if args.json:
        artifact = {
            "suite": "table1",
            "domain": args.domain,
            "roots": roots,
            "edited_proc": args.edit,
            "cold_s": round(cold_s, 4),
            "warm_noop_s": round(noop_s, 4),
            "warm_edit_s": round(warm_s, 4),
            "speedup": round(speedup, 2),
            "cold_analyzed": len(cold.analyzed),
            "warm_analyzed": len(warm.analyzed),
            "warm_reused": len(warm.reused),
            "dirty_cone": sorted(delta.dirty),
            "sccs_total": warm.incremental["sccs_total"],
            "sccs_analyzed": warm.incremental["sccs_analyzed"],
            "hashes_identical": True,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2)
        print(f"wrote {args.json}")

    session.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
