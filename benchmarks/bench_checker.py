#!/usr/bin/env python3
"""Checker smoke benchmark: lint + safety wall time over the corpora.

Three lanes, each timed separately:

- **corpus**: every ``.lisl`` file under tests/corpus/{buggy,clean} and
  examples/ through the full two-tier ``check_source`` driver, recording
  per-file wall time and the finding tally;
- **table1**: a fast subset of the Table 1 functions (paper §7) through
  the Tier-B safety checker alone, asserting zero ``unsafe`` verdicts
  (the suite-wide soundness smoke — the full sweep lives in
  run_table1.py's checker column);
- **lint-only**: the same corpus files with ``tier="lint"``, isolating
  the Tier-A dataflow pass from the fixpoint engine.

Usage:  python benchmarks/bench_checker.py [--json PATH] [--k 0]
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.checker import CheckOptions, SafetyOptions, check_source
from repro.checker.safety import check_safety
from repro.core.api import Analyzer
from repro.lang.benchlib import BENCHMARK_SOURCE

REPO = os.path.join(os.path.dirname(__file__), "..")
CORPUS_DIRS = (
    os.path.join(REPO, "tests", "corpus", "buggy"),
    os.path.join(REPO, "tests", "corpus", "clean"),
    os.path.join(REPO, "examples"),
)
# Fast Table 1 subset: one representative per class that completes in
# well under a second each on the AM domain.
TABLE1_SUBSET = ("create", "addfst", "delfst", "init", "max", "concat")


def corpus_files():
    files = []
    for directory in CORPUS_DIRS:
        for name in sorted(os.listdir(directory)):
            if name.endswith(".lisl"):
                files.append(os.path.join(directory, name))
    return files


def run_corpus(files, tier):
    rows = []
    for path in files:
        source = open(path, encoding="utf-8").read()
        t0 = time.perf_counter()
        report = check_source(source, CheckOptions(tier=tier), path=path)
        seconds = time.perf_counter() - t0
        rows.append(
            {
                "file": os.path.relpath(path, REPO),
                "seconds": round(seconds, 4),
                "findings": len(report.findings),
            }
        )
    return rows


def run_table1_subset(k):
    analyzer = Analyzer.from_source(BENCHMARK_SOURCE)
    t0 = time.perf_counter()
    report = check_safety(
        analyzer, SafetyOptions(domain="am", k=k, procs=TABLE1_SUBSET)
    )
    seconds = time.perf_counter() - t0
    counts = report.counts()
    assert not counts.get("unsafe"), (
        f"UNSAFE verdict on the Table 1 subset: {counts}"
    )
    return {
        "procs": list(TABLE1_SUBSET),
        "seconds": round(seconds, 4),
        "verdicts": counts,
        "proc_status": dict(report.proc_status),
    }


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--json", type=str, default=None,
                        help="write the timing artifact to this path")
    parser.add_argument("--k", type=int, default=0,
                        help="data-word bound for the Tier-B domain")
    args = parser.parse_args()

    files = corpus_files()

    full = run_corpus(files, tier="all")
    full_s = sum(row["seconds"] for row in full)
    findings = sum(row["findings"] for row in full)
    print(f"corpus (both tiers)  {full_s:7.3f}s  "
          f"{len(full)} files, {findings} findings")

    lint = run_corpus(files, tier="lint")
    lint_s = sum(row["seconds"] for row in lint)
    print(f"corpus (lint only)   {lint_s:7.3f}s  "
          f"{len(lint)} files, {sum(r['findings'] for r in lint)} findings")

    table1 = run_table1_subset(args.k)
    tally = " ".join(
        f"{v}={table1['verdicts'][v]}" for v in sorted(table1["verdicts"])
    )
    print(f"table1 subset (B)    {table1['seconds']:7.3f}s  "
          f"{len(table1['procs'])} procs, {tally} — no unsafe: OK")

    if args.json:
        artifact = {
            "suite": "checker",
            "k": args.k,
            "corpus_all_s": round(full_s, 4),
            "corpus_lint_s": round(lint_s, 4),
            "corpus_files": full,
            "table1_subset": table1,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
