#!/usr/bin/env python3
"""Demand-query latency against an in-process gateway.

One gateway (inline jobs, warm sessions), one tenant, the Table 1
benchmark program (every paper procedure plus its helpers).  For each
Table 1 root the script issues the same single-obligation ``check``
query twice — the **cold** answer runs the backward-cone analysis
through :class:`~repro.core.strategy.DemandStrategy`, the **warm**
repeats answer from the gateway's cone-keyed query cache — and records
per-query latency plus cone size against the whole-program procedure
count.

Two gates (exit 1 on failure, mirrored in ``BENCH_query.json``):

- warm answers are sub-100ms (they are cache restores, not fixpoints);
- the backward cone is strictly smaller than the whole program on at
  least 80% of the queried roots (the demand win is real scoping, not
  bookkeeping).

The artifact doubles as the query-path regression record
(``BENCH_query.json`` in CI).

Usage:  python benchmarks/bench_query.py [--json PATH] [--repeats N]
                                         [--budget SECONDS]
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.gateway.server import GatewayConfig, GatewayThread
from repro.lang.benchlib import BENCHMARK_SOURCE, TABLE1
from repro.service.client import ServiceClient

WARM_BUDGET_MS = 100.0
CONE_FLOOR = 0.8


def pctl(samples, q):
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(len(ordered) * q / 100.0)))
    return ordered[rank]


def _connect(gw) -> ServiceClient:
    _, (host, port) = gw.address
    return ServiceClient.connect_tcp(host, port)


def run_queries(client, roots, repeats, budget):
    rows = []
    for root in roots:
        t0 = time.perf_counter()
        cold = client.check(
            BENCHMARK_SOURCE, query=f"{root}:0", max_seconds=budget
        )
        cold_ms = (time.perf_counter() - t0) * 1000.0
        assert cold.get("ok"), cold
        result = cold["result"]
        assert result["mode"] == "cold", result["mode"]
        answer = result["query"]
        warm_ms = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            warm = client.check(
                BENCHMARK_SOURCE, query=f"{root}:0", max_seconds=budget
            )
            warm_ms.append((time.perf_counter() - t0) * 1000.0)
            assert warm["result"]["mode"] == "warm", warm["result"]["mode"]
            assert warm["result"]["query"] == answer, (
                f"warm answer for {root} diverged from cold"
            )
        row = {
            "proc": root,
            "verdict": answer["verdict"],
            "cone_size": answer["cone_size"],
            "proc_count": answer["proc_count"],
            "cold_ms": round(cold_ms, 3),
            "warm_p50_ms": round(pctl(warm_ms, 50), 3),
            "warm_max_ms": round(max(warm_ms), 3),
        }
        rows.append(row)
        print(
            f"  {root:>12}: cone {row['cone_size']}/{row['proc_count']} "
            f"cold={row['cold_ms']:.1f}ms warm={row['warm_p50_ms']:.2f}ms "
            f"verdict={row['verdict']}"
        )
    return rows


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--json", type=str, default=None,
                        help="write the timing artifact to this path")
    parser.add_argument("--repeats", type=int, default=5,
                        help="warm repeats per query")
    parser.add_argument("--budget", type=float, default=60.0,
                        help="per-query analysis budget (seconds)")
    args = parser.parse_args()

    roots = [e.name for e in TABLE1]
    gw = GatewayThread(GatewayConfig(jobs=0, workers=1)).start()
    try:
        with _connect(gw) as client:
            print(f"query bench: {len(roots)} Table 1 roots, "
                  f"{args.repeats} warm repeats each")
            rows = run_queries(client, roots, args.repeats, args.budget)
            metrics_text = client.metrics()
    finally:
        gw.stop()

    cold = [r["cold_ms"] for r in rows]
    warm_p50 = [r["warm_p50_ms"] for r in rows]
    warm_max = max(r["warm_max_ms"] for r in rows)
    smaller = [r for r in rows if r["cone_size"] < r["proc_count"]]
    cone_fraction = len(smaller) / len(rows)
    warm_ok = warm_max < WARM_BUDGET_MS
    cone_ok = cone_fraction >= CONE_FLOOR
    print(f"cold: p50={pctl(cold, 50):.1f}ms p95={pctl(cold, 95):.1f}ms; "
          f"warm: p50={pctl(warm_p50, 50):.2f}ms max={warm_max:.2f}ms "
          f"({'<' if warm_ok else '>='} {WARM_BUDGET_MS:.0f}ms budget)")
    print(f"cone < program on {len(smaller)}/{len(rows)} queries "
          f"({cone_fraction:.0%}, floor {CONE_FLOOR:.0%})")
    query_metrics = [
        line for line in metrics_text.splitlines()
        if line.startswith("repro_query_total")
    ]
    print("metrics:", "; ".join(query_metrics))

    if args.json:
        artifact = {
            "suite": "query",
            "program": "table1",
            "queries": len(rows),
            "repeats": args.repeats,
            "cold_p50_ms": round(pctl(cold, 50), 3),
            "cold_p95_ms": round(pctl(cold, 95), 3),
            "warm_p50_ms": round(pctl(warm_p50, 50), 3),
            "warm_max_ms": round(warm_max, 3),
            "warm_budget_ms": WARM_BUDGET_MS,
            "warm_under_budget": warm_ok,
            "cone_smaller_fraction": round(cone_fraction, 3),
            "cone_floor": CONE_FLOOR,
            "per_query": rows,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2)
        print(f"wrote {args.json}")
    if not warm_ok:
        print("FAIL: a warm query exceeded the latency budget",
              file=sys.stderr)
        return 1
    if not cone_ok:
        print("FAIL: backward cones not smaller than the program on "
              f"{CONE_FLOOR:.0%} of queries", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
