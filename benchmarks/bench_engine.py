"""Engine subsystem benchmarks: scheduler churn and summary-cache reuse.

Three claims, each checked as a test and printed with the engine's own
telemetry so the numbers travel with the timings:

1. **Cache reuse** — re-analyzing the same procedure through the same
   analyzer is a cache lookup: hit rate > 0 and the repeat runs orders of
   magnitude faster, with identical summaries.
2. **Scheduler churn** — on programs with recursive callees behind
   intermediate callers, the SCC-bottom-up policy strictly reduces record
   re-analyses versus the seed's FIFO (callee summaries are complete
   before callers consume them).
3. **Equivalence reuse** — ``check_equivalence`` repeats the AM pass of
   each procedure inside the strengthened analysis; the analyzer cache
   collapses the repeats (hits > 0) without changing the verdict.

Run directly for a report: ``python benchmarks/bench_engine.py``.
"""

import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro import Analyzer, EngineOptions

NESTED_RECURSION = """
proc sumlen(x: list) returns (n: int) {
  local t: list;
  local m: int;
  if (x == NULL) { n = 0; }
  else { t = x->next; m = sumlen(t); n = m + 1; }
}
proc mid(x: list) returns (n: int) { n = sumlen(x); }
proc main(x: list, y: list) returns (n: int) {
  local a, b: int;
  a = mid(x);
  b = sumlen(y);
  n = a + b;
}
"""


def _summary_fingerprint(result):
    domain = result.domain
    out = []
    for entry, summary in result.summaries:
        out.append(
            (
                entry.graph.key(),
                tuple(
                    sorted(
                        (h.graph.key(), domain.describe(h.value)) for h in summary
                    )
                ),
            )
        )
    return out


def _engine_line(stats):
    sched = stats.get("scheduler", {})
    cache = stats.get("cache", {})
    return (
        f"records={stats.get('records')} steps={stats.get('steps')} "
        f"reanalyzed={stats.get('records.reanalyzed', 0)} "
        f"sched[{sched.get('policy')}] pops={sched.get('pops')} "
        f"requeues={sched.get('requeues')} "
        f"cache hits={cache.get('hits', 0)} misses={cache.get('misses', 0)} "
        f"hit_rate={cache.get('hit_rate', 0.0)}"
    )


def test_cache_hit_on_repeated_analysis():
    analyzer = Analyzer.from_source(NESTED_RECURSION)
    t0 = time.perf_counter()
    first = analyzer.analyze("main", domain="au")
    cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    second = analyzer.analyze("main", domain="au")
    warm = time.perf_counter() - t0
    print(f"\n  cold={cold:.3f}s  {_engine_line(first.stats)}")
    print(f"  warm={warm:.5f}s  {_engine_line(second.stats)}")
    assert second.stats["from_cache"]
    assert second.stats["cache"]["hits"] > 0
    assert _summary_fingerprint(first) == _summary_fingerprint(second)
    # The warm run is a dict lookup; "measurably faster" with huge margin.
    assert warm < cold / 5


def test_scc_scheduler_reduces_reanalysis_churn():
    results = {}
    for policy in ("fifo", "scc"):
        analyzer = Analyzer.from_source(NESTED_RECURSION)
        res = analyzer.analyze(
            "main",
            domain="au",
            engine_opts=EngineOptions(scheduler=policy, use_cache=False),
        )
        results[policy] = res
        print(f"\n  {policy}: {_engine_line(res.stats)}")
    fifo, scc = results["fifo"], results["scc"]
    assert _summary_fingerprint(fifo) == _summary_fingerprint(scc)
    assert (
        scc.stats.get("records.reanalyzed", 0)
        < fifo.stats.get("records.reanalyzed", 0)
    )
    assert scc.stats["steps"] <= fifo.stats["steps"]


def test_equivalence_check_reuses_summaries():
    from repro.core.equivalence import check_equivalence
    from repro.lang.benchlib import benchmark_program

    # init keeps the benchmark fast (strengthened AU of the sorting class
    # takes minutes in pure Python); its verdict is rightly negative (init
    # overwrites the data, so multiset preservation cannot be derived) but
    # all four analysis passes run and the cache collapses the repeats.
    analyzer = Analyzer(benchmark_program())
    t0 = time.perf_counter()
    res = check_equivalence(analyzer, "init", "init")
    elapsed = time.perf_counter() - t0
    cache = (res.stats or {}).get("cache", {})
    print(f"\n  equivalence {elapsed:.3f}s  cache={cache}")
    assert res.detail == "multiset preservation not derived", res.detail
    # proc1 == proc2: the second _sort_summary repeats every analysis of
    # the first, and analyze_strengthened repeats the AM pass -- all hits.
    assert cache.get("hits", 0) > 0


def main():
    print("engine subsystem benchmarks")
    print("===========================")
    for test in (
        test_cache_hit_on_repeated_analysis,
        test_scc_scheduler_reduces_reanalysis_churn,
        test_equivalence_check_reuses_summaries,
    ):
        print(f"\n{test.__name__}:")
        test()
    print("\nall engine benchmarks passed")


if __name__ == "__main__":
    sys.exit(main())
