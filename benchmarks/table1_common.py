"""Shared harness for reproducing the paper's Table 1.

Runs each benchmark function's analysis in AHS(AM) and AHS(AU) (with the
§7 pattern heuristic), times it, and checks the synthesized summary
against the paper's reported summary for that row (entailment of the
published formula, not wall-clock equality -- see EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple

from repro import Analyzer, choose_patterns
from repro.core.assertions import _check_equal, _check_sorted
from repro.datawords import terms as T
from repro.datawords.multiset import MultisetDomain
from repro.datawords.patterns import GuardInstance
from repro.lang.benchlib import TABLE1, BenchEntry, benchmark_program, entry
from repro.numeric.linexpr import Constraint, LinExpr
from repro.shape.graph import NULL

_AM = MultisetDomain()


@dataclass
class RowResult:
    entry: BenchEntry
    am_time: Optional[float]
    au_time: Optional[float]
    patterns: Tuple[str, ...]
    summary_ok: Optional[bool]  # None = no check defined
    note: str = ""
    # Engine telemetry for the analysis run (records, steps, widenings,
    # scheduler and cache counters) -- printed next to the timings.
    stats: Optional[dict] = None

    def engine_summary(self) -> str:
        """One-line engine accounting for table printing."""
        if not self.stats:
            return ""
        sched = self.stats.get("scheduler", {})
        cache = self.stats.get("cache", {})
        return (
            f"rec={self.stats.get('records', 0)} "
            f"steps={self.stats.get('steps', 0)} "
            f"rerun={self.stats.get('records.reanalyzed', 0)} "
            f"pops={sched.get('pops', 0)} "
            f"hits={cache.get('hits', 0)}"
        )


def _first_list(params):
    for p in params:
        if p.type == "list":
            return p.name
    return None


def v(name):
    return LinExpr.var(name)


# -- per-row summary checks (column 6 of Table 1) ---------------------------------


def _nodes(analyzer, proc, heap):
    cfg = analyzer.icfg.cfg(proc)
    in_var = _first_list(cfg.inputs)
    out_var = _first_list(cfg.outputs)
    n_in = heap.graph.labels.get(T.entry_copy(in_var), NULL) if in_var else NULL
    n_out = heap.graph.labels.get(out_var, NULL) if out_var else NULL
    return n_in, n_out


def check_ms_preserved(analyzer, proc, result) -> Optional[bool]:
    """ms(input0) = ms(output) on every applicable summary heap."""
    seen = False
    for entry, summary in result.summaries:
        for heap in summary:
            n_in, n_out = _nodes(analyzer, proc, heap)
            if n_in == NULL or n_out == NULL:
                continue
            seen = True
            row = {
                T.mhd(n_in): Fraction(1),
                T.mtl(n_in): Fraction(1),
                T.mhd(n_out): Fraction(-1),
                T.mtl(n_out): Fraction(-1),
            }
            if not _AM.entails_row(heap.value, row):
                return False
    return seen or None


def check_eq_input(analyzer, proc, result) -> Optional[bool]:
    """eq≈(input, input0): the procedure does not modify its input list."""
    seen = False
    cfg = analyzer.icfg.cfg(proc)
    in_var = _first_list(cfg.inputs)
    for entry, summary in result.summaries:
        for heap in summary:
            n_now = heap.graph.labels.get(in_var, NULL)
            n_in = heap.graph.labels.get(T.entry_copy(in_var), NULL)
            if n_now == NULL or n_in == NULL:
                continue
            seen = True
            if not _check_equal(result.domain, heap.value, n_now, n_in):
                return False
    return seen or None


def check_all_equal_const(const: int):
    """forall y. out[y] = const, hd(out) = const (create-style)."""

    def check(analyzer, proc, result) -> Optional[bool]:
        seen = False
        for entry, summary in result.summaries:
            for heap in summary:
                _, n_out = _nodes(analyzer, proc, heap)
                if n_out == NULL:
                    continue
                seen = True
                if not heap.value.E.entails(
                    Constraint.eq(v(T.hd(n_out)), const)
                ):
                    return False
                gi = GuardInstance("ALL1", (n_out,))
                body = heap.value.clauses.get(gi)
                ctx = heap.value.E.meet(gi.guard_poly())
                if not ctx.is_bottom():
                    if body is None or not ctx.meet(body).entails(
                        Constraint.eq(v(T.elem(n_out, "y1")), const)
                    ):
                        return False
        return seen or None

    return check


def check_all_equal_var(var: str):
    """forall y. out[y] = var (init-style)."""

    def check(analyzer, proc, result) -> Optional[bool]:
        seen = False
        for entry, summary in result.summaries:
            for heap in summary:
                _, n_out = _nodes(analyzer, proc, heap)
                if n_out == NULL:
                    continue
                seen = True
                src = v(T.entry_copy(var))
                if not heap.value.E.entails(
                    Constraint.eq(v(T.hd(n_out)), src)
                ):
                    return False
                gi = GuardInstance("ALL1", (n_out,))
                body = heap.value.clauses.get(gi)
                ctx = heap.value.E.meet(gi.guard_poly())
                if not ctx.is_bottom():
                    if body is None or not ctx.meet(body).entails(
                        Constraint.eq(v(T.elem(n_out, "y1")), src)
                    ):
                        return False
        return seen or None

    return check


def check_len_preserved(analyzer, proc, result) -> Optional[bool]:
    seen = False
    for entry, summary in result.summaries:
        for heap in summary:
            n_in, n_out = _nodes(analyzer, proc, heap)
            if n_in == NULL or n_out == NULL:
                continue
            seen = True
            if not heap.value.E.entails(
                Constraint.eq(v(T.length(n_in)), v(T.length(n_out)))
            ):
                return False
    return seen or None


def check_sorted_output(analyzer, proc, result) -> Optional[bool]:
    seen = False
    for entry, summary in result.summaries:
        for heap in summary:
            _, n_out = _nodes(analyzer, proc, heap)
            if n_out == NULL:
                continue
            seen = True
            if not _check_sorted(result.domain, heap.value, n_out):
                return False
    return seen or None


def check_max_bound(analyzer, proc, result) -> Optional[bool]:
    """m >= every element of the input (max-style).

    The bound may live on the current input node (with eq≈ to the
    snapshot) or on the snapshot node itself; either witnesses the paper's
    summary.
    """
    from repro.numeric.polyhedra import Polyhedron

    seen = False
    cfg = analyzer.icfg.cfg(proc)
    in_var = _first_list(cfg.inputs)
    out_var = next(p.name for p in cfg.outputs if p.type == "int")
    for entry, summary in result.summaries:
        for heap in summary:
            candidates = [
                heap.graph.labels.get(T.entry_copy(in_var), NULL),
                heap.graph.labels.get(in_var, NULL),
            ]
            candidates = [n for n in candidates if n != NULL]
            if not candidates:
                continue
            seen = True

            def node_ok(node):
                if not heap.value.E.entails(
                    Constraint.ge(v(out_var), v(T.hd(node)))
                ):
                    return False
                gi = GuardInstance("ALL1", (node,))
                ctx = heap.value.E.meet(gi.guard_poly()).meet(
                    heap.value.clauses.get(gi, Polyhedron.top())
                )
                return ctx.is_bottom() or ctx.entails(
                    Constraint.ge(v(out_var), v(T.elem(node, "y1")))
                )

            if not any(node_ok(n) for n in candidates):
                return False
    return seen or None


AM_CHECKS: Dict[str, Callable] = {
    "clone": check_ms_preserved,
    "bubblesort": check_ms_preserved,
    "insertsort": check_ms_preserved,
    "quicksort": check_ms_preserved,
    "mergesort": check_ms_preserved,
    "max": check_ms_preserved,
}

AU_CHECKS: Dict[str, Callable] = {
    "create": check_all_equal_const(0),
    "init": check_all_equal_var("v"),
    "max": check_max_bound,
    "mapadd": check_len_preserved,
    "clone": check_eq_input,
    "qsplit": check_eq_input,
    "copy": check_len_preserved,
    "bubblesort": check_sorted_output,
    "insertsort": check_sorted_output,
    "quicksort": check_sorted_output,
    "mergesort": check_sorted_output,
}

# Functions whose AU analysis completes quickly enough for the default
# pytest-benchmark run on one CPU; the others run in the full sweep
# (benchmarks/run_table1.py, REPRO_FULL_TABLE1=1).
AU_FAST = [
    "create",
    "addfst",
    "delfst",
    "init",
    "mapadd",
    "initSeq",
]


def analyze_row(
    analyzer: Analyzer,
    entry: BenchEntry,
    domain: str,
    max_steps: int = 400_000,
    max_seconds: Optional[float] = None,
) -> RowResult:
    start = time.perf_counter()
    note = ""
    summary_ok: Optional[bool] = None
    stats: Optional[dict] = None
    try:
        result = analyzer.analyze(
            entry.name,
            domain=domain,
            max_steps=max_steps,
            max_seconds=max_seconds,
        )
        elapsed = time.perf_counter() - start
        stats = result.stats
        if result.diagnostics:  # budget exhausted -> partial summaries
            note = result.diagnostics[0].kind
        else:
            check = (AM_CHECKS if domain == "am" else AU_CHECKS).get(entry.name)
            if check is not None:
                summary_ok = check(analyzer, entry.name, result)
    except Exception as exc:  # cutpoints or unsupported constructs
        elapsed = time.perf_counter() - start
        note = f"{type(exc).__name__}"
    patterns = tuple(sorted(choose_patterns(analyzer.icfg, entry.name)))
    return RowResult(
        entry=entry,
        am_time=elapsed if domain == "am" else None,
        au_time=elapsed if domain == "au" else None,
        patterns=patterns,
        summary_ok=summary_ok,
        note=note,
        stats=stats,
    )


def fresh_analyzer() -> Analyzer:
    return Analyzer(benchmark_program())


# -- pool-backed suite execution (run_table1.py / bench_table1.py --jobs) -----


def analyze_task(name: str, domain: str, max_seconds: Optional[float] = None) -> dict:
    """Pool worker: one Table 1 row analysis in a fresh process."""
    analyzer = fresh_analyzer()
    row = analyze_row(analyzer, entry(name), domain, max_seconds=max_seconds)
    return {
        "name": name,
        "domain": domain,
        "time": row.am_time if domain == "am" else row.au_time,
        "ok": row.summary_ok,
        "note": row.note,
        "patterns": row.patterns,
        "engine": row.engine_summary(),
    }


def checker_task(name: str, max_seconds: Optional[float] = None) -> dict:
    """Pool worker: Tier-B safety checking of one Table 1 function.

    Reports the checker's wall time next to the analysis times so the
    proof overhead (per-point state interrogation on top of the fixpoint)
    is visible per benchmark, plus the verdict counts — the suite-level
    acceptance bar is *zero unsafe verdicts* on Table 1.
    """
    from repro.checker.safety import SafetyOptions, check_safety

    analyzer = fresh_analyzer()
    start = time.perf_counter()
    report = check_safety(
        analyzer,
        SafetyOptions(domain="am", procs=(name,), max_seconds=max_seconds),
    )
    return {
        "name": name,
        "checker_time": time.perf_counter() - start,
        "verdicts": report.counts(),
        "status": report.proc_status.get(name, "ok"),
    }


def checker_suite(names, jobs: int, budget: Optional[float] = None):
    """Tier-B checker timings for Table 1 rows on the worker pool."""
    from repro.parallel.pool import PoolTask, WorkerPool

    tasks = [
        PoolTask(
            task_id=f"{name}.checker",
            fn=checker_task,
            args=(name,),
            kwargs={"max_seconds": budget},
            budget=budget,
        )
        for name in names
    ]
    results = {}
    pool = WorkerPool(jobs=jobs, hard_grace=30.0)
    for outcome in pool.run(tasks):
        name = outcome.task_id.rpartition(".")[0]
        if outcome.status == "ok":
            results[name] = outcome.result
        else:
            results[name] = {
                "name": name,
                "checker_time": None,
                "verdicts": {},
                "status": outcome.status,
            }
    return results


def termination_task(name: str, max_seconds: Optional[float] = None) -> dict:
    """Pool worker: termination verdict for one Table 1 function.

    The suite-level acceptance bar is *zero possibly-nonterminating
    verdicts* (every Table 1 function terminates) with at least 80%
    proved outright; honest unknowns (e.g. bubblesort's swapped-flag
    outer loop) are allowed.
    """
    from repro.termination.driver import TerminationOptions, check_termination

    analyzer = fresh_analyzer()
    start = time.perf_counter()
    report = check_termination(
        analyzer,
        TerminationOptions(procs=[name], max_seconds=max_seconds),
    )
    return {
        "name": name,
        "termination_time": time.perf_counter() - start,
        "verdict": report.proc_verdict(name),
        "status": report.proc_status.get(name, "ok"),
    }


def termination_suite(names, jobs: int, budget: Optional[float] = None):
    """Termination verdicts for Table 1 rows on the worker pool."""
    from repro.parallel.pool import PoolTask, WorkerPool

    tasks = [
        PoolTask(
            task_id=f"{name}.termination",
            fn=termination_task,
            args=(name,),
            kwargs={"max_seconds": budget},
            budget=budget,
        )
        for name in names
    ]
    results = {}
    pool = WorkerPool(jobs=jobs, hard_grace=30.0)
    for outcome in pool.run(tasks):
        name = outcome.task_id.rpartition(".")[0]
        if outcome.status == "ok":
            results[name] = outcome.result
        else:
            results[name] = {
                "name": name,
                "termination_time": None,
                "verdict": "unknown",
                "status": outcome.status,
            }
    return results


def run_suite(
    pairs,
    jobs: int,
    budget: Optional[float] = None,
    on_outcome=None,
):
    """Run ``(name, domain)`` rows on the worker pool.

    Returns ``(results, wall)`` where ``results`` maps each pair to the
    ``analyze_task`` dict extended with the pool's outcome fields
    (``status``, ``wall``, ``retries``).  Rows that blow the wall budget
    come back with ``note="timeout"`` — either cooperatively (the
    engine's ``max_seconds`` diagnostic) or via the pool's hard kill when
    a single step cannot observe the deadline.
    """
    from repro.parallel.pool import PoolTask, WorkerPool

    start = time.perf_counter()
    tasks = [
        PoolTask(
            task_id=f"{name}.{domain}",
            fn=analyze_task,
            args=(name, domain),
            kwargs={"max_seconds": budget},
            budget=budget,
        )
        for name, domain in pairs
    ]
    results = {}
    pool = WorkerPool(jobs=jobs, hard_grace=30.0)
    for outcome in pool.run(tasks, on_outcome=on_outcome):
        name, _, domain = outcome.task_id.rpartition(".")
        if outcome.status == "ok":
            row = dict(outcome.result)
            if row["note"] == "wall_clock":
                row["note"] = "timeout"
        else:
            note = {"budget": "timeout", "crashed": "crash"}.get(
                outcome.status, outcome.status
            )
            row = {
                "name": name,
                "domain": domain,
                "time": None,
                "ok": None,
                "note": note,
                "patterns": (),
                "engine": "",
            }
        row["status"] = outcome.status
        row["wall"] = outcome.wall_time
        row["retries"] = outcome.retries
        results[(name, domain)] = row
    return results, time.perf_counter() - start
