#!/usr/bin/env python3
"""Regenerate the full Table 1 (paper §7) -- standalone sweep.

Prints one row per benchmark function: class, name, the pattern set chosen
by the §7 heuristic, our AM and AU analysis times, the paper's times, and
whether our synthesized summary entails the paper's reported one.

AU analyses of the sorting class are expensive in pure Python on one CPU;
set a per-function wall budget with --budget (seconds, default 240) -- a
row that exceeds it is reported as "timeout" (see EXPERIMENTS.md).

Usage:  python benchmarks/run_table1.py [--budget 240] [--only NAME]
"""

import argparse
import multiprocessing as mp
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.dirname(__file__))


def _run_one(name, domain, queue):
    from repro.lang.benchlib import entry
    from table1_common import analyze_row, fresh_analyzer

    analyzer = fresh_analyzer()
    row = analyze_row(analyzer, entry(name), domain)
    queue.put(
        {
            "time": row.am_time if domain == "am" else row.au_time,
            "ok": row.summary_ok,
            "note": row.note,
            "patterns": row.patterns,
            "engine": row.engine_summary(),
        }
    )


def run_with_budget(name, domain, budget):
    queue = mp.Queue()
    proc = mp.Process(target=_run_one, args=(name, domain, queue))
    start = time.perf_counter()
    proc.start()
    proc.join(budget)
    if proc.is_alive():
        proc.terminate()
        proc.join()
        return {
            "time": None, "ok": None, "note": "timeout", "patterns": (),
            "engine": "",
        }
    if queue.empty():
        return {
            "time": None, "ok": None, "note": "crash", "patterns": (),
            "engine": "",
        }
    return queue.get()


def fmt_time(t):
    return f"{t:7.2f}" if t is not None else "      -"


def fmt_ok(ok):
    return {True: "match", False: "WEAKER", None: "  -  "}[ok]


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--budget", type=float, default=240.0)
    parser.add_argument("--only", type=str, default=None)
    parser.add_argument("--skip-au", action="store_true")
    args = parser.parse_args()

    from repro.lang.benchlib import TABLE1

    rows = [e for e in TABLE1 if args.only is None or e.name == args.only]
    print(
        f"{'class':<6} {'fun':<12} {'patterns':<22} "
        f"{'AM t(s)':>8} {'paper':>6}  {'AU t(s)':>8} {'paper':>7} "
        f"{'summary':>7}  engine"
    )
    print("-" * 112)
    for e in rows:
        am = run_with_budget(e.name, "am", args.budget)
        if args.skip_au:
            au = {"time": None, "ok": None, "note": "skipped", "patterns": am["patterns"]}
        else:
            au = run_with_budget(e.name, "au", args.budget)
        pats = ",".join(sorted(au["patterns"] or am["patterns"])) or "-"
        ok = au["ok"] if au["ok"] is not None else am["ok"]
        note = au["note"] or am["note"]
        engine = au.get("engine") or am.get("engine") or ""
        print(
            f"{e.cls:<6} {e.paper_name:<12} {pats:<22} "
            f"{fmt_time(am['time'])} {e.paper_am_time:6.3f}  "
            f"{fmt_time(au['time'])} {e.paper_au_time:7.3f} "
            f"{fmt_ok(ok):>7}  {engine}"
            + (f"  [{note}]" if note else ""),
            flush=True,
        )


if __name__ == "__main__":
    main()
