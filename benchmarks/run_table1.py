#!/usr/bin/env python3
"""Regenerate the full Table 1 (paper §7) -- standalone sweep.

Prints one row per benchmark function: class, name, the pattern set chosen
by the §7 heuristic, our AM and AU analysis times, the paper's times, and
whether our synthesized summary entails the paper's reported one.

AU analyses of the sorting class are expensive in pure Python on one CPU;
set a per-function wall budget with --budget (seconds, default 240) -- a
row that exceeds it is reported as "timeout" (see EXPERIMENTS.md).

Rows run on the fault-isolated worker pool of ``repro.parallel``: with
``--jobs N`` up to N rows analyze concurrently (each row is its own root
analysis, so parallel results are identical to sequential ones), a row
crashing its worker is retried once, and the budget is enforced both
cooperatively (the engine's wall-clock diagnostic) and by a hard kill.

Each row also gets a "chk t(s)" column: the wall time of the Tier-B
memory-safety checker (``repro.checker.safety``) discharging the
null-deref / leak / acyclicity obligations of that function, with a
per-suite verdict tally in the footer (all Table 1 functions must be
free of ``unsafe`` verdicts).  Skip it with --skip-checker.

A "term" column reports the termination prover's verdict per function
(``repro.termination``), with a per-suite tally in the footer -- the
acceptance bar is zero possibly-nonterminating verdicts with >= 80%
proved terminating.  Skip it with --skip-termination.

Usage:  python benchmarks/run_table1.py [--budget 240] [--only NAME]
                                        [--skip-au] [--skip-checker]
                                        [--skip-termination] [--jobs N]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))


def fmt_time(t):
    return f"{t:7.2f}" if t is not None else "      -"


def fmt_ok(ok):
    return {True: "match", False: "WEAKER", None: "  -  "}[ok]


def fmt_verdict(verdict):
    return {
        "terminating": "term",
        "possibly-nonterminating": "NONTERM",
        "unknown": "unknown",
    }.get(verdict, verdict or "-")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--budget", type=float, default=240.0)
    parser.add_argument("--only", type=str, default=None)
    parser.add_argument("--skip-au", action="store_true")
    parser.add_argument("--skip-dll", action="store_true",
                        help="omit the doubly-linked-list suite block")
    parser.add_argument("--skip-checker", action="store_true",
                        help="omit the Tier-B checker timing column")
    parser.add_argument("--skip-termination", action="store_true",
                        help="omit the termination verdict column")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; rows are independent root analyses",
    )
    parser.add_argument(
        "--partial-out",
        type=str,
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "table1_results_partial.txt",
        ),
        help="stream per-row outcomes here as they finish (the default "
        "path is gitignored); pass '' to disable",
    )
    args = parser.parse_args()

    from repro.lang.benchlib import TABLE1

    from table1_common import checker_suite, run_suite, termination_suite

    rows = [e for e in TABLE1 if args.only is None or e.name == args.only]
    pairs = [(e.name, "am") for e in rows]
    if not args.skip_au:
        pairs += [(e.name, "au") for e in rows]

    partial = open(args.partial_out, "w") if args.partial_out else None

    def stream_partial(outcome):
        if partial is not None:
            partial.write(
                f"{outcome.task_id:<24} {outcome.status:<8} "
                f"{outcome.wall_time:7.2f}s\n"
            )
            partial.flush()

    results, wall = run_suite(
        pairs, jobs=args.jobs, budget=args.budget, on_outcome=stream_partial
    )
    checker = (
        {}
        if args.skip_checker
        else checker_suite(
            [e.name for e in rows], jobs=args.jobs, budget=args.budget
        )
    )
    termination = (
        {}
        if args.skip_termination
        else termination_suite(
            [e.name for e in rows], jobs=args.jobs, budget=args.budget
        )
    )

    print(
        f"{'class':<6} {'fun':<12} {'patterns':<22} "
        f"{'AM t(s)':>8} {'paper':>6}  {'AU t(s)':>8} {'paper':>7} "
        f"{'chk t(s)':>8} {'term':>8} {'summary':>7}  engine"
    )
    print("-" * 120)
    empty = {"time": None, "ok": None, "note": "", "patterns": (), "engine": ""}
    unsafe_rows = []
    nonterm_rows = []
    for e in rows:
        am = results.get((e.name, "am"), empty)
        au = results.get((e.name, "au"), empty)
        chk = checker.get(e.name, {"checker_time": None, "verdicts": {}})
        term = termination.get(e.name, {"verdict": None})
        if chk["verdicts"].get("unsafe"):
            unsafe_rows.append(e.name)
        if term["verdict"] == "possibly-nonterminating":
            nonterm_rows.append(e.name)
        pats = ",".join(sorted(au["patterns"] or am["patterns"])) or "-"
        ok = au["ok"] if au["ok"] is not None else am["ok"]
        note = au["note"] or am["note"]
        engine = au.get("engine") or am.get("engine") or ""
        print(
            f"{e.cls:<6} {e.paper_name:<12} {pats:<22} "
            f"{fmt_time(am['time'])} {e.paper_am_time:6.3f}  "
            f"{fmt_time(au['time'])} {e.paper_au_time:7.3f} "
            f"{fmt_time(chk['checker_time'])} "
            f"{fmt_verdict(term['verdict']):>8} "
            f"{fmt_ok(ok):>7}  {engine}"
            + (f"  [{note}]" if note else ""),
            flush=True,
        )
    analysis_seconds = sum(
        row["time"] for row in results.values() if row["time"] is not None
    )
    print("-" * 120)
    print(
        f"{len(pairs)} analyses in {wall:.1f}s wall with --jobs {args.jobs} "
        f"(sum of per-row analysis times: {analysis_seconds:.1f}s)"
    )
    if partial is not None:
        partial.write(
            f"done: {len(pairs)} analyses in {wall:.1f}s wall\n"
        )
        partial.close()
    if checker:
        checker_seconds = sum(
            row["checker_time"]
            for row in checker.values()
            if row["checker_time"] is not None
        )
        verdicts = {}
        for row in checker.values():
            for verdict, n in row["verdicts"].items():
                verdicts[verdict] = verdicts.get(verdict, 0) + n
        tally = " ".join(f"{v}={verdicts[v]}" for v in sorted(verdicts))
        print(
            f"checker: {checker_seconds:.1f}s over {len(checker)} rows "
            f"({tally or 'no obligations'})"
        )
        if unsafe_rows:
            print(f"checker: UNSAFE verdicts in: {', '.join(unsafe_rows)}")
    if not args.skip_dll and args.only is None:
        from dll_suite import DLL_TABLE, dll_suite_run

        dll_pairs = [(e.name, "am") for e in DLL_TABLE]
        if not args.skip_au:
            dll_pairs += [(e.name, "au") for e in DLL_TABLE]
        dll_results = dll_suite_run(
            dll_pairs, jobs=args.jobs, budget=args.budget
        )
        print()
        print(
            f"{'class':<6} {'fun':<18} {'AM t(s)':>8} {'AU t(s)':>8} "
            f"{'dll-consistent':>15}"
        )
        print("-" * 60)
        dll_unsafe = []
        for e in DLL_TABLE:
            am = dll_results.get((e.name, "am"), empty)
            au = dll_results.get((e.name, "au"), empty)
            ok = au["ok"] if au["ok"] is not None else am["ok"]
            if ok is False:
                dll_unsafe.append(e.name)
            note = au["note"] or am["note"]
            print(
                f"{e.cls:<6} {e.name:<18} {fmt_time(am['time'])} "
                f"{fmt_time(au['time'])} "
                f"{'safe' if ok else 'NOT-PROVED' if ok is False else '-':>15}"
                + (f"  [{note}]" if note else ""),
                flush=True,
            )
        print("-" * 60)
        if dll_unsafe:
            print(
                "dll: safety.dll-consistent NOT proved in: "
                + ", ".join(dll_unsafe)
            )
        else:
            print(
                f"dll: safety.dll-consistent proved on all "
                f"{len(DLL_TABLE)} rows (zero false alarms)"
            )
    if termination:
        termination_seconds = sum(
            row["termination_time"]
            for row in termination.values()
            if row["termination_time"] is not None
        )
        verdicts = {}
        for row in termination.values():
            v = row["verdict"]
            verdicts[v] = verdicts.get(v, 0) + 1
        tally = " ".join(f"{v}={verdicts[v]}" for v in sorted(verdicts))
        print(
            f"termination: {termination_seconds:.1f}s over "
            f"{len(termination)} rows ({tally})"
        )
        if nonterm_rows:
            print(
                "termination: possibly-nonterminating verdicts in: "
                + ", ".join(nonterm_rows)
            )


if __name__ == "__main__":
    main()
