#!/usr/bin/env python
"""Cold-path kernel benchmark: Table 1 wall clock, fast vs reference.

Runs the Table 1 smoke subset (every function in AHS(AM) plus the
``AU_FAST`` rows in AHS(AU)) sequentially in one process, once per
requested kernel mode, and records per-row wall time **and** the
canonical stable hashes of every synthesized summary.

The hash column is the regression gate: the optimized kernels
(``repro.kernels`` mode ``fast``) must produce summaries whose canonical
hashes are bit-identical to the reference kernels on every row.  With
``--check-identity`` (implied by ``--mode both``) any mismatch fails the
run with exit code 1 — this is what CI enforces.

Results are written as JSON (default ``BENCH_table1.json`` at the repo
root, the committed artifact):

    {"rows": [...], "modes": {"reference": {...}, "fast": {...}},
     "speedup": 3.1, "identity_ok": true}

Usage:
    PYTHONPATH=src python benchmarks/bench_kernels.py            # both modes
    PYTHONPATH=src python benchmarks/bench_kernels.py --mode fast
    PYTHONPATH=src python benchmarks/bench_kernels.py --only init,mapadd
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from dll_suite import DLL_AU_FAST, DLL_TABLE, fresh_dll_analyzer  # noqa: E402
from table1_common import AU_FAST, fresh_analyzer  # noqa: E402

from repro import kernels  # noqa: E402
from repro.engine.canon import graph_hash, heapset_hash  # noqa: E402
from repro.lang.benchlib import TABLE1  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent


def smoke_rows():
    return (
        [(e.name, "am") for e in TABLE1]
        + [(n, "au") for n in AU_FAST]
        + [(e.name, "am") for e in DLL_TABLE]
        + [(n, "au") for n in DLL_AU_FAST]
    )


def run_row(name: str, domain: str, budget) -> dict:
    """One suite row in a fresh analyzer; returns time + summary hashes.

    DLL suite rows (``dll_*``) analyze against the DLL benchmark program;
    everything else is a Table 1 row of the paper's singly-linked suite.
    """
    analyzer = (
        fresh_dll_analyzer() if name.startswith("dll_") else fresh_analyzer()
    )
    start = time.perf_counter()
    note = ""
    hashes = []
    try:
        result = analyzer.analyze(
            name, domain=domain, max_steps=400_000, max_seconds=budget
        )
        if result.diagnostics:
            note = result.diagnostics[0].kind
        hashes = sorted(
            (graph_hash(entry.graph), heapset_hash(summary, result.domain))
            for entry, summary in result.summaries
        )
    except Exception as exc:  # cutpoints or unsupported constructs
        note = type(exc).__name__
    return {
        "name": name,
        "domain": domain,
        "time": time.perf_counter() - start,
        "note": note,
        "hashes": hashes,
    }


def run_mode(mode: str, rows, budget, verbose: bool) -> dict:
    kernels.set_mode(mode)
    out = []
    wall = time.perf_counter()
    for name, domain in rows:
        row = run_row(name, domain, budget)
        out.append(row)
        if verbose:
            print(
                f"  [{mode}] {name}/{domain}: {row['time']:.2f}s"
                + (f" ({row['note']})" if row["note"] else ""),
                flush=True,
            )
    return {"mode": mode, "wall_seconds": time.perf_counter() - wall, "rows": out}


def check_identity(ref: dict, fast: dict) -> list:
    """Rows whose summary hashes differ between modes (the gate)."""
    ref_by = {(r["name"], r["domain"]): r for r in ref["rows"]}
    bad = []
    for row in fast["rows"]:
        mate = ref_by.get((row["name"], row["domain"]))
        if mate is None:
            continue
        if row["hashes"] != mate["hashes"] or row["note"] != mate["note"]:
            bad.append(f"{row['name']}/{row['domain']}")
    return bad


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--mode",
        choices=["fast", "reference", "both"],
        default="both",
        help="kernel mode(s) to benchmark (default: both, with identity gate)",
    )
    ap.add_argument(
        "--only",
        default="",
        help="comma-separated function names to restrict the row set",
    )
    ap.add_argument(
        "--budget",
        type=float,
        default=None,
        help="per-row wall-clock budget in seconds (rows over budget are partial)",
    )
    ap.add_argument(
        "--out",
        default=str(ROOT / "BENCH_table1.json"),
        help="output JSON path (default: BENCH_table1.json at the repo root)",
    )
    ap.add_argument(
        "--check-identity",
        action="store_true",
        help="fail (exit 1) if fast and reference summary hashes differ",
    )
    ap.add_argument(
        "--baseline",
        default="",
        help="path to a recorded pre-optimization run (JSON with a "
        "wall_seconds field); merged into the report as "
        "modes['baseline'] with a baseline_speedup vs fast",
    )
    ap.add_argument("--quiet", action="store_true", help="suppress per-row lines")
    args = ap.parse_args(argv)

    rows = smoke_rows()
    if args.only:
        keep = {n.strip() for n in args.only.split(",") if n.strip()}
        rows = [(n, d) for n, d in rows if n in keep]

    previous = kernels.mode()
    modes = ["reference", "fast"] if args.mode == "both" else [args.mode]
    report = {"rows": [f"{n}/{d}" for n, d in rows], "modes": {}}
    try:
        for mode in modes:
            print(f"== mode {mode}: {len(rows)} rows ==", flush=True)
            result = run_mode(mode, rows, args.budget, not args.quiet)
            report["modes"][mode] = result
            print(f"== mode {mode}: {result['wall_seconds']:.2f}s ==", flush=True)
    finally:
        kernels.set_mode(previous)

    ref = report["modes"].get("reference")
    fast = report["modes"].get("fast")
    if ref and fast:
        bad = check_identity(ref, fast)
        report["identity_ok"] = not bad
        report["speedup"] = ref["wall_seconds"] / max(fast["wall_seconds"], 1e-9)
        print(f"speedup: {report['speedup']:.2f}x  identity_ok: {not bad}")
        if bad:
            print("IDENTITY GATE TRIPPED on rows: " + ", ".join(bad))

    if args.baseline:
        base = json.loads(Path(args.baseline).read_text())
        report["modes"]["baseline"] = base
        if fast:
            report["baseline_speedup"] = base["wall_seconds"] / max(
                fast["wall_seconds"], 1e-9
            )
            print(
                f"baseline ({base.get('label', 'recorded')}): "
                f"{base['wall_seconds']:.2f}s -> fast "
                f"{fast['wall_seconds']:.2f}s = "
                f"{report['baseline_speedup']:.2f}x"
            )

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if (args.check_identity or args.mode == "both") and ref and fast:
        if not report["identity_ok"]:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
