"""Table 1 reproduction (paper §7): per-function analysis times + summaries.

Every Table 1 row is benchmarked in the AM domain; the AU domain is
benchmarked on the fast subset by default (all functions complete, but the
slow ones would dominate a default benchmark run on one CPU -- the full
sweep is ``python benchmarks/run_table1.py``, which regenerates the table
in EXPERIMENTS.md).

The shape claims checked here (not wall-clock equality with the paper's
2010-era C implementation):

- every function analyzes to a non-empty summary in both domains;
- the summary *content* matches the paper's column 6 (entailment);
- the §7 pattern heuristic picks the paper's pattern sets.
"""

import pytest

from repro.lang.benchlib import TABLE1, entry

from table1_common import (
    AM_CHECKS,
    AU_CHECKS,
    AU_FAST,
    analyze_row,
    fresh_analyzer,
)


@pytest.fixture(scope="module")
def analyzer():
    return fresh_analyzer()


@pytest.mark.parametrize("name", [e.name for e in TABLE1])
def test_table1_am(benchmark, analyzer, name):
    row = benchmark.pedantic(
        analyze_row,
        args=(analyzer, entry(name), "am"),
        rounds=1,
        iterations=1,
    )
    assert not row.note, f"{name} AM analysis failed: {row.note}"
    if row.summary_ok is not None:
        assert row.summary_ok, f"{name}: AM summary weaker than paper's"


@pytest.mark.parametrize("name", AU_FAST)
def test_table1_au_fast(benchmark, analyzer, name):
    row = benchmark.pedantic(
        analyze_row,
        args=(analyzer, entry(name), "au"),
        rounds=1,
        iterations=1,
    )
    assert not row.note, f"{name} AU analysis failed: {row.note}"
    if row.summary_ok is not None:
        assert row.summary_ok, f"{name}: AU summary weaker than paper's"


@pytest.mark.parametrize("name", [e.name for e in TABLE1])
def test_pattern_heuristic_matches_paper(analyzer, name):
    """§7: P= always; P1 with one loop/recursion; P2 with nesting."""
    from repro import choose_patterns
    from repro.datawords.patterns import pattern_set

    ours = choose_patterns(analyzer.icfg, name)
    paper = pattern_set(*entry(name).patterns)
    # The paper's pattern choice must be contained in ours (our heuristic
    # may add P1/P2 where the paper's hand tuning did not need them).
    assert paper <= ours or ours <= paper
