"""Table 1 reproduction (paper §7): per-function analysis times + summaries.

Every Table 1 row is benchmarked in the AM domain; the AU domain is
benchmarked on the fast subset by default (all functions complete, but the
slow ones would dominate a default benchmark run on one CPU -- the full
sweep is ``python benchmarks/run_table1.py``, which regenerates the table
in EXPERIMENTS.md).

The shape claims checked here (not wall-clock equality with the paper's
2010-era C implementation):

- every function analyzes to a non-empty summary in both domains;
- the summary *content* matches the paper's column 6 (entailment);
- the §7 pattern heuristic picks the paper's pattern sets.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

import pytest

from repro.lang.benchlib import TABLE1, entry

from dll_suite import DLL_AU_FAST, DLL_TABLE, dll_task
from table1_common import (
    AM_CHECKS,
    AU_CHECKS,
    AU_FAST,
    analyze_row,
    fresh_analyzer,
)


@pytest.fixture(scope="module")
def analyzer():
    return fresh_analyzer()


@pytest.mark.parametrize("name", [e.name for e in TABLE1])
def test_table1_am(benchmark, analyzer, name):
    row = benchmark.pedantic(
        analyze_row,
        args=(analyzer, entry(name), "am"),
        rounds=1,
        iterations=1,
    )
    assert not row.note, f"{name} AM analysis failed: {row.note}"
    if row.summary_ok is not None:
        assert row.summary_ok, f"{name}: AM summary weaker than paper's"


@pytest.mark.parametrize("name", AU_FAST)
def test_table1_au_fast(benchmark, analyzer, name):
    row = benchmark.pedantic(
        analyze_row,
        args=(analyzer, entry(name), "au"),
        rounds=1,
        iterations=1,
    )
    assert not row.note, f"{name} AU analysis failed: {row.note}"
    if row.summary_ok is not None:
        assert row.summary_ok, f"{name}: AU summary weaker than paper's"


@pytest.mark.parametrize("name", [e.name for e in DLL_TABLE])
def test_dll_suite_am(benchmark, name):
    """DLL suite rows in AHS(AM): analysis completes and the Tier-B
    checker proves safety.dll-consistent (zero false alarms)."""
    row = benchmark.pedantic(
        dll_task, args=(name, "am"), rounds=1, iterations=1
    )
    assert not row["note"], f"{name} AM analysis failed: {row['note']}"
    assert row["ok"], f"{name}: safety.dll-consistent not proved in AM"


@pytest.mark.parametrize("name", DLL_AU_FAST)
def test_dll_suite_au_fast(benchmark, name):
    row = benchmark.pedantic(
        dll_task, args=(name, "au"), rounds=1, iterations=1
    )
    assert not row["note"], f"{name} AU analysis failed: {row['note']}"
    assert row["ok"], f"{name}: safety.dll-consistent not proved in AU"


@pytest.mark.parametrize("name", [e.name for e in TABLE1])
def test_pattern_heuristic_matches_paper(analyzer, name):
    """§7: P= always; P1 with one loop/recursion; P2 with nesting."""
    from repro import choose_patterns
    from repro.datawords.patterns import pattern_set

    ours = choose_patterns(analyzer.icfg, name)
    paper = pattern_set(*entry(name).patterns)
    # The paper's pattern choice must be contained in ours (our heuristic
    # may add P1/P2 where the paper's hand tuning did not need them).
    assert paper <= ours or ours <= paper


def main(argv=None):
    """Sequential-vs-parallel wall-time comparison on the bench suite.

    ``python benchmarks/bench_table1.py --jobs 4`` runs the default bench
    workload (all Table 1 AM rows plus the fast AU subset) twice on the
    ``repro.parallel`` worker pool -- once with one worker, once with
    ``--jobs`` workers -- and reports both wall times and the speedup.
    ``--skip-seq`` drops the one-worker baseline (CI smoke); ``--json``
    writes the timings as an artifact.
    """
    import argparse
    import json

    from table1_common import run_suite

    ap = argparse.ArgumentParser(
        prog="python benchmarks/bench_table1.py",
        description="Table 1 bench suite: sequential vs parallel wall time",
    )
    ap.add_argument("--jobs", type=int, default=4, help="parallel workers")
    ap.add_argument(
        "--budget",
        type=float,
        default=240.0,
        help="per-row wall budget (seconds)",
    )
    ap.add_argument(
        "--skip-seq",
        action="store_true",
        help="skip the one-worker baseline run",
    )
    ap.add_argument(
        "--json",
        type=str,
        default=None,
        help="write timings to this JSON file",
    )
    args = ap.parse_args(argv)

    pairs = [(e.name, "am") for e in TABLE1] + [(n, "au") for n in AU_FAST]

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    if args.jobs > cores:
        print(
            f"note: {args.jobs} jobs on {cores} usable core(s) -- "
            "CPU-bound rows cannot speed up past the core count"
        )

    def bad_rows(results):
        return sorted(
            f"{name}.{domain}[{row['note']}]"
            for (name, domain), row in results.items()
            if row["status"] != "ok" or row["note"]
        )

    seq_wall = None
    if not args.skip_seq:
        print(f"sequential baseline: {len(pairs)} analyses on 1 worker ...")
        seq_results, seq_wall = run_suite(pairs, jobs=1, budget=args.budget)
        print(f"  jobs=1: {seq_wall:.1f}s wall")
        if bad_rows(seq_results):
            print(f"  NOT OK: {', '.join(bad_rows(seq_results))}")

    print(f"parallel run: {len(pairs)} analyses on {args.jobs} workers ...")
    par_results, par_wall = run_suite(pairs, jobs=args.jobs, budget=args.budget)
    print(f"  jobs={args.jobs}: {par_wall:.1f}s wall")
    failures = bad_rows(par_results)
    if failures:
        print(f"  NOT OK: {', '.join(failures)}")

    speedup = (seq_wall / par_wall) if seq_wall else None
    if speedup is not None:
        print(f"speedup: {speedup:.2f}x ({seq_wall:.1f}s -> {par_wall:.1f}s)")

    if args.json:
        doc = {
            "pairs": len(pairs),
            "jobs": args.jobs,
            "cores": cores,
            "sequential_wall": seq_wall,
            "parallel_wall": par_wall,
            "speedup": speedup,
            "rows": {
                f"{name}.{domain}": {
                    "time": row["time"],
                    "status": row["status"],
                    "note": row["note"],
                    "retries": row["retries"],
                }
                for (name, domain), row in par_results.items()
            },
        }
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"wrote {args.json}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
