#!/usr/bin/env python3
"""Sustained throughput and fairness of the multi-tenant gateway.

Two phases against one in-process gateway (inline jobs, warm sessions):

- **throughput**: N tenants (default 2) each run a closed request loop
  for ``--seconds``; reports aggregate requests/sec and per-tenant
  p50/p99 latency.  Requests alternate analyze (warm no-op after the
  first) and check (warm cache hits), the dominant steady-state mix;
- **fairness**: one greedy tenant pipelines a full admission window
  (its bounded queue stays saturated, overflow is shed with retry
  hints) while a light tenant submits sparse sequential requests.  The
  scheduler's start-time fair queuing must keep the light tenant's p99
  bounded — close to its solo latency, not the flood's queue depth.

The artifact doubles as the serving-tier regression record
(``BENCH_service.json`` in CI).

Usage:  python benchmarks/bench_gateway.py [--json PATH] [--seconds S]
                                           [--tenants N] [--workers W]
"""

import argparse
import json
import os
import socket
import statistics
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.gateway.server import GatewayConfig, GatewayThread
from repro.service.client import ServiceClient

CHAIN = """
proc leaf(x: list) returns (r: list) { r = x; }
proc mid(x: list) returns (r: list) { r = leaf(x); }
proc top(x: list) returns (r: list) { r = mid(x); }
proc other(x: list) returns (r: list) { r = x; }
"""


def pctl(samples, q):
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(len(ordered) * q / 100.0)))
    return ordered[rank]


def _connect(gw) -> ServiceClient:
    _, (host, port) = gw.address
    return ServiceClient.connect_tcp(host, port)


def tenant_loop(gw, tenant, seconds, latencies, counters):
    with _connect(gw) as client:
        deadline = time.monotonic() + seconds
        i = 0
        while time.monotonic() < deadline:
            t0 = time.perf_counter()
            if i % 2 == 0:
                response = client.analyze(CHAIN, domains=["am"],
                                          tenant=tenant)
            else:
                response = client.check(CHAIN, tenant=tenant)
            latencies.append(time.perf_counter() - t0)
            counters["ok" if response.get("ok") else "err"] += 1
            i += 1


def run_throughput(gw, tenants, seconds):
    lat = {f"tenant{i}": [] for i in range(tenants)}
    counts = {f"tenant{i}": {"ok": 0, "err": 0} for i in range(tenants)}
    threads = [
        threading.Thread(
            target=tenant_loop,
            args=(gw, name, seconds, lat[name], counts[name]),
        )
        for name in lat
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    total = sum(c["ok"] + c["err"] for c in counts.values())
    all_lat = [x for xs in lat.values() for x in xs]
    print(f"throughput: {tenants} tenants, {total} requests in "
          f"{wall:.2f}s = {total / wall:.1f} req/s")
    rows = {}
    for name in sorted(lat):
        p50, p99 = pctl(lat[name], 50), pctl(lat[name], 99)
        print(f"  {name}: {counts[name]['ok']} ok, "
              f"p50={p50 * 1000:.1f}ms p99={p99 * 1000:.1f}ms")
        rows[name] = {
            "requests": counts[name]["ok"] + counts[name]["err"],
            "errors": counts[name]["err"],
            "p50_ms": round(p50 * 1000, 2),
            "p99_ms": round(p99 * 1000, 2),
        }
    assert all(c["err"] == 0 for c in counts.values()), counts
    return {
        "tenants": tenants,
        "seconds": round(wall, 2),
        "requests": total,
        "rps": round(total / wall, 1),
        "p50_ms": round(pctl(all_lat, 50) * 1000, 2),
        "p99_ms": round(pctl(all_lat, 99) * 1000, 2),
        "per_tenant": rows,
    }


def greedy_loop(gw, seconds, window, out):
    """Pipelines a full admission window so the greedy tenant's bounded
    queue stays saturated for the whole phase."""
    _, (host, port) = gw.address
    sock = socket.create_connection((host, port), timeout=60)
    fh = sock.makefile("rwb")

    def send(i):
        # A fresh program id every time keeps each request cold (~10x a
        # warm one), so the flood's backlog represents real queueing.
        fh.write((json.dumps(
            {"verb": "check", "id": i, "tenant": "greedy",
             "source": CHAIN, "program_id": f"p{i}"}
        ) + "\n").encode())
        fh.flush()

    deadline = time.monotonic() + seconds
    seq = 0
    for _ in range(window):
        send(seq)
        seq += 1
    while time.monotonic() < deadline:
        response = json.loads(fh.readline())
        if response.get("ok"):
            out["served"] += 1
        else:
            out["shed"] += 1
            hint = response.get("error", {}).get("retry_after_ms")
            if hint is not None:
                out["hints"].append(hint)
        send(seq)
        seq += 1
    # Drain whatever is still in flight.
    for _ in range(window):
        response = json.loads(fh.readline())
        out["served" if response.get("ok") else "shed"] += 1
    sock.close()


def run_fairness(gw, seconds, queue_limit, workers):
    greedy = {"served": 0, "shed": 0, "hints": []}
    light_lat = []
    greedy_thread = threading.Thread(
        target=greedy_loop, args=(gw, seconds, queue_limit + 4, greedy)
    )
    greedy_thread.start()
    time.sleep(0.2)  # let the flood build its backlog
    with _connect(gw) as client:
        deadline = time.monotonic() + seconds - 0.4
        while time.monotonic() < deadline:
            t0 = time.perf_counter()
            response = client.analyze(CHAIN, domains=["am"], tenant="light")
            assert response.get("ok"), response
            light_lat.append(time.perf_counter() - t0)
            time.sleep(0.05)
    greedy_thread.join()
    p50, p99 = pctl(light_lat, 50), pctl(light_lat, 99)
    # Per-request wall time while every worker slot is busy: the flood's
    # observed service rate times the worker count.
    service_s = seconds * workers / max(1, greedy["served"])
    print(f"fairness: greedy served={greedy['served']} "
          f"shed={greedy['shed']} (mean hint "
          f"{statistics.mean(greedy['hints']) if greedy['hints'] else 0:.0f}"
          f"ms); light p50={p50 * 1000:.1f}ms p99={p99 * 1000:.1f}ms")
    # The bound under test: a light tenant behind a saturated flood waits
    # for the in-flight requests plus at most one queued one (its virtual
    # tag ties the *head* of the backlog), nowhere near the FIFO
    # alternative of draining the whole queue.  3x slack for GIL and
    # scheduler noise keeps the bound well below the FIFO baseline.
    bound_s = 3 * 3 * service_s
    fifo_s = (queue_limit / workers + 1) * service_s
    bounded = p99 is not None and p99 < bound_s
    print(f"  light p99 {'<' if bounded else '>='} bound "
          f"{bound_s * 1000:.1f}ms (3 service times x3 slack; FIFO would "
          f"queue ~{fifo_s * 1000:.0f}ms)")
    return {
        "greedy_served": greedy["served"],
        "greedy_shed": greedy["shed"],
        "light_requests": len(light_lat),
        "light_p50_ms": round(p50 * 1000, 2),
        "light_p99_ms": round(p99 * 1000, 2),
        "bound_ms": round(bound_s * 1000, 2),
        "light_p99_bounded": bounded,
    }


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--json", type=str, default=None,
                        help="write the timing artifact to this path")
    parser.add_argument("--seconds", type=float, default=5.0,
                        help="duration of each phase")
    parser.add_argument("--tenants", type=int, default=2,
                        help="concurrent tenants in the throughput phase")
    parser.add_argument("--workers", type=int, default=2,
                        help="gateway dispatch workers")
    args = parser.parse_args()

    queue_limit = 32
    gw = GatewayThread(
        GatewayConfig(jobs=0, workers=args.workers,
                      tenant_queue_limit=queue_limit)
    ).start()
    try:
        throughput = run_throughput(gw, max(2, args.tenants), args.seconds)
        fairness = run_fairness(gw, args.seconds, queue_limit,
                                args.workers)
        with _connect(gw) as client:
            metrics_text = client.metrics()
        shed_line = [
            line for line in metrics_text.splitlines()
            if line.startswith("repro_shed_total")
        ]
        print("metrics:", "; ".join(shed_line) or "(no sheds recorded)")
    finally:
        gw.stop()

    if not fairness["light_p99_bounded"]:
        print("FAIL: light tenant p99 exceeded the fairness bound",
              file=sys.stderr)
        return 1
    if args.json:
        artifact = {
            "suite": "gateway",
            "workers": args.workers,
            "queue_limit": queue_limit,
            "throughput": throughput,
            "fairness": fairness,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
