"""The doubly-linked-list benchmark suite (DESIGN.md §15).

Five DLL idioms written in LISL with ``prev`` stores/loads, exercised the
same way the Table 1 harness exercises the paper's singly-linked suite:
each procedure is analyzed as a root in AHS(AM) / AHS(AU), timed, and the
Tier-B ``safety.dll-consistent`` obligation is discharged -- the
acceptance bar is a *safe* verdict (zero false alarms) on every row.

The suite lives next to the Table 1 harness because it reports through
the same channels: ``run_table1.py`` prints a DLL block under the paper's
table, ``bench_table1.py`` benchmarks the rows under pytest, and
``bench_kernels.py`` folds the rows into the committed
``BENCH_table1.json`` (the fast-vs-reference identity gate then also
covers the prev-aware transfer rules).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import Analyzer
from repro.lang.ast import Program
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck_program

DLL_SOURCE = r"""
// ===== class dll: doubly-linked list idioms ==============================

proc dll_insert_front(x: list, v: int) returns (r: list) {
  local t: list;
  t = new;
  t->data = v;
  t->next = x;
  t->prev = NULL;
  if (x != NULL) {
    x->prev = t;
  }
  r = t;
}

proc dll_insert_sorted(x: list, v: int) returns (r: list) {
  local p, q, t: list;
  t = new;
  t->data = v;
  t->next = NULL;
  t->prev = NULL;
  if (x == NULL) {
    r = t;
  } else {
    if (v <= x->data) {
      t->next = x;
      x->prev = t;
      r = t;
    } else {
      r = x;
      p = x;
      q = p->next;
      while (q != NULL && q->data < v) {
        p = q;
        q = q->next;
      }
      t->next = q;
      t->prev = p;
      p->next = t;
      if (q != NULL) {
        q->prev = t;
      }
    }
  }
}

proc dll_delete_front(x: list) returns (r: list) {
  if (x == NULL) {
    r = NULL;
  } else {
    r = x->next;
    if (r != NULL) {
      r->prev = NULL;
    }
  }
}

proc dll_reverse(x: list) returns (r: list) {
  local c, n: list;
  r = NULL;
  c = x;
  while (c != NULL) {
    n = c->next;
    c->next = r;
    c->prev = NULL;
    if (r != NULL) {
      r->prev = c;
    }
    r = c;
    c = n;
  }
}

proc dll_traverse_back(x: list) returns (r: list, s: int) {
  local c, p: list;
  r = x;
  s = 0;
  c = x;
  p = NULL;
  while (c != NULL) {
    s = s + c->data;
    p = c;
    c = c->next;
  }
  c = p;
  while (c != NULL) {
    s = s + c->data;
    c = c->prev;
  }
}
"""


@dataclass(frozen=True)
class DLLBenchEntry:
    """One row of the DLL suite."""

    name: str
    cls: str  # always "dll"; keeps the Table 1 printing shape
    description: str


DLL_TABLE: List[DLLBenchEntry] = [
    DLLBenchEntry("dll_insert_front", "dll", "push with back-pointer repair"),
    DLLBenchEntry("dll_insert_sorted", "dll", "sorted interior splice"),
    DLLBenchEntry("dll_delete_front", "dll", "drop head, reset prev"),
    DLLBenchEntry("dll_reverse", "dll", "reverse via push-front"),
    DLLBenchEntry("dll_traverse_back", "dll", "walk to tail, sum over prev"),
]

# AU rows cheap enough for the default bench/pytest lane; the loopy rows
# run AM-only there (same policy as AU_FAST for the Table 1 suite).
DLL_AU_FAST = ["dll_insert_front", "dll_delete_front"]

_CACHE: Dict[str, Program] = {}


def dll_program() -> Program:
    """The parsed, typechecked, normalized DLL suite program."""
    if "program" not in _CACHE:
        program = parse_program(DLL_SOURCE)
        program = typecheck_program(program)
        _CACHE["program"] = normalize_program(program)
    return _CACHE["program"]


def dll_entry(name: str) -> DLLBenchEntry:
    for e in DLL_TABLE:
        if e.name == name:
            return e
    raise KeyError(f"no DLL suite entry for {name!r}")


def fresh_dll_analyzer() -> Analyzer:
    return Analyzer(dll_program())


def dll_task(
    name: str, domain: str, max_seconds: Optional[float] = None
) -> dict:
    """Pool worker: analyze one DLL row + discharge ``safety.dll-consistent``.

    Mirrors :func:`table1_common.analyze_task`'s result shape, with the
    ``ok`` column meaning "the checker proved safety.dll-consistent" (the
    suite's summary-content claim) instead of a paper-entailment check.
    """
    from repro.checker.findings import SAFE
    from repro.checker.safety import SafetyOptions, check_safety

    analyzer = fresh_dll_analyzer()
    start = time.perf_counter()
    note = ""
    ok: Optional[bool] = None
    try:
        result = analyzer.analyze(
            name, domain=domain, max_steps=400_000, max_seconds=max_seconds
        )
        if result.diagnostics:
            note = result.diagnostics[0].kind
    except Exception as exc:
        note = type(exc).__name__
    elapsed = time.perf_counter() - start
    if not note:
        report = check_safety(
            analyzer,
            SafetyOptions(domain=domain, procs=(name,), max_seconds=max_seconds),
        )
        verdict = report.dll_consistent_verdict(name)
        ok = verdict == SAFE if verdict is not None else None
    return {
        "name": name,
        "domain": domain,
        "time": elapsed,
        "ok": ok,
        "note": note,
        "patterns": (),
        "engine": "",
    }


def dll_suite_run(
    pairs: List[Tuple[str, str]], jobs: int, budget: Optional[float] = None
):
    """Run DLL ``(name, domain)`` rows on the worker pool."""
    from repro.parallel.pool import PoolTask, WorkerPool

    tasks = [
        PoolTask(
            task_id=f"{name}.{domain}",
            fn=dll_task,
            args=(name, domain),
            kwargs={"max_seconds": budget},
            budget=budget,
        )
        for name, domain in pairs
    ]
    results = {}
    pool = WorkerPool(jobs=jobs, hard_grace=30.0)
    for outcome in pool.run(tasks):
        name, _, domain = outcome.task_id.rpartition(".")
        if outcome.status == "ok":
            results[(name, domain)] = outcome.result
        else:
            results[(name, domain)] = {
                "name": name,
                "domain": domain,
                "time": None,
                "ok": None,
                "note": {"budget": "timeout", "crashed": "crash"}.get(
                    outcome.status, outcome.status
                ),
                "patterns": (),
                "engine": "",
            }
    return results
