"""Experiment E3 (paper §5/§7): the strengthen_M ablation.

The paper's central claim: at quicksort's recursive returns, the link
between the pivot and the elements of the sorted sublist is lost by the
AU analysis alone (the summary cannot express permutations), and is
recovered by strengthening with the AM analysis.  We benchmark the
strengthening operator on the paper's own §5 instance and assert:

- WITHOUT strengthen_M the '<= pivot' bound on the returned list is lost;
- WITH strengthen_M it is recovered (both by the direct σ rules and by the
  Fig. 7 traversal-program infer_M).
"""

from fractions import Fraction

import pytest

from repro.core.combine import (
    infer_via_traversal,
    sigma_m_strengthen,
)
from repro.datawords import terms as T
from repro.datawords.multiset import MultisetDomain, MultisetValue
from repro.datawords.patterns import GuardInstance, pattern_set
from repro.datawords.universal import UniversalDomain, UniversalValue
from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron

AM = MultisetDomain()


def quicksort_return_instance():
    """The §5 situation at 'left = quicksort(left)':

    known: all elements of the argument list (l) are <= the pivot d;
    summary link: ms(l') = ms(l)  (the AM summary of quicksort);
    projected away: everything about l (the existential quantification).
    """
    domain = UniversalDomain(pattern_set("P=", "P1"))
    all_l = GuardInstance("ALL1", ("l",))
    known = UniversalValue(
        Polyhedron.of(
            Constraint.le(LinExpr.var(T.hd("l")), LinExpr.var("d")),
            Constraint.ge(LinExpr.var(T.length("l")), 1),
            Constraint.ge(LinExpr.var(T.length("l'")), 1),
        ),
        {
            all_l: Polyhedron.of(
                Constraint.le(LinExpr.var(T.elem("l", "y1")), LinExpr.var("d"))
            )
        },
    )
    ms = MultisetValue(
        [
            {
                T.mhd("l'"): Fraction(1),
                T.mtl("l'"): Fraction(1),
                T.mhd("l"): Fraction(-1),
                T.mtl("l"): Fraction(-1),
            }
        ]
    )
    return domain, known, ms


def bound_recovered(domain, value) -> bool:
    head = value.E.entails(
        Constraint.le(LinExpr.var(T.hd("l'")), LinExpr.var("d"))
    )
    gi = GuardInstance("ALL1", ("l'",))
    ctx = value.E.meet(gi.guard_poly()).meet(
        value.clauses.get(gi, Polyhedron.top())
    )
    tail = ctx.is_bottom() or ctx.entails(
        Constraint.le(LinExpr.var(T.elem("l'", "y1")), LinExpr.var("d"))
    )
    return head and tail


def project_l(domain, value):
    """The return transformer's existential quantification of the actual."""
    return domain.project_words(value, ["l"])


def test_without_strengthen_bound_is_lost():
    domain, known, ms = quicksort_return_instance()
    after = project_l(domain, known)
    assert not bound_recovered(domain, after)


def test_with_direct_sigma_bound_recovered(benchmark):
    domain, known, ms = quicksort_return_instance()

    def run():
        strengthened = sigma_m_strengthen(domain, known, ms)
        return project_l(domain, strengthened)

    after = benchmark.pedantic(run, rounds=1, iterations=1)
    assert bound_recovered(domain, after)


@pytest.mark.skipif(
    __import__("os").environ.get("REPRO_SLOW_BENCH") != "1",
    reason="Fig. 7 traversal infer takes minutes on one CPU; covered "
    "functionally by tests/test_combine.py (set REPRO_SLOW_BENCH=1 to time it)",
)
def test_with_traversal_infer_bound_recovered(benchmark):
    domain, known, ms = quicksort_return_instance()

    def run():
        strengthened = infer_via_traversal(
            domain, known, ms, AM, words=["l'", "l"]
        )
        return project_l(domain, strengthened)

    after = benchmark.pedantic(run, rounds=1, iterations=1)
    assert bound_recovered(domain, after)


def test_quicksort_am_summary_supplies_the_link(benchmark):
    """End to end: quicksort's AM analysis really derives ms preservation."""
    from fractions import Fraction

    from repro import Analyzer
    from repro.lang.benchlib import benchmark_program
    from repro.shape.graph import NULL

    analyzer = Analyzer(benchmark_program())
    result = benchmark.pedantic(
        lambda: analyzer.analyze("quicksort", domain="am"),
        rounds=1,
        iterations=1,
    )
    found = False
    for entry, summary in result.summaries:
        for heap in summary:
            n_in = heap.graph.labels.get(T.entry_copy("a"), NULL)
            n_out = heap.graph.labels.get("res", NULL)
            if n_in == NULL or n_out == NULL:
                continue
            found = True
            row = {
                T.mhd(n_in): Fraction(1),
                T.mtl(n_in): Fraction(1),
                T.mhd(n_out): Fraction(-1),
                T.mtl(n_out): Fraction(-1),
            }
            assert AM.entails_row(heap.value, row)
    assert found
