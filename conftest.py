"""Pytest bootstrap: make ``src/repro`` importable without installation.

The sandbox used for the reproduction has no network, so ``pip install -e .``
cannot fetch the ``wheel`` build dependency; this shim provides the same
effect for test runs.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
