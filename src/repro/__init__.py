"""repro: a reproduction of "On Inter-Procedural Analysis of Programs with
Lists and Data" (Bouajjani, Dragoi, Enea, Sighireanu -- PLDI 2011).

The package implements the CELIA analysis stack from scratch:

- :mod:`repro.lang` -- the LISL language (parser, type checker, CFG/ICFG);
- :mod:`repro.concrete` -- concrete semantics (testing oracle);
- :mod:`repro.numeric` -- exact rational linear-arithmetic substrate;
- :mod:`repro.datawords` -- the AU (universal formulas) and AM (multisets)
  logical data-word domains;
- :mod:`repro.shape` -- abstract heaps and heap sets;
- :mod:`repro.core` -- the inter-procedural analysis, domain combination
  (strengthen/convert), assertion checking and procedure equivalence.

Quick start::

    from repro import Analyzer
    a = Analyzer.from_source('''
        proc inc(x: list, v: int) returns (r: list) {
          local c: list;
          r = x; c = x;
          while (c != NULL) { c->data = v; c = c->next; }
        }
    ''')
    print(a.analyze("inc", domain="au").describe())
"""

from repro.core.api import Analyzer, AnalysisResult, Diagnostic, choose_patterns
from repro.engine import EngineOptions, SummaryCache

__version__ = "0.1.0"

__all__ = [
    "Analyzer",
    "AnalysisResult",
    "Diagnostic",
    "EngineOptions",
    "SummaryCache",
    "choose_patterns",
    "__version__",
]
