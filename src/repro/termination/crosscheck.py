"""Differential validation of ``terminating`` verdicts against concrete runs.

The prover's contract is that *terminating* is a proof with a derived
bound: if a loop's certificate measure is ``m`` at loop entry, decrease
at every head arrival plus the arrival bound (``>= -1``) caps the number
of back-edge arrivals at ``m + 2``; a recursive certificate caps every
recursion chain by the entry measure.  This module replays exactly those
obligations concretely: an :class:`~repro.concrete.interp.Interpreter`
``edge_observer`` watches every taken edge, evaluates the certificate
measures on the live environment, and records a violation whenever a
concrete run

* fails to strictly decrease the measure at a back-edge arrival,
* drops a data measure below the arrival bound,
* exceeds the derived arrival bound, or
* reaches a recursive call whose actuals do not measure strictly below
  the frame's entry.

Any violation contradicts a proof, because certificates are only
attached to *terminating* sites.  Wired into the fuzz CLI as
``python -m repro.fuzz --check-termination`` (mirroring
``--check-safety``).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.concrete.heap import Cell, to_cells
from repro.concrete.interp import (
    AssertFailure,
    AssumeFailure,
    ConcreteError,
    Interpreter,
)
from repro.core.api import Analyzer
from repro.fuzz.oracle import Finding
from repro.lang import ast as A
from repro.lang.cfg import OpCall
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lang.typecheck import typecheck_program
from repro.checker.crosscheck import CrossCheckConfig
from repro.termination.candidates import RankCandidate
from repro.termination.driver import TerminationOptions, check_termination
from repro.termination.recursion import SlotCandidate
from repro.termination.report import Certificate, TerminationReport

#: Reserved per-frame environment key for observer state.  ``$`` never
#: occurs in LISL identifiers, so the interpreter's semantics (and the
#: safety cross-check's frame observer) never look at it.
_STATE_KEY = "$term$state"


def _list_len(value) -> Optional[int]:
    """Concrete backbone length; None on a cycle (measure undefined)."""
    n = 0
    seen: Set[int] = set()
    cur = value
    while isinstance(cur, Cell):
        if id(cur) in seen:
            return None
        seen.add(id(cur))
        n += 1
        cur = cur.next
    return n


def _prev_len(value) -> Optional[int]:
    """Concrete distance from the head along ``prev``; None on a cycle."""
    n = 0
    seen: Set[int] = set()
    cur = value
    while isinstance(cur, Cell):
        if id(cur) in seen:
            return None
        seen.add(id(cur))
        n += 1
        cur = cur.prev
    return n


def _eval_expr(expr: A.Expr, env) -> Optional[int]:
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.Var):
        value = env.get(expr.name)
        return value if isinstance(value, int) else None
    if isinstance(expr, A.DataOf):
        base = env.get(expr.base.name)
        return base.data if isinstance(base, Cell) else None
    if isinstance(expr, A.BinOp):
        left = _eval_expr(expr.left, env)
        right = _eval_expr(expr.right, env)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
    return None


def concrete_measure(candidate, names: Sequence[str], env) -> Optional[int]:
    """Evaluate a certificate candidate's measure over ``names``.

    For loop candidates ``names`` is the candidate's own ``ptr_vars``;
    for recursion candidates it is either the formals (entry measure) or
    the call's actuals.
    """
    if isinstance(candidate, RankCandidate) and candidate.kind == "data":
        return _eval_expr(candidate.expr, env)
    reverse = isinstance(candidate, RankCandidate) and candidate.kind == "revptr"
    kind = (
        candidate.type
        if isinstance(candidate, SlotCandidate)
        else A.LIST  # ptr/revptr RankCandidate
    )
    total = 0
    for name in names:
        value = env.get(name)
        if kind == A.INT:
            if not isinstance(value, int):
                return None
            total += value
        else:
            part = _prev_len(value) if reverse else _list_len(value)
            if part is None:
                return None
            total += part
    return total


class _TerminationObserver:
    """Replays loop/recursion certificates along a concrete execution."""

    def __init__(self, certs_by_proc: Dict[str, List[Certificate]], violations):
        self.certs_by_proc = certs_by_proc
        self.violations: List[Tuple[str, Optional[int], str]] = violations

    def _violate(self, proc: str, line: Optional[int], message: str) -> None:
        self.violations.append((proc, line, message))

    def __call__(self, cfg, edge, env) -> None:
        certs = self.certs_by_proc.get(cfg.proc_name)
        if not certs:
            return
        state = env.get(_STATE_KEY)
        if state is None:
            # First observed edge of this frame: env is still the entry
            # environment (observers run before the edge executes), so
            # snapshot the recursion entry measures now.
            state = {"entry": {}, "loops": {}}
            for i, cert in enumerate(certs):
                if cert.kind == "recursion":
                    state["entry"][i] = concrete_measure(
                        cert.candidate, cert.candidate.formals, env
                    )
            env[_STATE_KEY] = state
        for i, cert in enumerate(certs):
            if cert.kind == "loop":
                self._observe_loop(cfg, edge, env, state, i, cert)
            elif isinstance(edge.op, OpCall) and edge.op.proc == cfg.proc_name:
                self._observe_call(cfg, edge, env, state, i, cert)

    def _observe_loop(self, cfg, edge, env, state, i, cert: Certificate) -> None:
        if edge.dst != cert.head:
            return
        m = concrete_measure(cert.candidate, cert.candidate.ptr_vars, env)
        loop_state = state["loops"].get(i)
        if edge.src not in cert.region or loop_state is None:
            # Entering the loop from outside (or first sighting): reset.
            state["loops"][i] = {"first": m, "prev": m, "arrivals": 0}
            return
        if m is None or loop_state["prev"] is None:
            loop_state.update(first=None, prev=None)
            return  # measure undefined on this run; nothing to refute
        loop_state["arrivals"] += 1
        line = edge.line or None
        if m >= loop_state["prev"]:
            self._violate(
                cfg.proc_name,
                line,
                f"loop measure {cert.label} did not decrease at a head "
                f"arrival ({loop_state['prev']} -> {m})",
            )
        if not cert.candidate.bounded_structurally() and m < -1:
            self._violate(
                cfg.proc_name,
                line,
                f"loop measure {cert.label} fell below the arrival bound "
                f"(-1) to {m}",
            )
        if (
            loop_state["first"] is not None
            and loop_state["arrivals"] > loop_state["first"] + 2
        ):
            self._violate(
                cfg.proc_name,
                line,
                f"loop exceeded its derived bound: {loop_state['arrivals']} "
                f"arrivals from an entry measure of {loop_state['first']} "
                f"({cert.label})",
            )
        loop_state["prev"] = m

    def _observe_call(self, cfg, edge, env, state, i, cert: Certificate) -> None:
        entry = state["entry"].get(i)
        cand: SlotCandidate = cert.candidate
        formal_pos = {p.name: j for j, p in enumerate(cfg.inputs)}
        actual_names = [edge.op.args[formal_pos[f]] for f in cand.formals]
        actual = concrete_measure(cand, actual_names, env)
        if entry is None or actual is None:
            return
        line = edge.line or None
        if actual >= entry:
            self._violate(
                cfg.proc_name,
                line,
                f"recursive call measure {cert.label} did not decrease "
                f"({entry} -> {actual})",
            )
        if cand.type == A.INT and actual < 0:
            self._violate(
                cfg.proc_name,
                line,
                f"recursive call measure {cert.label} went negative ({actual})",
            )


class TerminationCrossChecker:
    """Concrete-vs-prover differential harness (``--check-termination``)."""

    def __init__(self, config: Optional[CrossCheckConfig] = None):
        self.config = config or CrossCheckConfig(domain="au")
        self.skips: Dict[str, int] = {"run": 0}

    def random_input_views(self, rng: random.Random, cfg) -> List:
        views: List = []
        for p in cfg.inputs:
            if p.type == A.INT:
                views.append(rng.randint(self.config.data_lo, self.config.data_hi))
            else:
                views.append(
                    [
                        rng.randint(self.config.data_lo, self.config.data_hi)
                        for _ in range(rng.randint(0, self.config.max_list_len))
                    ]
                )
        return views

    # -- entry points (duck-typed to the fuzz oracle interface) -------------

    def check_program(self, program: A.Program, root: str, seed: int) -> List[Finding]:
        try:
            norm = normalize_program(typecheck_program(program))
            analyzer = Analyzer(norm)
            cfg = analyzer.icfg.cfg(root)
        except Exception as exc:  # generator guarantees this never happens
            return [
                Finding(
                    kind="crash",
                    domain="termination",
                    root=root,
                    message=f"{type(exc).__name__}: {exc}",
                    source=pretty_program(program),
                    seed=seed,
                )
            ]
        rng = random.Random(seed)
        views_list = [
            self.random_input_views(rng, cfg) for _ in range(self.config.rounds)
        ]
        return self.check_views(program, root, views_list, seed=seed)

    def check_source(
        self,
        source: str,
        root: str,
        views_list: Sequence[List],
        seed: Optional[int] = None,
    ) -> List[Finding]:
        program = typecheck_program(parse_program(source))
        return self.check_views(program, root, views_list, seed=seed)

    def check_views(
        self,
        program: A.Program,
        root: str,
        views_list: Sequence[List],
        seed: Optional[int] = None,
    ) -> List[Finding]:
        norm = normalize_program(typecheck_program(program))
        analyzer = Analyzer(norm)
        source = pretty_program(program)
        report = check_termination(
            analyzer,
            TerminationOptions(
                max_steps=self.config.engine_max_steps,
                max_seconds=self.config.engine_max_seconds,
            ),
        )
        certs_by_proc = {
            proc: report.certificates(proc) for proc in analyzer.icfg.cfgs
        }
        violations = self._observe(analyzer, root, views_list, certs_by_proc)
        return self._findings(report, violations, root, source, seed)

    # -- concrete side -------------------------------------------------------

    def _observe(
        self,
        analyzer: Analyzer,
        root: str,
        views_list: Sequence[List],
        certs_by_proc: Dict[str, List[Certificate]],
    ) -> List[Tuple[str, Optional[int], str]]:
        violations: List[Tuple[str, Optional[int], str]] = []
        interp = Interpreter(analyzer.icfg, max_steps=self.config.max_interp_steps)
        interp.edge_observer = _TerminationObserver(certs_by_proc, violations)
        cfg = analyzer.icfg.cfg(root)
        for views in views_list:
            args = [to_cells(list(v)) if isinstance(v, list) else v for v in views]
            if len(args) != len(cfg.inputs):
                continue
            try:
                interp.run(root, args)
            except ConcreteError:
                # Faults and budget exhaustion end the run, but every
                # violation observed up to that point stands.
                self.skips["run"] += 1
            except (AssumeFailure, AssertFailure, RecursionError):
                self.skips["run"] += 1
        return violations

    # -- verdict comparison ---------------------------------------------------

    def _findings(
        self,
        report: TerminationReport,
        violations: List[Tuple[str, Optional[int], str]],
        root: str,
        source: str,
        seed: Optional[int],
    ) -> List[Finding]:
        findings: List[Finding] = []
        seen: Set[str] = set()
        for proc, line, message in violations:
            where = f"{proc}:{line}" if line else proc
            text = (
                f"concrete run contradicts a terminating verdict at {where}: "
                f"{message}"
            )
            if text in seen:
                continue
            seen.add(text)
            findings.append(
                Finding(
                    kind="checker",
                    domain="termination",
                    root=root,
                    message=text,
                    source=source,
                    seed=seed,
                )
            )
        return findings
