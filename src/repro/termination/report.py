"""Termination sites, report aggregation and the findings adapter.

Mirrors :mod:`repro.checker.safety`'s report shape so the driver,
service cache and CLI treat the termination tier uniformly: one
:class:`TerminationSite` per discharged obligation (a loop head or a
recursive procedure), an ``ok``/``cutpoint``/``budget`` status per
procedure, and a :meth:`TerminationReport.findings` view that suppresses
*terminating* proofs unless asked (``--include-safe``) and appends
``checker.incomplete`` notes for degraded procedures.

The three-valued vocabulary is deliberately asymmetric:

* ``terminating`` — every obligation carries a proved ranking certificate;
* ``possibly-nonterminating`` — *positive* evidence: the analysis
  completed and, for every candidate measure, non-decrease across an
  iteration (or a recursive call) is itself provable;
* ``unknown`` — everything else, including every budget degradation.

So a terminating program can never be flagged possibly-nonterminating by
a failed proof alone, and the fuzz lane can hold ``terminating`` to a
hard contract (a concrete run past the derived bound refutes it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checker.findings import (
    CheckFinding,
    POSSIBLY_NONTERMINATING,
    RULE_CHECKER_INCOMPLETE,
    RULE_SAFETY_TERMINATION,
    TERMINATING,
    UNKNOWN,
    sort_findings,
)


@dataclass
class Certificate:
    """What was proved (or disproved), in replayable form.

    ``candidate`` keeps the live object
    (:class:`~repro.termination.candidates.RankCandidate` for loops,
    :class:`~repro.termination.recursion.SlotCandidate` for recursion) so
    the fuzz refutation lane can evaluate the same measure concretely;
    node ids align with the interpreter's CFG because both sides run on
    the same normalized ICFG.
    """

    kind: str  # "loop" | "recursion"
    proc: str
    head: Optional[int] = None  # loop head node (loops only)
    back_srcs: tuple = ()
    region: tuple = ()
    candidate: Optional[object] = None
    label: str = ""


@dataclass
class TerminationSite:
    """One obligation (a loop, or a procedure's recursion) with verdict."""

    proc: str
    line: Optional[int]
    kind: str  # "loop" | "recursion"
    verdict: str
    message: str
    witness: Dict[str, object] = field(default_factory=dict)
    cert: Optional[Certificate] = None  # only on proved (terminating) sites

    def to_finding(self) -> CheckFinding:
        return CheckFinding(
            rule_id=RULE_SAFETY_TERMINATION,
            verdict=self.verdict,
            message=self.message,
            procedure=self.proc,
            line=self.line,
            witness=dict(self.witness),
        )


@dataclass
class TerminationReport:
    sites: List[TerminationSite] = field(default_factory=list)
    # proc -> "ok" | "cutpoint: ..." | "budget: ..." | "mutual recursion"
    proc_status: Dict[str, str] = field(default_factory=dict)
    seconds: float = 0.0

    def findings(self, include_safe: bool = False) -> List[CheckFinding]:
        out = [
            site.to_finding()
            for site in self.sites
            if include_safe or site.verdict != TERMINATING
        ]
        for proc, status in sorted(self.proc_status.items()):
            if status in ("ok", "mutual recursion"):
                continue
            out.append(
                CheckFinding(
                    rule_id=RULE_CHECKER_INCOMPLETE,
                    verdict=UNKNOWN,
                    message=f"analysis of '{proc}' incomplete ({status}); "
                    "termination verdicts degraded to unknown",
                    procedure=proc,
                )
            )
        return sort_findings(out)

    # -- per-procedure aggregation (the benchmark column & cross-check API) --

    def proc_verdict(self, proc: str) -> str:
        """possibly-nonterminating > unknown > terminating.

        A procedure with no loops and no recursion has no obligations
        and is terminating outright (its own control flow is a DAG;
        callees carry their own verdicts).
        """
        verdicts = [s.verdict for s in self.sites if s.proc == proc]
        if POSSIBLY_NONTERMINATING in verdicts:
            return POSSIBLY_NONTERMINATING
        if UNKNOWN in verdicts:
            return UNKNOWN
        return TERMINATING

    def certificates(self, proc: str) -> List[Certificate]:
        return [
            s.cert
            for s in self.sites
            if s.proc == proc and s.cert is not None and s.verdict == TERMINATING
        ]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for site in self.sites:
            out[site.verdict] = out.get(site.verdict, 0) + 1
        return out
