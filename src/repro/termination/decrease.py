"""Strict-decrease checking against the engine's fixpoint states.

The engine's loop-head states are *invariants*: every concrete state at
the head of the loop is in their concretization.  So one sound way to
check that a measure ``m`` decreases across an arbitrary iteration is:

1. seed a ghost data variable ``$rnk == m`` on every loop-head heap
   (:data:`~repro.termination.candidates.RANK_VAR` — outside the LISL
   identifier space, so it survives every transformer untouched);
2. propagate the seeded states through the loop's body region exactly
   once, with the engine's own transfer functions (inner loops reach
   their own fixpoints under the usual delayed widening; calls are
   composed read-only from the records the original analysis already
   tabulated);
3. at every heap arriving back at the head, recompute the measure ``m'``
   on the *arrival* backbone and ask the entailment layer for
   ``$rnk - m' >= 1`` (strict decrease) and — for data measures, which
   are not structurally bounded — ``m' >= -1`` (arrival bound).

Decrease at every arrival plus the arrival bound gives well-foundedness:
arrival measures form a strictly decreasing integer sequence bounded
below, so the loop makes at most ``m0 + 2`` head visits from an entry
measure of ``m0`` — the derived bound the fuzz refutation lane replays
concretely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.localheap import CutpointError, build_call_entry, compose_return
from repro.lang.cfg import CFG, OpAssert, OpAssume, OpCall
from repro.numeric.linexpr import Constraint, LinExpr
from repro.shape.abstract_heap import AbstractHeap
from repro.shape.heap_set import HeapSet
from repro.termination.candidates import (
    RANK_VAR,
    LoopInfo,
    RankCandidate,
    measure_expr,
)


class TerminationIncomplete(Exception):
    """The obligation could not be discharged (budget, missing summary)."""


@dataclass
class LoopCheck:
    """Outcome of trying every candidate on one loop."""

    proved: Optional[RankCandidate]  # the certificate measure, if any
    # every candidate for which non-decrease (m' >= $rnk) is *provable*
    # at some arrival — positive evidence the loop may spin
    nondecreasing: List[str]
    tried: List[str]


def _entails(domain, value, constraint: Constraint) -> bool:
    """One entailment query (split out so the mutant tests can lie here)."""
    return domain.entails_constraint(value, constraint)


class LoopPropagator:
    """One-iteration propagation of seeded states through a loop region."""

    def __init__(
        self,
        engine,
        cfg: CFG,
        max_steps: int = 4000,
        deadline: Optional[float] = None,
    ):
        self.engine = engine
        self.domain = engine.domain
        self.transfer = engine.transfer
        self.cfg = cfg
        self.max_steps = max_steps
        self.deadline = deadline

    # -- edge semantics (mirrors Engine._post_edge, read-only) -------------

    def _post_edge(self, edge, state: HeapSet) -> HeapSet:
        op = edge.op
        if isinstance(op, OpCall):
            return self._post_call(op, state)
        if isinstance(op, (OpAssume, OpAssert)):
            return state
        return state.map(self.domain, lambda h: self.transfer.post(op, h))

    def _post_call(self, op: OpCall, state: HeapSet) -> HeapSet:
        """Compose callee summaries without growing the record table.

        Records are keyed on the backbone of the canonical entry heap, so
        the ghost ``$rnk`` constraint never changes the lookup: every
        record needed here was already tabulated by the original root
        analysis.  A miss means that analysis was incomplete — degrade.
        """
        domain = self.domain
        try:
            callee_cfg = self.engine.icfg.cfg(op.proc)
        except KeyError:
            raise TerminationIncomplete(f"unknown callee {op.proc!r}")
        results: List[AbstractHeap] = []
        for heap in state:
            try:
                info = build_call_entry(domain, heap, callee_cfg, op)
            except CutpointError as exc:
                raise TerminationIncomplete(f"cutpoint at call: {exc}")
            record = self.engine.record_for(op.proc, info.entry_heap)
            if record is None:
                raise TerminationIncomplete(
                    f"no tabulated summary for call to {op.proc!r}"
                )
            for exit_heap in record.summary:
                composed = compose_return(
                    domain, heap, exit_heap, callee_cfg, op, info
                )
                if composed is None:
                    continue
                composed = composed.gc(domain)
                composed = composed.fold(domain, self.transfer.k)
                if not composed.is_bottom(domain):
                    results.append(composed.canonicalize(domain))
        return HeapSet.of(domain, results)

    # -- the one-iteration worklist ----------------------------------------

    def arrivals(self, loop: LoopInfo, seeded: HeapSet) -> HeapSet:
        """States reaching the head via a back edge after one iteration."""
        domain = self.domain
        cfg = self.cfg
        states: Dict[int, HeapSet] = {loop.head: seeded}
        pending: List[int] = [loop.head]
        visits: Dict[int, int] = {}
        arrived = HeapSet.bottom()
        steps = 0
        while pending:
            steps += 1
            if steps > self.max_steps:
                raise TerminationIncomplete(
                    f"loop propagation exceeded {self.max_steps} steps"
                )
            if self.deadline is not None and time.monotonic() > self.deadline:
                raise TerminationIncomplete("wall-clock budget exhausted")
            node = pending.pop(0)
            state = states.get(node)
            if state is None or state.is_bottom():
                continue
            for edge in cfg.out_edges(node):
                if edge.dst == loop.head:
                    # Any region -> head edge is a back edge: record the
                    # arrival, do not re-enter the head (one iteration).
                    out = self._post_edge(edge, state)
                    arrived = arrived.join(out, domain)
                    continue
                if edge.dst not in loop.region:
                    continue  # a loop exit; irrelevant to decrease
                out = self._post_edge(edge, state)
                if out.is_bottom():
                    continue
                old = states.get(edge.dst, HeapSet.bottom())
                if out.leq(old, domain):
                    continue
                visits[edge.dst] = visits.get(edge.dst, 0) + 1
                if edge.dst in cfg.widen_points and visits[edge.dst] > 3:
                    new = old.widen(out.join(old, domain), domain)
                else:
                    new = old.join(out, domain)
                states[edge.dst] = new
                if edge.dst not in pending:
                    pending.append(edge.dst)
        return arrived


def seed_rank(domain, heads: HeapSet, candidate: RankCandidate) -> Optional[HeapSet]:
    """Meet ``$rnk == measure`` onto every head heap.

    None when the measure is undefined on some head heap (the candidate
    cannot rank this loop).
    """
    seeded: List[AbstractHeap] = []
    for heap in heads:
        m = measure_expr(candidate, heap.graph)
        if m is None:
            return None
        constraint = Constraint.eq(LinExpr.var(RANK_VAR), m)
        seeded.append(
            AbstractHeap(heap.graph, domain.meet_constraint(heap.value, constraint))
        )
    return HeapSet.of(domain, seeded)


def check_loop(
    engine,
    cfg: CFG,
    loop: LoopInfo,
    candidates: List[RankCandidate],
    max_steps: int = 4000,
    deadline: Optional[float] = None,
) -> LoopCheck:
    """Try every candidate; first proved one wins (certificate order)."""
    domain = engine.domain
    heads = _head_states(engine, cfg)
    head_state = heads.get(loop.head)
    check = LoopCheck(proved=None, nondecreasing=[], tried=[c.label for c in candidates])
    if head_state is None or head_state.is_bottom():
        # The loop is unreachable in every tabulated context: vacuously
        # terminating (there is no iteration to rank).
        check.proved = candidates[0] if candidates else RankCandidate(
            kind="ptr", ptr_vars=(), label="unreachable"
        )
        return check
    propagator = LoopPropagator(engine, cfg, max_steps=max_steps, deadline=deadline)
    one = LinExpr.const_expr(1)
    minus_one = LinExpr.const_expr(-1)
    rank = LinExpr.var(RANK_VAR)
    for candidate in candidates:
        seeded = seed_rank(domain, head_state, candidate)
        if seeded is None:
            continue
        arrivals = propagator.arrivals(loop, seeded)
        decreases = True
        nondecrease_witnessed = False
        for heap in arrivals:
            m_next = measure_expr(candidate, heap.graph)
            if m_next is None:
                decreases = False
                break
            if not _entails(domain, heap.value, Constraint.ge(rank - m_next, one)):
                decreases = False
                if _entails(domain, heap.value, Constraint.ge(m_next, rank)):
                    nondecrease_witnessed = True
                break
            if not candidate.bounded_structurally() and not _entails(
                domain, heap.value, Constraint.ge(m_next, minus_one)
            ):
                decreases = False
                break
        if decreases:
            check.proved = candidate
            return check
        if nondecrease_witnessed:
            check.nondecreasing.append(candidate.label)
    return check


def _head_states(engine, cfg: CFG) -> Dict[int, HeapSet]:
    """Join the per-node states of every record of this procedure."""
    domain = engine.domain
    out: Dict[int, HeapSet] = {}
    for record in engine.records.values():
        if record.proc != cfg.proc_name:
            continue
        for node, state in record.states.items():
            old = out.get(node)
            out[node] = state if old is None else old.join(state, domain)
    return out
