"""Termination of recursive procedures via entry-snapshot comparison.

The engine already gives us exactly the relation a size-change argument
needs: inside every record of a procedure ``p``, the abstract states
carry the *entry snapshots* of the formals (``x$0`` labels for list
formals, ``i$0 == i``-at-entry constraints for int formals — see
:func:`repro.core.localheap.build_call_entry`).  So at every recursive
call site ``p(a, ...)`` we can ask the entailment layer whether the
actual is strictly smaller than what the formal was at entry:

* list formal ``f``:  ``pathlen(f$0) - pathlen(a) >= 1``;
* int  formal ``f``:  ``f$0 - a >= 1``  and  ``a >= 0`` (well-founded).

If one formal slot (or the sum of all list formals) satisfies this in
every heap of every tabulated state at every recursive call edge, every
recursion chain strictly shrinks a well-founded measure and must bottom
out.

Only *direct* self-recursion is handled rigorously; procedures on a
multi-procedure call-graph cycle degrade honestly to ``unknown`` (the
benchmark suite, like the paper's, recurses only directly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.datawords import terms as T
from repro.lang import ast as A
from repro.lang.cfg import CFG, ICFG, Edge, OpCall
from repro.numeric.linexpr import Constraint, LinExpr
from repro.termination import decrease
from repro.termination.candidates import pathlen_expr


@dataclass(frozen=True)
class SlotCandidate:
    """One per-call measure: a formal slot (or the all-lists sum)."""

    formals: Tuple[str, ...]  # formal names (list or int, never mixed)
    type: str  # A.LIST or A.INT
    label: str


@dataclass
class RecursionCheck:
    """Outcome of trying every slot candidate on one recursive proc."""

    proved: Optional[SlotCandidate]
    nondecreasing: List[str]
    tried: List[str]
    call_lines: Tuple[int, ...] = ()


def direct_sccs(icfg: ICFG) -> Tuple[Set[str], Set[str]]:
    """(purely self-recursive procs, procs on multi-procedure cycles).

    A proc that self-recurses *and* sits on a cycle through another proc
    goes in the second set: the slot check below only covers its direct
    calls, so claiming a proof would be unsound.
    """
    graph = icfg.call_graph()
    recursive = icfg.recursive_procs()
    mutual = {name for name in recursive if _on_multi_cycle(graph, name)}
    direct = {
        name
        for name in recursive
        if name in graph.get(name, ()) and name not in mutual
    }
    return direct, mutual


def _on_multi_cycle(graph: Dict[str, Set[str]], start: str) -> bool:
    """Does ``start`` sit on a cycle through some *other* procedure?"""
    for first in graph.get(start, ()):
        if first == start:
            continue
        stack, seen = [first], {first}
        while stack:
            current = stack.pop()
            if current == start:
                return True
            for callee in graph.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
    return False


def slot_candidates(cfg: CFG) -> List[SlotCandidate]:
    out: List[SlotCandidate] = []
    list_formals = [p.name for p in cfg.inputs if p.type == A.LIST]
    for p in cfg.inputs:
        if p.type == A.LIST:
            out.append(SlotCandidate((p.name,), A.LIST, f"pathlen({p.name})"))
        elif p.type == A.INT:
            out.append(SlotCandidate((p.name,), A.INT, p.name))
    if len(list_formals) >= 2:
        out.append(
            SlotCandidate(
                tuple(list_formals),
                A.LIST,
                "pathlen(" + ")+pathlen(".join(list_formals) + ")",
            )
        )
    return out


def _slot_exprs(
    candidate: SlotCandidate, op: OpCall, cfg: CFG, graph
) -> Optional[Tuple[LinExpr, LinExpr]]:
    """(entry measure, actual-argument measure) on one heap, or None."""
    formal_pos = {p.name: i for i, p in enumerate(cfg.inputs)}
    entry = LinExpr.const_expr(0)
    actual = LinExpr.const_expr(0)
    for formal in candidate.formals:
        arg = op.args[formal_pos[formal]]
        if candidate.type == A.LIST:
            e = pathlen_expr(graph, T.entry_copy(formal))
            a = pathlen_expr(graph, arg)
            if e is None or a is None:
                return None
            entry, actual = entry + e, actual + a
        else:
            entry = entry + LinExpr.var(T.entry_copy(formal))
            actual = actual + LinExpr.var(arg)
    return entry, actual


def check_recursion(engine, cfg: CFG) -> RecursionCheck:
    """Try every slot candidate against every tabulated self-call state."""
    domain = engine.domain
    self_calls: List[Edge] = [
        e for e in cfg.call_sites() if e.op.proc == cfg.proc_name
    ]
    candidates = slot_candidates(cfg)
    check = RecursionCheck(
        proved=None,
        nondecreasing=[],
        tried=[c.label for c in candidates],
        call_lines=tuple(sorted({e.line for e in self_calls if e.line})),
    )
    # Every (call edge, heap) pair the analysis tabulated for this proc.
    sites: List[Tuple[Edge, object, object]] = []  # (edge, heap, value)
    for record in engine.records.values():
        if record.proc != cfg.proc_name:
            continue
        for edge in self_calls:
            state = record.states.get(edge.src)
            if state is None:
                continue
            for heap in state:
                sites.append((edge, heap.graph, heap.value))
    if not sites:
        # No reachable self-call in any context: vacuously terminating.
        check.proved = candidates[0] if candidates else SlotCandidate((), A.INT, "unreachable")
        return check
    one = LinExpr.const_expr(1)
    for candidate in candidates:
        holds = True
        nondecrease_witnessed = False
        for edge, graph, value in sites:
            exprs = _slot_exprs(candidate, edge.op, cfg, graph)
            if exprs is None:
                holds = False
                break
            entry, actual = exprs
            if not decrease._entails(domain, value, Constraint.ge(entry - actual, one)):
                holds = False
                if decrease._entails(domain, value, Constraint.ge(actual - entry)):
                    nondecrease_witnessed = True
                break
            if candidate.type == A.INT and not decrease._entails(
                domain, value, Constraint.ge(actual)
            ):
                holds = False
                break
        if holds:
            check.proved = candidate
            return check
        if nondecrease_witnessed:
            check.nondecreasing.append(candidate.label)
    return check
