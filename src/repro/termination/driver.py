"""The termination tier's driver: per-procedure proving, honest budgets.

Like :func:`repro.checker.safety.check_safety`, every selected procedure
is analyzed as a root over its generic entries (summary caching off so
``Record.states`` is populated), then each loop and each direct
recursion is discharged against the resulting fixpoint states.  The AU
domain is the default — termination needs the length terms the paper's
universal domain carries; the multiset domain has none.

``max_seconds`` is a *total* wall-clock budget shared across all
selected procedures (the same contract
:func:`~repro.checker.safety.check_safety` honors): when it runs out,
remaining obligations degrade to ``unknown`` with a
``checker.incomplete`` note instead of stalling the lint run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.localheap import CutpointError
from repro.datawords.patterns import PatternSet
from repro.engine import EngineOptions
from repro.lang.cfg import CFG
from repro.checker.findings import (
    POSSIBLY_NONTERMINATING,
    TERMINATING,
    TERMINATION_RULE_IDS,
    UNKNOWN,
)
from repro.termination.candidates import LoopInfo, find_loops, loop_candidates
from repro.termination.decrease import TerminationIncomplete, check_loop
from repro.termination.recursion import check_recursion, direct_sccs
from repro.termination.report import Certificate, TerminationReport, TerminationSite


@dataclass
class TerminationOptions:
    domain: str = "au"
    patterns: Optional[object] = None  # defaults to the minimal EQ2 closure
    k: int = 0
    procs: Optional[List[str]] = None
    rules: Optional[Iterable[str]] = None  # subset of TERMINATION_RULE_IDS
    max_steps: Optional[int] = None
    max_seconds: Optional[float] = None  # total across all procs
    loop_steps: int = 4000  # step cap for one-iteration propagation


def _loop_desc(loop: LoopInfo) -> str:
    return f"loop at line {loop.line}" if loop.line else f"loop at node {loop.head}"


def _unknown_loop_site(proc: str, loop: LoopInfo, reason: str) -> TerminationSite:
    return TerminationSite(
        proc=proc,
        line=loop.line,
        kind="loop",
        verdict=UNKNOWN,
        message=f"{_loop_desc(loop)} not proved terminating ({reason})",
        witness={"head": loop.head, "reason": reason},
    )


def _loop_site(proc: str, cfg: CFG, loop: LoopInfo, check) -> TerminationSite:
    desc = _loop_desc(loop)
    if check.proved is not None:
        cand = check.proved
        return TerminationSite(
            proc=proc,
            line=loop.line,
            kind="loop",
            verdict=TERMINATING,
            message=f"{desc} terminates: {cand.label or 'vacuous'} strictly decreases",
            witness={
                "head": loop.head,
                "candidate": cand.label,
                "tried": list(check.tried),
            },
            cert=Certificate(
                kind="loop",
                proc=proc,
                head=loop.head,
                back_srcs=tuple(loop.back_srcs),
                region=tuple(sorted(loop.region)),
                candidate=cand,
                label=cand.label,
            ),
        )
    if check.tried and len(check.nondecreasing) == len(check.tried):
        measures = ", ".join(check.nondecreasing)
        return TerminationSite(
            proc=proc,
            line=loop.line,
            kind="loop",
            verdict=POSSIBLY_NONTERMINATING,
            message=f"{desc} may not terminate: every candidate measure "
            f"({measures}) is provably non-decreasing across an iteration",
            witness={"head": loop.head, "nondecreasing": list(check.nondecreasing)},
        )
    reason = (
        "tried: " + ", ".join(check.tried) if check.tried else "no ranking candidates"
    )
    return _unknown_loop_site(proc, loop, reason)


def _recursion_site(proc: str, cfg: CFG, check) -> TerminationSite:
    line = min(check.call_lines) if check.call_lines else None
    if check.proved is not None:
        cand = check.proved
        return TerminationSite(
            proc=proc,
            line=line,
            kind="recursion",
            verdict=TERMINATING,
            message=f"recursion of '{proc}' terminates: {cand.label or 'vacuous'} "
            "strictly decreases at every recursive call",
            witness={
                "candidate": cand.label,
                "tried": list(check.tried),
                "call_lines": list(check.call_lines),
            },
            cert=Certificate(
                kind="recursion",
                proc=proc,
                candidate=cand,
                label=cand.label,
            ),
        )
    if check.tried and len(check.nondecreasing) == len(check.tried):
        measures = ", ".join(check.nondecreasing)
        return TerminationSite(
            proc=proc,
            line=line,
            kind="recursion",
            verdict=POSSIBLY_NONTERMINATING,
            message=f"recursion of '{proc}' may not terminate: every candidate "
            f"measure ({measures}) is provably non-decreasing at a recursive call",
            witness={"nondecreasing": list(check.nondecreasing)},
        )
    reason = (
        "tried: " + ", ".join(check.tried) if check.tried else "no ranking candidates"
    )
    return TerminationSite(
        proc=proc,
        line=line,
        kind="recursion",
        verdict=UNKNOWN,
        message=f"recursion of '{proc}' not proved terminating ({reason})",
        witness={"reason": reason},
    )


def _degraded_sites(
    proc: str, cfg: CFG, loops: List[LoopInfo], recursive: bool, mutual: bool
) -> List[TerminationSite]:
    sites = [_unknown_loop_site(proc, loop, "analysis incomplete") for loop in loops]
    if recursive or mutual:
        sites.append(
            TerminationSite(
                proc=proc,
                line=None,
                kind="recursion",
                verdict=UNKNOWN,
                message=f"recursion of '{proc}' not proved terminating "
                "(analysis incomplete)",
            )
        )
    return sites


def check_termination(
    analyzer, options: Optional[TerminationOptions] = None
) -> TerminationReport:
    """Prove (or honestly fail to prove) termination per procedure."""
    opts = options or TerminationOptions()
    if opts.rules is not None:
        unknown = set(opts.rules) - set(TERMINATION_RULE_IDS)
        if unknown:
            raise ValueError(f"unknown termination rules: {sorted(unknown)}")
    patterns = opts.patterns
    if patterns is None and opts.domain == "au":
        # Decrease checks only query the polyhedron E (lengths and data
        # intervals); the empty pattern set drops the universal clauses
        # entirely, which makes the AU fixpoint orders of magnitude
        # cheaper without losing any length precision.
        patterns = PatternSet(())
    procs = list(opts.procs) if opts.procs is not None else sorted(analyzer.icfg.cfgs)
    direct, mutual = direct_sccs(analyzer.icfg)
    report = TerminationReport()
    started = time.perf_counter()
    deadline = (
        time.monotonic() + opts.max_seconds if opts.max_seconds is not None else None
    )
    for proc in procs:
        cfg = analyzer.icfg.cfg(proc)
        loops = find_loops(cfg)
        is_direct = proc in direct
        is_mutual = proc in mutual
        if not loops and not is_direct and not is_mutual:
            report.proc_status[proc] = "ok"  # no obligations: a DAG body
            continue
        remaining: Optional[float] = None
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                report.proc_status[proc] = "budget: wall-clock budget exhausted"
                report.sites.extend(
                    _degraded_sites(proc, cfg, loops, is_direct, is_mutual)
                )
                continue
        try:
            result = analyzer.analyze(
                proc,
                domain=opts.domain,
                patterns=patterns,
                k=opts.k,
                max_steps=opts.max_steps,
                max_seconds=remaining,
                engine_opts=EngineOptions(point_states=True),
            )
        except CutpointError as exc:
            report.proc_status[proc] = f"cutpoint: {exc}"
            report.sites.extend(
                _degraded_sites(proc, cfg, loops, is_direct, is_mutual)
            )
            continue
        if not result.ok:
            report.proc_status[proc] = "budget: " + "; ".join(
                str(d) for d in result.diagnostics
            )
            report.sites.extend(
                _degraded_sites(proc, cfg, loops, is_direct, is_mutual)
            )
            continue
        engine = result.engine
        sites: List[TerminationSite] = []
        for loop in loops:
            candidates = loop_candidates(cfg, loop)
            try:
                check = check_loop(
                    engine,
                    cfg,
                    loop,
                    candidates,
                    max_steps=opts.loop_steps,
                    deadline=deadline,
                )
            except TerminationIncomplete as exc:
                sites.append(_unknown_loop_site(proc, loop, str(exc)))
                continue
            sites.append(_loop_site(proc, cfg, loop, check))
        if is_direct:
            sites.append(_recursion_site(proc, cfg, check_recursion(engine, cfg)))
        if is_mutual:
            sites.append(
                TerminationSite(
                    proc=proc,
                    line=None,
                    kind="recursion",
                    verdict=UNKNOWN,
                    message=f"recursion of '{proc}' through other procedures "
                    "is outside the prover's scope",
                    witness={"reason": "mutual recursion"},
                )
            )
        report.proc_status[proc] = "ok"
        report.sites.extend(sites)
    report.seconds = time.perf_counter() - started
    return report
