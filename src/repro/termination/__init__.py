"""Termination prover: ranking functions from the engine's AU states.

Public surface:

* :func:`repro.termination.driver.check_termination` — the tier driver;
* :class:`repro.termination.driver.TerminationOptions`;
* :class:`repro.termination.report.TerminationReport`;
* :class:`repro.termination.crosscheck.TerminationCrossChecker` — the
  fuzz refutation lane (a concrete run past the derived bound refutes a
  ``terminating`` verdict).
"""

from repro.termination.candidates import (
    RANK_VAR,
    LoopInfo,
    RankCandidate,
    find_loops,
    loop_candidates,
)
from repro.termination.driver import TerminationOptions, check_termination
from repro.termination.report import (
    Certificate,
    TerminationReport,
    TerminationSite,
)

__all__ = [
    "RANK_VAR",
    "LoopInfo",
    "RankCandidate",
    "find_loops",
    "loop_candidates",
    "TerminationOptions",
    "check_termination",
    "Certificate",
    "TerminationReport",
    "TerminationSite",
]
