"""Ranking-function candidates synthesized from loop structure (DESIGN §12).

The prover never guesses arbitrary expressions: candidates are read off
the CFG the same way the paper's AU summaries read lengths off the
backbone.  For a loop at head ``h``:

* every pointer variable tested non-NULL on the guard chain, and every
  pointer advanced by a ``x = y->next`` in the loop body, contributes the
  *path length* measure — the sum of ``len(n)`` over the backbone nodes
  on the ``succ`` path from the variable's label to NULL;
* when several pointers are guard-tested together (``cx != NULL && cz !=
  NULL``), their path-length *sum* is a candidate too (the merge idiom:
  each iteration consumes from one of the two);
* every data comparison on the guard chain (``i < n``) contributes the
  affine gap (``n - i``) as a data measure.

A candidate is a small closed description (never an abstract value), so
the same object is evaluated symbolically against abstract heaps by the
decrease checker and concretely against interpreter environments by the
fuzz refutation lane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.datawords import terms as T
from repro.lang import ast as A
from repro.lang.cfg import (
    CFG,
    OpAssignPtr,
    OpAssumeData,
    OpAssumePtr,
)
from repro.numeric.linexpr import LinExpr
from repro.shape.graph import NULL, HeapGraph

#: Ghost data variable carrying the seeded measure through one loop
#: iteration.  ``$`` never occurs in LISL identifiers (see
#: :mod:`repro.datawords.terms`), so the name cannot collide.
RANK_VAR = "$rnk"


@dataclass(frozen=True)
class RankCandidate:
    """One candidate ranking function.

    ``kind == "ptr"``: measure = sum of path lengths of ``ptr_vars``
    (structurally bounded below by 0).  ``kind == "revptr"``: measure =
    sum of *reverse* path lengths — the distance from the chain's head,
    for cursors advanced along ``prev`` in DLL programs; also
    structurally bounded.  ``kind == "data"``: measure = ``expr`` (an
    affine LISL data expression; bounded below only if the decrease
    checker proves it at the loop-head arrivals).
    """

    kind: str  # "ptr" | "revptr" | "data"
    ptr_vars: Tuple[str, ...] = ()
    expr: Optional[A.Expr] = field(default=None, compare=False)
    label: str = ""

    def describe(self) -> str:
        return self.label

    def bounded_structurally(self) -> bool:
        return self.kind in ("ptr", "revptr")


@dataclass
class LoopInfo:
    """One natural loop: head, back-edge sources, body region, guards."""

    head: int
    line: Optional[int]
    back_srcs: Tuple[int, ...]
    region: FrozenSet[int]  # includes the head
    guard_ptrs: Tuple[str, ...]  # vars tested non-NULL on the guard chain
    guard_data: Tuple[OpAssumeData, ...]


# ---------------------------------------------------------------------------
# Loop discovery


def _dominators(cfg: CFG) -> Dict[int, Set[int]]:
    """dom(n) for every node reachable from entry (iterative dataflow).

    Reachability alone cannot identify back edges here: in a nested
    loop, the *entry* edge of the inner loop is reachable from the inner
    head by going around the outer loop.  ``head dominates src`` is the
    correct test.
    """
    preds: Dict[int, List[int]] = {}
    order: List[int] = []
    seen: Set[int] = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        n = stack.pop()
        order.append(n)
        for e in cfg.out_edges(n):
            preds.setdefault(e.dst, []).append(n)
            if e.dst not in seen:
                seen.add(e.dst)
                stack.append(e.dst)
    dom: Dict[int, Set[int]] = {n: set(seen) for n in seen}
    dom[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for n in order:
            if n == cfg.entry:
                continue
            ps = [p for p in preds.get(n, ()) if p in dom]
            new = set.intersection(*(dom[p] for p in ps)) if ps else set()
            new.add(n)
            if new != dom[n]:
                dom[n] = new
                changed = True
    return dom


def _region_of(cfg: CFG, head: int, back_srcs: Sequence[int]) -> FrozenSet[int]:
    """The natural loop: nodes reaching a back-edge source avoiding the head."""
    preds: Dict[int, List[int]] = {}
    for edge in cfg.edges:
        preds.setdefault(edge.dst, []).append(edge.src)
    region: Set[int] = {head}
    stack = [s for s in back_srcs if s != head]
    while stack:
        n = stack.pop()
        if n in region:
            continue
        region.add(n)
        stack.extend(p for p in preds.get(n, ()) if p not in region)
    return frozenset(region)


def find_loops(cfg: CFG) -> List[LoopInfo]:
    """Every widen point with a back edge, as a :class:`LoopInfo`."""
    loops: List[LoopInfo] = []
    dom = _dominators(cfg)
    for head in sorted(cfg.widen_points):
        back_srcs = tuple(
            sorted(
                e.src
                for e in cfg.edges
                if e.dst == head and head in dom.get(e.src, ())
            )
        )
        if not back_srcs:
            continue  # a widen point that is not actually a loop head
        region = _region_of(cfg, head, back_srcs)
        guard_ptrs, guard_data = _guard_chain(cfg, head, region)
        loops.append(
            LoopInfo(
                head=head,
                line=cfg.node_lines.get(head) or None,
                back_srcs=back_srcs,
                region=region,
                guard_ptrs=guard_ptrs,
                guard_data=guard_data,
            )
        )
    return loops


def _guard_chain(
    cfg: CFG, head: int, region: FrozenSet[int]
) -> Tuple[Tuple[str, ...], Tuple[OpAssumeData, ...]]:
    """Assume ops on the pure-test chains from the head into the body."""
    ptrs: List[str] = []
    data: List[OpAssumeData] = []
    seen: Set[int] = set()
    stack = [head]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        for edge in cfg.out_edges(node):
            if edge.dst not in region or edge.dst == head:
                continue
            op = edge.op
            if isinstance(op, OpAssumePtr):
                if op.right is None and not op.equal and op.left not in ptrs:
                    ptrs.append(op.left)
            elif isinstance(op, OpAssumeData):
                data.append(op)
            else:
                continue
            succs = cfg.out_edges(edge.dst)
            if succs and all(
                isinstance(e.op, (OpAssumePtr, OpAssumeData)) for e in succs
            ):
                stack.append(edge.dst)
    return tuple(ptrs), tuple(data)


# ---------------------------------------------------------------------------
# Candidate generation


def _advanced_ptrs(
    cfg: CFG, region: FrozenSet[int], kind: str = "next"
) -> List[str]:
    """Pointers advanced along ``next`` (or ``prev``) inside the region.

    Catches both the direct ``c = c->next`` and the two-step
    ``n = c->next; ...; c = n`` cursor idiom.
    """
    next_targets: Set[str] = set()
    var_copies: List[Tuple[str, str]] = []  # target = source
    for edge in cfg.edges:
        if edge.src not in region or not isinstance(edge.op, OpAssignPtr):
            continue
        if edge.op.kind == kind:
            next_targets.add(edge.op.target)
        elif edge.op.kind == "var":
            var_copies.append((edge.op.target, edge.op.source))
    advanced = set(next_targets)
    for target, source in var_copies:
        if source in next_targets:
            advanced.add(target)
    return sorted(advanced)


def loop_candidates(cfg: CFG, loop: LoopInfo, max_candidates: int = 12) -> List[RankCandidate]:
    """All ranking candidates for one loop, deterministic order."""
    out: List[RankCandidate] = []
    seen: Set[str] = set()

    def add(candidate: RankCandidate) -> None:
        if candidate.label not in seen and len(out) < max_candidates:
            seen.add(candidate.label)
            out.append(candidate)

    ptr_vars = [v for v in loop.guard_ptrs]
    for v in _advanced_ptrs(cfg, loop.region):
        if v not in ptr_vars and v in _pointer_names(cfg):
            ptr_vars.append(v)
    for v in ptr_vars:
        add(RankCandidate(kind="ptr", ptr_vars=(v,), label=f"pathlen({v})"))
    # Backward (DLL) traversals: a cursor advanced along ``prev`` shrinks
    # its distance from the chain's head instead of its distance to NULL.
    for v in _advanced_ptrs(cfg, loop.region, kind="prev"):
        if v in _pointer_names(cfg):
            add(
                RankCandidate(
                    kind="revptr", ptr_vars=(v,), label=f"revpathlen({v})"
                )
            )
    if len(loop.guard_ptrs) >= 2:
        vs = tuple(sorted(loop.guard_ptrs))
        add(
            RankCandidate(
                kind="ptr",
                ptr_vars=vs,
                label="pathlen(" + ")+pathlen(".join(vs) + ")",
            )
        )
    for op in loop.guard_data:
        for expr, label in _data_measures(op):
            add(RankCandidate(kind="data", expr=expr, label=label))
    return out


def _pointer_names(cfg: CFG) -> Set[str]:
    return set(cfg.pointer_vars)


def _data_measures(op: OpAssumeData) -> List[Tuple[A.Expr, str]]:
    gap_lr = A.BinOp("-", op.right, op.left)  # right - left
    gap_rl = A.BinOp("-", op.left, op.right)  # left - right
    show_l, show_r = _show(op.left), _show(op.right)
    if op.op in ("<", "<="):
        return [(gap_lr, f"{show_r}-{show_l}")]
    if op.op in (">", ">="):
        return [(gap_rl, f"{show_l}-{show_r}")]
    return []  # == carries no direction


def _show(expr: A.Expr) -> str:
    if isinstance(expr, A.IntLit):
        return str(expr.value)
    if isinstance(expr, A.Var):
        return expr.name
    if isinstance(expr, A.DataOf):
        return f"{expr.base.name}->data"
    if isinstance(expr, A.BinOp):
        return f"({_show(expr.left)}{expr.op}{_show(expr.right)})"
    return repr(expr)


# ---------------------------------------------------------------------------
# Symbolic measure evaluation (abstract side)


def pathlen_from_node(graph: HeapGraph, node: str) -> Optional[LinExpr]:
    """Sum of ``len(n)`` terms along the succ path from ``node`` to NULL.

    None when the chain is cyclic or dangles (a node without a recorded
    successor): the measure is undefined on such heaps.
    """
    expr = LinExpr.const_expr(0)
    seen: Set[str] = set()
    while node != NULL:
        if node in seen or node not in graph.nodes:
            return None
        seen.add(node)
        expr = expr + LinExpr.var(T.length(node))
        nxt = graph.succ.get(node)
        if nxt is None:
            return None
        node = nxt
    return expr


def pathlen_expr(graph: HeapGraph, var: str) -> Optional[LinExpr]:
    node = graph.labels.get(var)
    if node is None:
        return None
    return pathlen_from_node(graph, node)


def revpathlen_from_node(graph: HeapGraph, node: str) -> Optional[LinExpr]:
    """``1 +`` sum of ``len(n)`` over the unique-predecessor chain above
    ``node`` — the cursor's distance from the chain's head, counting the
    cursor's own cell.

    None when an ancestor is shared (two predecessors make the distance
    ill-defined) or the chain cycles.
    """
    if node == NULL or node not in graph.nodes:
        return None
    expr = LinExpr.const_expr(1)
    seen: Set[str] = {node}
    here = node
    while True:
        preds = [p for p in graph.preds(here) if p != NULL]
        if not preds:
            return expr
        if len(preds) != 1 or preds[0] in seen:
            return None
        here = preds[0]
        seen.add(here)
        expr = expr + LinExpr.var(T.length(here))


def revpathlen_expr(graph: HeapGraph, var: str) -> Optional[LinExpr]:
    node = graph.labels.get(var)
    if node is None or node == NULL:
        return LinExpr.const_expr(0) if node == NULL else None
    return revpathlen_from_node(graph, node)


def measure_expr(candidate: RankCandidate, graph: HeapGraph) -> Optional[LinExpr]:
    """The candidate's measure over one abstract heap's terms (or None)."""
    if candidate.kind in ("ptr", "revptr"):
        measure = pathlen_expr if candidate.kind == "ptr" else revpathlen_expr
        total = LinExpr.const_expr(0)
        for var in candidate.ptr_vars:
            part = measure(graph, var)
            if part is None:
                return None
            total = total + part
        return total
    from repro.core.transfer import data_expr_to_linexpr

    try:
        return data_expr_to_linexpr(candidate.expr, graph)
    except Exception:  # NULL deref, unlabeled var: measure undefined here
        return None
