"""Single-analysis CLI: ``python -m repro FILE`` (also ``repro-analyze``).

Analyzes procedures of one LISL program and prints their summaries, or
— with ``--check-asserts`` — the assertion verdicts as structured
diagnostics (:mod:`repro.service.diagnostics`).  ``python -m repro lint
...`` dispatches to the checker CLI (:mod:`repro.checker.__main__`).

Examples::

    python -m repro prog.lisl --proc quicksort --domain au
    python -m repro prog.lisl --check-asserts --json
    python -m repro prog.lisl --proc f --strengthened
    python -m repro lint prog.lisl --tier all --sarif out.sarif
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.api import Analyzer
from repro.lang.parser import ParseError
from repro.lang.typecheck import TypeError_


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        from repro.checker.__main__ import main as lint_main

        return lint_main(argv[1:])
    ap = argparse.ArgumentParser(
        prog="python -m repro",
        description="analyze one LISL program (summaries or assertions); "
        "'python -m repro lint ...' runs the checker",
    )
    ap.add_argument("file", help="LISL program file")
    ap.add_argument("--proc", type=str, default=None,
                    help="procedure to analyze (default: every procedure)")
    ap.add_argument("--domain", type=str, default="au", choices=("au", "am"),
                    help="LDW domain")
    ap.add_argument("--k", type=int, default=0, help="fold bound k")
    ap.add_argument("--strengthened", action="store_true",
                    help="AHS(AM) then AHS(AU) with strengthen_M (§6.2)")
    ap.add_argument("--check-asserts", action="store_true",
                    help="run assertion checking; print diagnostics")
    ap.add_argument("--budget", type=float, default=None,
                    help="wall-clock budget per analysis (seconds)")
    ap.add_argument("--json", action="store_true",
                    help="print machine-readable JSON instead of text")
    args = ap.parse_args(argv)

    with open(args.file, "r", encoding="utf-8") as fh:
        source = fh.read()
    try:
        analyzer = Analyzer.from_source(source)
    except (ParseError, TypeError_) as exc:
        # Frontend failures are diagnostics records (frontend.*), not
        # tracebacks -- same envelope as checker findings.
        from repro.service.diagnostics import from_frontend_error, run_envelope

        record = from_frontend_error(exc, path=args.file)
        if args.json:
            print(json.dumps(run_envelope([record]), indent=2))
        else:
            where = args.file + (f":{record.line}" if record.line else "")
            print(f"[{record.verdict}] {record.rule_id} {where}: "
                  f"{record.message}", file=sys.stderr)
        return 2
    procs = [args.proc] if args.proc else sorted(analyzer.icfg.cfgs)

    if args.check_asserts:
        from repro.service.diagnostics import run_envelope
        from repro.service.jobs import AssertRequest, run_assert_request

        result = run_assert_request(
            AssertRequest(
                program=analyzer.program,
                procs=tuple(procs) if args.proc else (),
                domain=args.domain,
                k=args.k,
                max_seconds=args.budget,
            )
        )
        failed = [r for r in result["results"] if r["verdict"] != "pass"]
        if args.json:
            print(json.dumps(result, indent=2, default=repr))
        else:
            for record in result["results"]:
                where = record.get("procedure", "?")
                if record.get("line") is not None:
                    where += f":{record['line']}"
                print(f"[{record['verdict']}] {record['ruleId']} {where}: "
                      f"{record['message']}")
            if not result["results"]:
                print("no assertions found")
        return 1 if failed else 0

    exit_code = 0
    out = []
    for proc in procs:
        if args.strengthened:
            result = analyzer.analyze_strengthened(proc, k=args.k)
        else:
            result = analyzer.analyze(
                proc, domain=args.domain, k=args.k, max_seconds=args.budget
            )
        if not result.ok:
            exit_code = 1
        if args.json:
            from repro.engine.canon import graph_hash, heapset_hash

            out.append({
                "proc": proc,
                "domain": result.domain_name,
                "ok": result.ok,
                "summary_hashes": [
                    (graph_hash(e.graph), heapset_hash(s, result.domain))
                    for e, s in result.summaries
                ],
                "diagnostics": [str(d) for d in result.diagnostics],
                "stats": {k: v for k, v in result.stats.items()
                          if isinstance(v, (int, float, str))},
            })
        else:
            print(result.describe())
            print()
    if args.json:
        print(json.dumps(out, indent=2, default=repr))
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
