"""Tier B: summary-backed safety proofs from the engine's fixpoint states.

The engine's tabulation keeps, for every record (procedure × canonical
entry heap), the per-CFG-node :class:`HeapSet` fixpoint
(``Record.states``) -- exactly the per-program-point abstract states the
obligations need, so the checker spends zero extra fixpoint iterations.
Each procedure is analyzed as a *root* from its generic entries (every
pointer formal independently NULL or a separate acyclic list), which
over-approximates every cutpoint-free calling context.  The runs are
made under ``EngineOptions(point_states=True)``, the engine capability
that guarantees per-node state tables even on summary-cache hits — so
warm re-checks are cache restores, never fresh fixpoints (they used to
run with ``use_cache=False`` for exactly this reason).

Besides the exhaustive sweep (:func:`check_safety`, every procedure,
every obligation), this module answers *demand queries*
(:func:`answer_query`): one ``(procedure, line, rule)`` obligation set,
resolved through :class:`repro.core.strategy.DemandStrategy` so only
the query's backward-relevant call cone is ever analyzed.  Demand and
exhaustive answers are bit-identical by construction (same tabulation);
``tests/test_query.py`` enforces it corpus-wide.

Three obligations are discharged against every abstract heap:

``safety.null-deref``
    every ``x->next`` / ``x->data`` dereference sees a non-NULL ``x``;
``safety.leak``
    at procedure exit no cell is reachable only from dead locals --
    under the paper's GC semantics cells dropped *mid*-run are collected
    (that is how deletion works), so the obligation is exit-only;
``safety.acyclic``
    no reachable abstract heap has a cyclic backbone.

Verdicts are three-valued per site: *safe* (holds in every abstract
heap of every record), *unsafe* (violated in every abstract heap, i.e.
a guaranteed bug on any input reaching the site), *unknown* otherwise
or whenever the analysis was incomplete (budget hit, cutpoint).  The
fuzz cross-check (:mod:`repro.checker.crosscheck`) holds the checker to
exactly this contract: a concrete run may never contradict *safe*.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.engine import EngineOptions
from repro.datawords import terms as T
from repro.lang import ast as A
from repro.lang.cfg import CFG, Edge, cfg_uses_prev
from repro.core.localheap import CutpointError
from repro.shape import dll
from repro.shape.graph import NULL, HeapGraph
from repro.checker import dataflow as df
from repro.checker.findings import (
    CheckFinding,
    RULE_CHECKER_INCOMPLETE,
    RULE_SAFETY_ACYCLIC,
    RULE_SAFETY_DLL_CONSISTENT,
    RULE_SAFETY_LEAK,
    RULE_SAFETY_NULL_DEREF,
    SAFE,
    SAFETY_RULE_IDS,
    UNKNOWN,
    UNSAFE,
    sort_findings,
)


@dataclass
class SafetyOptions:
    domain: str = "am"
    k: int = 0
    procs: Optional[List[str]] = None
    rules: Optional[Iterable[str]] = None  # subset of SAFETY_RULE_IDS
    max_steps: Optional[int] = None
    # Total wall-clock budget shared across all selected procedures: each
    # analysis gets what is left, and once the budget is spent the
    # remaining procedures degrade to unknown (checker.incomplete)
    # instead of stalling the lint run.
    max_seconds: Optional[float] = None


@dataclass
class SafetySite:
    """One discharged obligation with its aggregated verdict."""

    rule_id: str
    proc: str
    line: Optional[int]
    detail: str  # the dereferenced variable, or "" for exit obligations
    verdict: str
    message: str
    witness: Dict[str, object] = field(default_factory=dict)

    def to_finding(self) -> CheckFinding:
        return CheckFinding(
            rule_id=self.rule_id,
            verdict=self.verdict,
            message=self.message,
            procedure=self.proc,
            line=self.line,
            witness=dict(self.witness),
        )


@dataclass
class SafetyReport:
    sites: List[SafetySite] = field(default_factory=list)
    # proc -> "ok" | "cutpoint: ..." | "budget: ..." (non-ok degrades to unknown)
    proc_status: Dict[str, str] = field(default_factory=dict)
    seconds: float = 0.0

    def findings(self, include_safe: bool = False) -> List[CheckFinding]:
        out = [
            site.to_finding()
            for site in self.sites
            if include_safe or site.verdict != SAFE
        ]
        for proc, status in sorted(self.proc_status.items()):
            if status == "ok":
                continue
            out.append(
                CheckFinding(
                    rule_id=RULE_CHECKER_INCOMPLETE,
                    verdict=UNKNOWN,
                    message=f"analysis of '{proc}' incomplete ({status}); "
                    "safety verdicts degraded to unknown",
                    procedure=proc,
                )
            )
        return sort_findings(out)

    # -- verdict lookups (the cross-check's API) ----------------------------------

    def _verdicts(self, rule_id: str, proc: str, line: Optional[int] = None) -> List[str]:
        return [
            s.verdict
            for s in self.sites
            if s.rule_id == rule_id
            and s.proc == proc
            and (line is None or s.line == line)
        ]

    @staticmethod
    def _aggregate(verdicts: List[str]) -> Optional[str]:
        if not verdicts:
            return None
        if UNSAFE in verdicts:
            return UNSAFE
        if UNKNOWN in verdicts:
            return UNKNOWN
        return SAFE

    def null_deref_verdict(self, proc: str, line: int) -> Optional[str]:
        return self._aggregate(self._verdicts(RULE_SAFETY_NULL_DEREF, proc, line))

    def leak_verdict(self, proc: str) -> Optional[str]:
        return self._aggregate(self._verdicts(RULE_SAFETY_LEAK, proc))

    def acyclic_verdict(self, proc: str) -> Optional[str]:
        return self._aggregate(self._verdicts(RULE_SAFETY_ACYCLIC, proc))

    def dll_consistent_verdict(self, proc: str) -> Optional[str]:
        return self._aggregate(self._verdicts(RULE_SAFETY_DLL_CONSISTENT, proc))

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for site in self.sites:
            out[site.verdict] = out.get(site.verdict, 0) + 1
        return out


# ---------------------------------------------------------------------------
# Heap predicates


def _has_cycle(graph: HeapGraph) -> bool:
    """Does the backbone contain a ``succ`` cycle?  (succ is functional.)"""
    DONE, IN_PATH = 1, 2
    color: Dict[str, int] = {NULL: DONE}
    for start in graph.nodes:
        if start in color:
            continue
        path: List[str] = []
        cur: Optional[str] = start
        while cur is not None and color.get(cur) is None:
            color[cur] = IN_PATH
            path.append(cur)
            cur = graph.succ.get(cur)
        if cur is not None and color.get(cur) == IN_PATH:
            return True
        for n in path:
            color[n] = DONE
    return False


def _leaked_nodes(graph: HeapGraph, roots: List[str]) -> Set[str]:
    """Nodes unreachable from the given root variables' labels.

    State heaps are garbage-free (the transformers collect eagerly), so
    every surviving node is reachable from *some* label; a node outside
    the root cone is held alive only by dead locals/temporaries.  The
    ``x$0`` entry-snapshot labels also count as roots: their nodes are
    the frame-condition ghost copies of the entry words
    (:func:`repro.datawords.terms.entry_copy`), not allocated cells.
    """
    root_nodes = {
        graph.labels[r] for r in roots if r in graph.labels
    } | {
        node for var, node in graph.labels.items() if T.is_entry_copy(var)
    }
    root_nodes -= {NULL}
    reach = set(graph.reachable_from(root_nodes))
    return set(graph.nodes) - reach - {NULL}


def _verdict(bad: int, good: int) -> str:
    if bad == 0:
        return SAFE  # also the vacuous (unreachable point) case
    if good == 0:
        return UNSAFE
    return UNKNOWN


# ---------------------------------------------------------------------------
# Obligation collection and discharge


def deref_sites(cfg: CFG) -> List[Tuple[Edge, str]]:
    """Every (edge, variable) pair where the op dereferences the variable."""
    sites: List[Tuple[Edge, str]] = []
    for edge in cfg.edges:
        for var in sorted(df.op_derefs(edge.op)):
            sites.append((edge, var))
    return sites


def _exit_roots(cfg: CFG) -> List[str]:
    return [
        p.name for p in list(cfg.inputs) + list(cfg.outputs) if p.type == A.LIST
    ]


def _check_proc(
    cfg: CFG,
    records,
    rules: Set[str],
    domain=None,
) -> List[SafetySite]:
    proc = cfg.proc_name
    sites: List[SafetySite] = []

    if RULE_SAFETY_NULL_DEREF in rules:
        for edge, var in deref_sites(cfg):
            n_null = n_nonnull = 0
            for record in records:
                state = record.states.get(edge.src)
                if state is None:
                    continue
                for heap in state:
                    node = heap.graph.labels.get(var, NULL)
                    if node == NULL:
                        n_null += 1
                    else:
                        n_nonnull += 1
            verdict = _verdict(n_null, n_nonnull)
            shown = df.display_name(var)
            if verdict == SAFE:
                message = f"'{shown}' is non-NULL in all abstract heaps at this dereference"
            elif verdict == UNSAFE:
                message = f"'{shown}' is NULL in every abstract heap reaching this dereference"
            else:
                message = f"'{shown}' may be NULL at this dereference"
            sites.append(
                SafetySite(
                    rule_id=RULE_SAFETY_NULL_DEREF,
                    proc=proc,
                    line=edge.line or None,
                    detail=shown,
                    verdict=verdict,
                    message=message,
                    witness={
                        "variable": shown,
                        "heaps_null": n_null,
                        "heaps_nonnull": n_nonnull,
                    },
                )
            )

    if RULE_SAFETY_LEAK in rules:
        roots = _exit_roots(cfg)
        n_leak = n_clean = 0
        example: List[str] = []
        for record in records:
            state = record.states.get(cfg.exit)
            if state is None:
                continue
            for heap in state:
                leaked = _leaked_nodes(heap.graph, roots)
                if leaked:
                    n_leak += 1
                    if not example:
                        example = sorted(leaked)
                else:
                    n_clean += 1
        verdict = _verdict(n_leak, n_clean)
        if verdict == SAFE:
            message = f"every cell is reachable from inputs/outputs at exit of '{proc}'"
        elif verdict == UNSAFE:
            message = (
                f"cells allocated in '{proc}' are unreachable from "
                "inputs/outputs at exit in every abstract heap (leaked)"
            )
        else:
            message = f"cells may be unreachable from inputs/outputs at exit of '{proc}'"
        sites.append(
            SafetySite(
                rule_id=RULE_SAFETY_LEAK,
                proc=proc,
                line=cfg.node_lines.get(cfg.exit) or None,
                detail="",
                verdict=verdict,
                message=message,
                witness={
                    "heaps_leaking": n_leak,
                    "heaps_clean": n_clean,
                    "roots": roots,
                    "example_nodes": example,
                },
            )
        )

    if RULE_SAFETY_DLL_CONSISTENT in rules and cfg_uses_prev(cfg):
        # Only procedures that touch ``prev`` carry the obligation: for
        # everything else the attributes are empty and the verdict would
        # be vacuous noise in the golden files.  Roots are the *outputs*:
        # they are the procedure's contract, while an input pointer goes
        # stale the moment the procedure unlinks its head (delete-front
        # correctly leaves the old head's forward link unmatched).
        roots = [p.name for p in cfg.outputs if p.type == A.LIST]
        n_ok = n_broken = n_unknown = 0
        for record in records:
            state = record.states.get(cfg.exit)
            if state is None:
                continue
            for heap in state:
                if domain is None:
                    n_unknown += 1
                    continue
                verdict_h = dll.classify_heap(heap, domain, roots)
                if verdict_h == dll.CONSISTENT:
                    n_ok += 1
                elif verdict_h == dll.BROKEN:
                    n_broken += 1
                else:
                    n_unknown += 1
        if n_broken == 0 and n_unknown == 0:
            verdict = SAFE  # also the vacuous (no exit heap) case
            message = (
                f"back pointers form a well-formed DLL in every exit heap of '{proc}'"
            )
        elif n_ok == 0 and n_unknown == 0:
            verdict = UNSAFE
            message = (
                f"back pointers provably mismatch forward links at exit of '{proc}'"
            )
        else:
            verdict = UNKNOWN
            message = f"back pointers not proved consistent at exit of '{proc}'"
        sites.append(
            SafetySite(
                rule_id=RULE_SAFETY_DLL_CONSISTENT,
                proc=proc,
                line=cfg.node_lines.get(cfg.exit) or None,
                detail="",
                verdict=verdict,
                message=message,
                witness={
                    "heaps_consistent": n_ok,
                    "heaps_broken": n_broken,
                    "heaps_unknown": n_unknown,
                    "roots": roots,
                },
            )
        )

    if RULE_SAFETY_ACYCLIC in rules:
        n_cyclic = n_acyclic = 0
        first_line: Optional[int] = None
        exit_cyclic = exit_acyclic = 0
        for record in records:
            for node, state in sorted(record.states.items()):
                for heap in state:
                    cyclic = _has_cycle(heap.graph)
                    if cyclic:
                        n_cyclic += 1
                        if first_line is None and cfg.node_lines.get(node):
                            first_line = cfg.node_lines[node]
                        if node == cfg.exit:
                            exit_cyclic += 1
                    else:
                        n_acyclic += 1
                        if node == cfg.exit:
                            exit_acyclic += 1
        if n_cyclic == 0:
            verdict = SAFE
            message = f"the list backbone stays acyclic throughout '{proc}'"
        elif exit_cyclic > 0 and exit_acyclic == 0:
            verdict = UNSAFE
            message = f"the list backbone is cyclic in every exit heap of '{proc}'"
        else:
            verdict = UNKNOWN
            message = f"the list backbone may become cyclic in '{proc}'"
        sites.append(
            SafetySite(
                rule_id=RULE_SAFETY_ACYCLIC,
                proc=proc,
                line=first_line,
                detail="",
                verdict=verdict,
                message=message,
                witness={"heaps_cyclic": n_cyclic, "heaps_acyclic": n_acyclic},
            )
        )

    return sites


def _degrade(sites: List[SafetySite]) -> List[SafetySite]:
    """Replace every verdict by ``unknown`` (incomplete analysis)."""
    for site in sites:
        site.verdict = UNKNOWN
        site.message += " [analysis incomplete]"
    return sites


def check_safety(analyzer, options: Optional[SafetyOptions] = None) -> SafetyReport:
    """Discharge the Tier-B obligations for (a subset of) the program.

    ``analyzer`` is a :class:`repro.core.api.Analyzer` over the
    normalized program.  Each selected procedure is analyzed as a root;
    obligations are evaluated over the fixpoint states of *that
    procedure's own records* (its generic-entry tabulation), which
    over-approximate every concrete run from any cutpoint-free context.
    """
    opts = options or SafetyOptions()
    rules = set(opts.rules) if opts.rules is not None else set(SAFETY_RULE_IDS)
    unknown = rules - set(SAFETY_RULE_IDS)
    if unknown:
        raise ValueError(f"unknown safety rules: {sorted(unknown)}")
    procs = list(opts.procs) if opts.procs is not None else sorted(analyzer.icfg.cfgs)
    report = SafetyReport()
    started = time.perf_counter()
    deadline = (
        time.monotonic() + opts.max_seconds if opts.max_seconds is not None else None
    )
    for proc in procs:
        cfg = analyzer.icfg.cfg(proc)
        remaining: Optional[float] = None
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                report.proc_status[proc] = "budget: wall-clock budget exhausted"
                report.sites.extend(_degrade(_check_proc(cfg, [], rules)))
                continue
        try:
            result = analyzer.analyze(
                proc,
                domain=opts.domain,
                k=opts.k,
                max_steps=opts.max_steps,
                max_seconds=remaining,
                engine_opts=EngineOptions(point_states=True),
            )
        except CutpointError as exc:
            report.proc_status[proc] = f"cutpoint: {exc}"
            report.sites.extend(_degrade(_check_proc(cfg, [], rules)))
            continue
        records = [
            r for r in result.engine.records.values() if r.proc == proc
        ]
        sites = _check_proc(cfg, records, rules, domain=result.domain)
        if not result.ok:
            report.proc_status[proc] = (
                "budget: " + "; ".join(str(d) for d in result.diagnostics)
            )
            sites = _degrade(sites)
        else:
            report.proc_status[proc] = "ok"
        report.sites.extend(sites)
    report.seconds = time.perf_counter() - started
    return report


# ---------------------------------------------------------------------------
# Demand queries: one (procedure, line, rule) obligation on demand


@dataclass(frozen=True)
class Query:
    """One program-point obligation: a procedure, an optional source
    line (``None`` matches every line of the procedure) and an optional
    safety rule id (``None`` matches every Tier-B rule)."""

    proc: str
    line: Optional[int] = None
    rule: Optional[str] = None

    @staticmethod
    def parse(spec: str) -> "Query":
        """Parse the CLI/protocol spelling ``PROC:LINE[:RULE]``; a LINE
        of 0 means "the whole procedure"."""
        parts = spec.split(":", 2)
        if len(parts) < 2 or not parts[0]:
            raise ValueError(
                f"bad query {spec!r} (expected PROC:LINE[:RULE])"
            )
        proc, line_text = parts[0], parts[1]
        try:
            line = int(line_text)
        except ValueError:
            raise ValueError(
                f"bad query line {line_text!r} in {spec!r} (expected an integer)"
            )
        rule = parts[2] if len(parts) == 3 and parts[2] else None
        if rule is not None and rule not in SAFETY_RULE_IDS:
            raise ValueError(
                f"unknown safety rule {rule!r} in query {spec!r} "
                f"(expected one of {', '.join(SAFETY_RULE_IDS)})"
            )
        return Query(proc=proc, line=line if line > 0 else None, rule=rule)

    def spec(self) -> str:
        out = f"{self.proc}:{self.line or 0}"
        return f"{out}:{self.rule}" if self.rule else out


@dataclass
class QueryAnswer:
    """A demand query's verdict plus its cost accounting."""

    query: Query
    verdict: Optional[str]  # aggregated over sites; None = no obligation there
    sites: List[SafetySite] = field(default_factory=list)
    proc_status: str = "ok"
    cone: List[str] = field(default_factory=list)
    proc_count: int = 0
    from_cache: bool = False  # did the run restore a cached tabulation?
    seconds: float = 0.0

    @property
    def cone_size(self) -> int:
        return len(self.cone)

    def findings(self, include_safe: bool = True) -> List[CheckFinding]:
        """Matching sites as findings; queries default to reporting
        proved-safe obligations too (the verdict *is* the answer)."""
        out = [
            site.to_finding()
            for site in self.sites
            if include_safe or site.verdict != SAFE
        ]
        if self.proc_status != "ok":
            out.append(
                CheckFinding(
                    rule_id=RULE_CHECKER_INCOMPLETE,
                    verdict=UNKNOWN,
                    message=f"analysis of '{self.query.proc}' incomplete "
                    f"({self.proc_status}); query verdict degraded to unknown",
                    procedure=self.query.proc,
                )
            )
        return sort_findings(out)

    def to_json(self) -> Dict[str, object]:
        return {
            "query": {
                "proc": self.query.proc,
                "line": self.query.line,
                "rule": self.query.rule,
            },
            "verdict": self.verdict,
            "findings": [f.to_json() for f in self.findings()],
            "proc_status": self.proc_status,
            "cone": list(self.cone),
            "cone_size": self.cone_size,
            "proc_count": self.proc_count,
            "from_cache": self.from_cache,
            "seconds": round(self.seconds, 6),
        }


def answer_query(
    analyzer,
    query: Query,
    options: Optional[SafetyOptions] = None,
) -> QueryAnswer:
    """Discharge one program-point obligation on demand.

    Instead of the exhaustive per-procedure whole-root sweep of
    :func:`check_safety`, this analyzes *only* the queried procedure —
    through :class:`~repro.core.strategy.DemandStrategy`, which scopes
    the run to the query's backward-relevant call cone and reuses the
    summary cache for warm answers.  The returned sites carry exactly
    the payloads the exhaustive sweep would produce for the same
    ``(proc, line, rule)`` coordinates.

    Raises :class:`ValueError` for an unknown procedure or rule;
    analysis-level incompleteness (cutpoints, budgets) degrades the
    verdict to ``unknown`` like the exhaustive sweep does.
    """
    from repro.core.strategy import DemandStrategy

    opts = options or SafetyOptions()
    if query.proc not in analyzer.icfg.cfgs:
        raise ValueError(f"unknown procedure {query.proc!r}")
    if query.rule is not None and query.rule not in SAFETY_RULE_IDS:
        raise ValueError(f"unknown safety rule {query.rule!r}")
    rules = set(opts.rules) if opts.rules is not None else set(SAFETY_RULE_IDS)
    if query.rule is not None:
        rules &= {query.rule}
    cfg = analyzer.icfg.cfg(query.proc)
    strategy = DemandStrategy(query.proc)
    started = time.perf_counter()
    answer = QueryAnswer(query=query, verdict=None)
    try:
        result = analyzer.analyze(
            query.proc,
            domain=opts.domain,
            k=opts.k,
            max_steps=opts.max_steps,
            max_seconds=opts.max_seconds,
            engine_opts=EngineOptions(point_states=True),
            strategy=strategy,
        )
    except CutpointError as exc:
        answer.proc_status = f"cutpoint: {exc}"
        answer.sites = _degrade(_check_proc(cfg, [], rules))
        result = None
    answer.cone = list(strategy.cone)
    answer.proc_count = strategy.proc_count
    answer.from_cache = strategy.from_cache
    if result is not None:
        records = [
            r for r in result.engine.records.values() if r.proc == query.proc
        ]
        sites = _check_proc(cfg, records, rules, domain=result.domain)
        if not result.ok:
            answer.proc_status = (
                "budget: " + "; ".join(str(d) for d in result.diagnostics)
            )
            sites = _degrade(sites)
        answer.sites = sites
    answer.sites = [
        site
        for site in answer.sites
        if (query.line is None or site.line == query.line)
        and (query.rule is None or site.rule_id == query.rule)
    ]
    answer.verdict = SafetyReport._aggregate([s.verdict for s in answer.sites])
    answer.seconds = time.perf_counter() - started
    return answer
