"""Tier A: fast dataflow lints over the normalized CFGs.

Each rule is a pluggable entry in :data:`LINT_RULES` -- a stable id, a
one-line description, and a pure function ``(LintContext) -> findings``.
Rules never run the abstract interpreter and never mutate the CFG; the
whole tier runs in microseconds per procedure, which is what lets the
service daemon re-lint on every keystroke-grade update.

Normalizer artifacts are handled once, here: compiler temporaries
(``$a``/``$c``) are exempt from reporting, and protected formals
(``x$in``) are reported under their source-level name ``x`` so findings
point at the program the user wrote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.lang import ast as A
from repro.lang.cfg import (
    CFG,
    OpAssignData,
    OpAssignPtr,
    OpSkip,
)
from repro.checker import dataflow as df
from repro.checker.findings import (
    CheckFinding,
    RULE_DEAD_STORE,
    RULE_LINT_NULL_DEREF,
    RULE_MISSING_RETURN,
    RULE_UNREACHABLE,
    RULE_UNUSED_LOCAL,
    RULE_UNUSED_PARAM,
    RULE_USE_BEFORE_INIT,
    WARN,
    sort_findings,
)


@dataclass
class LintContext:
    """Everything a rule may look at (read-only by convention)."""

    cfg: CFG
    proc_line: int = 0

    @property
    def proc(self) -> str:
        return self.cfg.proc_name

    def finding(
        self,
        rule_id: str,
        message: str,
        line: Optional[int],
        **witness,
    ) -> CheckFinding:
        return CheckFinding(
            rule_id=rule_id,
            verdict=WARN,
            message=message,
            procedure=self.proc,
            line=line or self.proc_line or None,
            witness={k: v for k, v in witness.items() if v is not None},
        )


LintRule = Callable[[LintContext], List[CheckFinding]]
LINT_RULES: Dict[str, LintRule] = {}


def lint_rule(rule_id: str):
    def register(fn: LintRule) -> LintRule:
        LINT_RULES[rule_id] = fn
        return fn

    return register


@lint_rule(RULE_USE_BEFORE_INIT)
def _use_before_init(ctx: LintContext) -> List[CheckFinding]:
    assigned = df.definite_assignment(ctx.cfg)
    seen: Set[tuple] = set()
    out: List[CheckFinding] = []
    for edge in ctx.cfg.edges:
        fact = assigned.get(edge.src)
        if fact is None:  # unreachable: lint.unreachable's business
            continue
        for var in sorted(df.op_reads(edge.op) - fact):
            if df.is_compiler_temp(var):
                continue
            key = (var, edge.line)
            if key in seen:
                continue
            seen.add(key)
            out.append(
                ctx.finding(
                    RULE_USE_BEFORE_INIT,
                    f"'{var}' may be read before it is assigned",
                    edge.line,
                    variable=var,
                )
            )
    return out


@lint_rule(RULE_DEAD_STORE)
def _dead_store(ctx: LintContext) -> List[CheckFinding]:
    live = df.live_variables(ctx.cfg)
    out: List[CheckFinding] = []
    seen: Set[tuple] = set()
    for edge in ctx.cfg.edges:
        if not isinstance(edge.op, (OpAssignPtr, OpAssignData)):
            continue  # heap stores and calls have effects beyond the target
        target = edge.op.target
        if df.is_compiler_temp(target) and not target.endswith("$in"):
            continue
        if (
            target.endswith("$in")
            and isinstance(edge.op, OpAssignPtr)
            and edge.op.kind == "var"
            and edge.op.source == df.display_name(target)
        ):
            continue  # the normalizer's x$in = x prologue, not user code
        if edge.src not in live:  # unreachable code; not a dead *store*
            continue
        if target in live.get(edge.dst, frozenset()):
            continue
        shown = df.display_name(target)
        key = (target, edge.line)
        if key in seen:
            continue
        seen.add(key)
        if target.endswith("$in"):
            message = (
                f"value assigned to parameter '{shown}' is never read "
                "(parameters are passed by value)"
            )
        else:
            message = f"value assigned to '{shown}' is never read"
        out.append(
            ctx.finding(RULE_DEAD_STORE, message, edge.line, variable=shown)
        )
    return out


@lint_rule(RULE_UNREACHABLE)
def _unreachable(ctx: LintContext) -> List[CheckFinding]:
    reachable = df.reachable_nodes(ctx.cfg)
    lines: Set[int] = set()
    for edge in ctx.cfg.edges:
        if edge.src in reachable or not edge.line:
            continue
        if isinstance(edge.op, OpSkip):
            continue
        lines.add(edge.line)
    return [
        ctx.finding(RULE_UNREACHABLE, "statement is unreachable", line)
        for line in sorted(lines)
    ]


@lint_rule(RULE_LINT_NULL_DEREF)
def _null_deref(ctx: LintContext) -> List[CheckFinding]:
    facts = df.null_constants(ctx.cfg)
    out: List[CheckFinding] = []
    seen: Set[tuple] = set()
    for edge in ctx.cfg.edges:
        fact = facts.get(edge.src)
        if fact is None:
            continue
        for var in sorted(df.op_derefs(edge.op)):
            if fact.get(var) != df.NULL_:
                continue
            shown = df.display_name(var)
            key = (var, edge.line)
            if key in seen:
                continue
            seen.add(key)
            out.append(
                ctx.finding(
                    RULE_LINT_NULL_DEREF,
                    f"'{shown}' is definitely NULL when dereferenced here",
                    edge.line,
                    variable=shown,
                )
            )
    return out


@lint_rule(RULE_MISSING_RETURN)
def _missing_return(ctx: LintContext) -> List[CheckFinding]:
    assigned = df.definite_assignment(ctx.cfg)
    exit_fact = assigned.get(ctx.cfg.exit)
    if exit_fact is None:  # the exit is unreachable (e.g. while(true))
        return []
    out: List[CheckFinding] = []
    for param in ctx.cfg.outputs:
        if param.name in exit_fact:
            continue
        out.append(
            ctx.finding(
                RULE_MISSING_RETURN,
                f"output '{param.name}' may be unset when '{ctx.proc}' returns",
                getattr(param, "line", 0) or ctx.proc_line,
                variable=param.name,
            )
        )
    return out


def _unused(ctx: LintContext, params, rule_id: str, what: str) -> List[CheckFinding]:
    read: Set[str] = set()
    for edge in ctx.cfg.edges:
        read |= df.op_reads(edge.op)
    out: List[CheckFinding] = []
    for param in params:
        if param.name in read or df.is_compiler_temp(param.name):
            continue
        out.append(
            ctx.finding(
                rule_id,
                f"{what} '{param.name}' is never read",
                getattr(param, "line", 0) or ctx.proc_line,
                variable=param.name,
            )
        )
    return out


@lint_rule(RULE_UNUSED_LOCAL)
def _unused_local(ctx: LintContext) -> List[CheckFinding]:
    return _unused(ctx, ctx.cfg.locals, RULE_UNUSED_LOCAL, "local")


@lint_rule(RULE_UNUSED_PARAM)
def _unused_param(ctx: LintContext) -> List[CheckFinding]:
    return _unused(ctx, ctx.cfg.inputs, RULE_UNUSED_PARAM, "parameter")


def lint_cfg(
    cfg: CFG,
    rules: Optional[Iterable[str]] = None,
    proc_line: int = 0,
) -> List[CheckFinding]:
    """Run (a selection of) the Tier-A rules over one procedure's CFG."""
    ctx = LintContext(cfg=cfg, proc_line=proc_line)
    selected = list(rules) if rules is not None else list(LINT_RULES)
    findings: List[CheckFinding] = []
    for rule_id in selected:
        try:
            rule = LINT_RULES[rule_id]
        except KeyError:
            raise ValueError(f"unknown lint rule {rule_id!r}") from None
        findings.extend(rule(ctx))
    return sort_findings(findings)


def lint_program(program: A.Program, icfg, rules=None) -> List[CheckFinding]:
    """Tier A over every procedure of a normalized program."""
    findings: List[CheckFinding] = []
    proc_lines = {p.name: p.line for p in program.procedures}
    for name in sorted(icfg.cfgs):
        findings.extend(
            lint_cfg(icfg.cfg(name), rules=rules, proc_line=proc_lines.get(name, 0))
        )
    return sort_findings(findings)
