"""Two-tier memory-safety & lint checker (see DESIGN.md §11).

Tier A (:mod:`repro.checker.lints`) runs abstract-interpretation-free
dataflow lints over the normalized CFGs; Tier B
(:mod:`repro.checker.safety`) discharges implicit memory-safety
obligations (null dereference, exit leaks, backbone acyclicity) against
the inter-procedural engine's per-program-point fixpoint states, with
three-valued safe/unsafe/unknown verdicts.  Findings flow through the
``repro-diagnostics/1`` envelope and a genuine SARIF 2.1.0 exporter.
"""

from repro.checker.driver import (
    CheckOptions,
    CheckReport,
    check_program,
    check_source,
)
from repro.checker.findings import (
    ALL_RULE_IDS,
    CheckFinding,
    FRONTEND_RULE_IDS,
    LINT_RULE_IDS,
    POSSIBLY_NONTERMINATING,
    RULE_DESCRIPTIONS,
    SAFE,
    SAFETY_RULE_IDS,
    TERMINATING,
    TERMINATION_RULE_IDS,
    UNKNOWN,
    UNSAFE,
    WARN,
)
from repro.checker.lints import LINT_RULES, lint_cfg, lint_program
from repro.checker.safety import (
    SafetyOptions,
    SafetyReport,
    SafetySite,
    check_safety,
)
from repro.checker.sarif import sarif_dumps, to_sarif

__all__ = [
    "ALL_RULE_IDS",
    "CheckFinding",
    "CheckOptions",
    "CheckReport",
    "FRONTEND_RULE_IDS",
    "LINT_RULES",
    "LINT_RULE_IDS",
    "POSSIBLY_NONTERMINATING",
    "RULE_DESCRIPTIONS",
    "SAFE",
    "SAFETY_RULE_IDS",
    "TERMINATING",
    "TERMINATION_RULE_IDS",
    "SafetyOptions",
    "SafetyReport",
    "SafetySite",
    "UNKNOWN",
    "UNSAFE",
    "WARN",
    "check_program",
    "check_safety",
    "check_source",
    "lint_cfg",
    "lint_program",
    "sarif_dumps",
    "to_sarif",
]
