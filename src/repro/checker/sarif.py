"""A genuine SARIF 2.1.0 exporter for checker findings.

Unlike the lightweight ``repro-diagnostics/1`` envelope, this emits the
real schema (``version: "2.1.0"``, ``runs[].tool.driver.rules``,
``results[].locations[].physicalLocation``), so the output loads in any
SARIF viewer (VS Code, GitHub code scanning).

Determinism is part of the contract: the same findings serialize to
byte-identical JSON (fixed key order, sorted results, no timestamps) --
pinned by the golden test in ``tests/test_checker.py``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.checker.findings import (
    ALL_RULE_IDS,
    CheckFinding,
    POSSIBLY_NONTERMINATING,
    RULE_DESCRIPTIONS,
    SAFE,
    TERMINATING,
    UNKNOWN,
    UNSAFE,
    WARN,
)

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro-checker"
TOOL_VERSION = "0.1.0"
INFORMATION_URI = "https://github.com/celia-repro/repro"

# SARIF "level" per checker verdict.  "safe" findings (only present with
# --include-safe) map to "none": they are proofs, not problems.
_SARIF_LEVEL = {
    WARN: "warning",
    UNSAFE: "error",
    UNKNOWN: "warning",
    SAFE: "none",
    TERMINATING: "none",
    POSSIBLY_NONTERMINATING: "error",
    "error": "error",
}

_DEFAULT_LEVEL = {"lint": "warning", "safety": "error", "frontend": "error", "checker": "warning"}


def _rules() -> List[Dict[str, Any]]:
    rules = []
    for rule_id in sorted(ALL_RULE_IDS):
        rules.append(
            {
                "id": rule_id,
                "shortDescription": {"text": RULE_DESCRIPTIONS[rule_id]},
                "defaultConfiguration": {
                    "level": _DEFAULT_LEVEL[rule_id.split(".", 1)[0]]
                },
            }
        )
    return rules


def _result(finding: CheckFinding, uri: str, rule_index: Dict[str, int]) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "ruleId": finding.rule_id,
        "ruleIndex": rule_index[finding.rule_id],
        "level": _SARIF_LEVEL.get(finding.verdict, "warning"),
        "message": {"text": finding.message},
    }
    location: Dict[str, Any] = {
        "physicalLocation": {"artifactLocation": {"uri": uri, "uriBaseId": "SRCROOT"}}
    }
    if finding.line:
        location["physicalLocation"]["region"] = {"startLine": finding.line}
    if finding.procedure:
        location["logicalLocations"] = [
            {"name": finding.procedure, "kind": "function"}
        ]
    out["locations"] = [location]
    properties: Dict[str, Any] = {"verdict": finding.verdict}
    if finding.witness:
        properties["witness"] = {
            k: finding.witness[k] for k in sorted(finding.witness)
        }
    out["properties"] = properties
    return out


def sarif_run(findings_by_uri: Dict[str, List[CheckFinding]]) -> Dict[str, Any]:
    """One SARIF run over findings grouped by artifact uri."""
    rules = _rules()
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results: List[Dict[str, Any]] = []
    artifacts: List[Dict[str, Any]] = []
    for uri in sorted(findings_by_uri):
        artifacts.append({"location": {"uri": uri, "uriBaseId": "SRCROOT"}})
        for finding in sorted(findings_by_uri[uri], key=CheckFinding.sort_key):
            results.append(_result(finding, uri, rule_index))
    return {
        "tool": {
            "driver": {
                "name": TOOL_NAME,
                "version": TOOL_VERSION,
                "informationUri": INFORMATION_URI,
                "rules": rules,
            }
        },
        "artifacts": artifacts,
        "columnKind": "utf16CodeUnits",
        "results": results,
    }


def to_sarif(findings_by_uri: Dict[str, List[CheckFinding]]) -> Dict[str, Any]:
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [sarif_run(findings_by_uri)],
    }


def sarif_dumps(findings_by_uri: Dict[str, List[CheckFinding]]) -> str:
    """Deterministic (byte-stable) serialization of the SARIF log."""
    return json.dumps(to_sarif(findings_by_uri), indent=2) + "\n"
