"""Dataflow scaffolding for the Tier-A lints.

Everything here is deliberately abstract-interpretation-free: facts are
plain sets/dicts over the normalized CFG, solved with a textbook
worklist.  The op-fact helpers (:func:`op_reads`, :func:`op_writes`,
:func:`op_derefs`) are the single source of truth for "which variables
does this op touch" and are shared with the Tier-B obligation collector
(:mod:`repro.checker.safety`) so both tiers agree on what counts as a
dereference.

None of the functions mutate the CFG -- a property the test suite pins
down (`lint purity`), since the checker runs on the same CFG objects the
engine analyzes afterwards.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lang import ast as A
from repro.lang.cfg import (
    CFG,
    Edge,
    Op,
    OpAssert,
    OpAssignData,
    OpAssignPtr,
    OpAssume,
    OpAssumeData,
    OpAssumePtr,
    OpCall,
    OpSkip,
    OpStoreData,
    OpStoreNext,
    OpStorePrev,
)

# ---------------------------------------------------------------------------
# Op facts


def expr_vars(expr: A.Expr) -> Set[str]:
    """Variables read by a data expression (DataOf bases included)."""
    if isinstance(expr, A.Var):
        return {expr.name}
    if isinstance(expr, A.DataOf):
        return {expr.base.name}
    if isinstance(expr, A.BinOp):
        return expr_vars(expr.left) | expr_vars(expr.right)
    return set()


def expr_derefs(expr: A.Expr) -> Set[str]:
    """Pointer variables dereferenced (``p->data``) by a data expression."""
    if isinstance(expr, A.DataOf):
        return {expr.base.name}
    if isinstance(expr, A.BinOp):
        return expr_derefs(expr.left) | expr_derefs(expr.right)
    return set()


def _spec_vars(formula: A.SpecFormula) -> Tuple[Set[str], Set[str]]:
    reads: Set[str] = set()
    derefs: Set[str] = set()
    for atom in formula.atoms:
        reads.update(atom.args)
        if atom.cmp is not None:
            reads |= expr_vars(atom.cmp.left) | expr_vars(atom.cmp.right)
            derefs |= expr_derefs(atom.cmp.left) | expr_derefs(atom.cmp.right)
    return reads, derefs


def op_reads(op: Op) -> Set[str]:
    """Variables whose *value* the op consumes."""
    if isinstance(op, OpAssignPtr):
        return {op.source} if op.kind in ("var", "next", "prev") else set()
    if isinstance(op, (OpStoreNext, OpStorePrev)):
        reads = {op.target}
        if op.source is not None:
            reads.add(op.source)
        return reads
    if isinstance(op, (OpStoreData, OpAssignData)):
        base = {op.target} if isinstance(op, OpStoreData) else set()
        return base | expr_vars(op.expr)
    if isinstance(op, OpAssumePtr):
        reads = {op.left}
        if op.right is not None:
            reads.add(op.right)
        return reads
    if isinstance(op, OpAssumeData):
        return expr_vars(op.left) | expr_vars(op.right)
    if isinstance(op, OpCall):
        return set(op.args)
    if isinstance(op, (OpAssume, OpAssert)):
        return _spec_vars(op.formula)[0]
    return set()


def op_writes(op: Op) -> Set[str]:
    """Variables the op (re)binds.  Heap stores write no variable."""
    if isinstance(op, OpAssignPtr):
        return {op.target}
    if isinstance(op, OpAssignData):
        return {op.target}
    if isinstance(op, OpCall):
        return set(op.targets)
    return set()


def op_derefs(op: Op) -> Set[str]:
    """Pointer variables the op dereferences (``->next`` / ``->data``).

    This is the obligation alphabet of ``safety.null-deref``: a variable
    in this set must be non-NULL for the op to execute.
    """
    if isinstance(op, OpAssignPtr):
        return {op.source} if op.kind in ("next", "prev") else set()
    if isinstance(op, (OpStoreNext, OpStorePrev)):
        return {op.target}
    if isinstance(op, OpStoreData):
        return {op.target} | expr_derefs(op.expr)
    if isinstance(op, OpAssignData):
        return expr_derefs(op.expr)
    if isinstance(op, OpAssumeData):
        return expr_derefs(op.left) | expr_derefs(op.right)
    if isinstance(op, (OpAssume, OpAssert)):
        return _spec_vars(op.formula)[1]
    return set()


def is_compiler_temp(name: str) -> bool:
    """Normalizer-introduced names ($a/$c temps, protected x$in locals)."""
    return "$" in name


def display_name(name: str) -> str:
    """Source-level spelling of a (possibly normalizer-renamed) variable."""
    if name.endswith("$in"):
        return name[: -len("$in")]
    return name


# ---------------------------------------------------------------------------
# Graph helpers


def out_edges(cfg: CFG) -> Dict[int, List[Edge]]:
    succ: Dict[int, List[Edge]] = {}
    for edge in cfg.edges:
        succ.setdefault(edge.src, []).append(edge)
    return succ


def in_edges(cfg: CFG) -> Dict[int, List[Edge]]:
    pred: Dict[int, List[Edge]] = {}
    for edge in cfg.edges:
        pred.setdefault(edge.dst, []).append(edge)
    return pred


def reachable_nodes(cfg: CFG) -> Set[int]:
    """Nodes reachable from the entry along CFG edges."""
    succ = out_edges(cfg)
    seen = {cfg.entry}
    work = [cfg.entry]
    while work:
        node = work.pop()
        for edge in succ.get(node, ()):
            if edge.dst not in seen:
                seen.add(edge.dst)
                work.append(edge.dst)
    return seen


# ---------------------------------------------------------------------------
# Forward must-assign (definite assignment)


def definite_assignment(cfg: CFG) -> Dict[int, FrozenSet[str]]:
    """For each reachable node, the set of variables assigned on *every*
    path from the entry.  Inputs count as assigned (call-by-value binding);
    unreachable nodes are absent from the result."""
    succ = out_edges(cfg)
    entry_fact = frozenset(p.name for p in cfg.inputs)
    facts: Dict[int, FrozenSet[str]] = {cfg.entry: entry_fact}
    work = [cfg.entry]
    while work:
        node = work.pop()
        fact = facts[node]
        for edge in succ.get(node, ()):
            out = fact | op_writes(edge.op)
            old = facts.get(edge.dst)
            new = out if old is None else old & out
            if old is None or new != old:
                facts[edge.dst] = frozenset(new)
                work.append(edge.dst)
    return facts


# ---------------------------------------------------------------------------
# Backward liveness


def live_variables(cfg: CFG) -> Dict[int, FrozenSet[str]]:
    """Classic may-liveness: ``live[n]`` is the set of variables whose
    current value may be read on some path from ``n``.  Outputs are live
    at the exit (their values flow back to the caller)."""
    pred = in_edges(cfg)
    exit_fact = frozenset(p.name for p in cfg.outputs)
    facts: Dict[int, FrozenSet[str]] = {cfg.exit: exit_fact}
    work = [cfg.exit] if cfg.exit >= 0 else []
    while work:
        node = work.pop()
        fact = facts.get(node, frozenset())
        for edge in pred.get(node, ()):
            through = (fact - op_writes(edge.op)) | op_reads(edge.op)
            old = facts.get(edge.src)
            new = through if old is None else old | through
            if old is None or new != old:
                facts[edge.src] = frozenset(new)
                work.append(edge.src)
    return facts


# ---------------------------------------------------------------------------
# Constant null propagation (flat lattice per pointer variable)

NULL_ = "null"
NONNULL = "nonnull"
TOP = "top"

_JOIN = {
    (NULL_, NULL_): NULL_,
    (NONNULL, NONNULL): NONNULL,
}


def _join_val(a: str, b: str) -> str:
    return _JOIN.get((a, b), TOP)


def _null_transfer(op: Op, fact: Dict[str, str], ptr_vars: Set[str]) -> Optional[Dict[str, str]]:
    """One-op strongest postcondition on the nullness fact.

    Returns ``None`` when the op is an assume that contradicts the fact
    (the edge is infeasible and contributes nothing downstream).
    """
    out = dict(fact)
    if isinstance(op, OpAssignPtr):
        if op.kind == "null":
            out[op.target] = NULL_
        elif op.kind == "new":
            out[op.target] = NONNULL
        elif op.kind == "var":
            out[op.target] = fact.get(op.source, TOP)
        else:  # next: unknown result, but the source must be non-null to get here
            out[op.target] = TOP
            if fact.get(op.source) != NULL_:
                out[op.source] = NONNULL
        return out
    if isinstance(op, OpCall):
        for t in op.targets:
            if t in ptr_vars:
                out[t] = TOP
        return out
    if isinstance(op, OpAssumePtr):
        left = fact.get(op.left, TOP)
        if op.right is None:
            if op.equal:
                if left == NONNULL:
                    return None
                out[op.left] = NULL_
            else:
                if left == NULL_:
                    return None
                out[op.left] = NONNULL
            return out
        right = fact.get(op.right, TOP)
        if op.equal:
            if (left, right) in ((NULL_, NONNULL), (NONNULL, NULL_)):
                return None
            if left == NULL_ or right == NULL_:
                out[op.left] = out[op.right] = NULL_
            elif left == NONNULL or right == NONNULL:
                out[op.left] = out[op.right] = NONNULL
        else:
            if left == NULL_ and right == NULL_:
                return None
        return out
    # Heap stores / data ops / specs don't change variable nullness.
    return out


def null_constants(cfg: CFG) -> Dict[int, Dict[str, str]]:
    """Per-node nullness facts for pointer variables.

    The entry fact: inputs are ``top`` (any shape), locals and outputs
    are definitely ``null`` -- matching both the concrete semantics
    (uninitialized pointers are NULL) and the abstract entry heaps built
    by :func:`repro.core.localheap.build_call_entry`.
    """
    ptr_vars = set(cfg.pointer_vars)
    inputs = {p.name for p in cfg.inputs}
    entry = {v: (TOP if v in inputs else NULL_) for v in ptr_vars}
    succ = out_edges(cfg)
    facts: Dict[int, Dict[str, str]] = {cfg.entry: entry}
    work = [cfg.entry]
    while work:
        node = work.pop()
        fact = facts[node]
        for edge in succ.get(node, ()):
            out = _null_transfer(edge.op, fact, ptr_vars)
            if out is None:
                continue
            old = facts.get(edge.dst)
            if old is None:
                facts[edge.dst] = out
                work.append(edge.dst)
            else:
                merged = {v: _join_val(old.get(v, TOP), out.get(v, TOP)) for v in ptr_vars}
                if merged != old:
                    facts[edge.dst] = merged
                    work.append(edge.dst)
    return facts
