"""The checker CLI: ``repro-lint`` (also ``python -m repro lint`` and
``python -m repro.checker``).

Examples::

    repro-lint prog.lisl
    repro-lint examples/ tests/corpus/buggy --tier lint
    repro-lint prog.lisl --tier all --sarif findings.sarif --json
    repro-lint prog.lisl --rules lint.dead-store,safety.null-deref
    repro-lint prog.lisl --query reverse:12
    repro-lint prog.lisl --query main:0:safety.leak --json

``--query PROC:LINE[:RULE]`` answers one program-point obligation on
demand (line 0 = the whole procedure): only the queried procedure's
backward call cone is analyzed, and the answer reports the cone size
against the whole-program procedure count.  It takes exactly one file.

Exit codes: 0 = no reportable findings, 1 = findings at or above
``--fail-on``, 2 = usage errors.  Frontend failures (parse/type errors)
are findings too (``frontend.*``), not tracebacks.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from repro.service import diagnostics as diag
from repro.checker.driver import CheckOptions, CheckReport, check_source
from repro.checker.findings import (
    ALL_RULE_IDS,
    CheckFinding,
    LINT_RULE_IDS,
    POSSIBLY_NONTERMINATING,
    SAFETY_RULE_IDS,
    TERMINATION_RULE_IDS,
    UNSAFE,
    WARN,
)
from repro.checker.safety import SafetyOptions
from repro.checker.sarif import sarif_dumps
from repro.termination.driver import TerminationOptions


def _collect_files(paths: List[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith(".lisl"):
                        files.append(os.path.join(root, name))
        else:
            files.append(path)
    return sorted(dict.fromkeys(files))


def _split_rules(spec: Optional[str]):
    """Partition a --rules csv into (lint, safety, termination) subsets."""
    if not spec:
        return None, None, None
    chosen = [r.strip() for r in spec.split(",") if r.strip()]
    unknown = [r for r in chosen if r not in ALL_RULE_IDS]
    if unknown:
        raise SystemExit(f"error: unknown rule id(s): {', '.join(unknown)}")
    lint = [r for r in chosen if r in LINT_RULE_IDS]
    safety = [r for r in chosen if r in SAFETY_RULE_IDS]
    termination = [r for r in chosen if r in TERMINATION_RULE_IDS]
    return lint, safety, termination


def _run_query(path: str, spec: str, args) -> int:
    """The ``--query`` mode: answer one obligation on demand."""
    from repro.core.api import Analyzer
    from repro.lang.parser import ParseError
    from repro.lang.typecheck import TypeError_
    from repro.checker.safety import Query, answer_query

    try:
        query = Query.parse(spec)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    uri = path.replace(os.sep, "/")
    try:
        analyzer = Analyzer.from_source(source)
    except (ParseError, TypeError_) as exc:
        print(f"error: {uri}: {exc}", file=sys.stderr)
        return 2
    try:
        answer = answer_query(
            analyzer,
            query,
            SafetyOptions(
                domain=args.domain, k=args.k, max_seconds=args.budget
            ),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings = answer.findings()
    if args.json:
        print(json.dumps(
            {"schema": diag.SCHEMA, "file": uri, **answer.to_json()}, indent=2
        ))
    else:
        for finding in findings:
            where = uri
            if finding.line:
                where += f":{finding.line}"
            proc = f" ({finding.procedure})" if finding.procedure else ""
            print(f"{where}: [{finding.verdict}] {finding.rule_id}{proc}: "
                  f"{finding.message}")
        heat = "warm" if answer.from_cache else "cold"
        print(f"query {query.spec()}: verdict "
              f"{answer.verdict or 'no-obligation'} "
              f"(cone {answer.cone_size}/{answer.proc_count} procs, {heat}, "
              f"{answer.seconds * 1000:.1f} ms)")
    failed = any(_reportable(f, args.fail_on) for f in findings)
    return 1 if failed else 0


def _reportable(finding: CheckFinding, fail_on: str) -> bool:
    if fail_on == "none":
        return False
    if fail_on == "unsafe":
        return finding.verdict in (UNSAFE, POSSIBLY_NONTERMINATING, diag.ERROR)
    return finding.verdict in (
        WARN, UNSAFE, POSSIBLY_NONTERMINATING, diag.ERROR,
    )  # "any"


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-lint",
        description="two-tier memory-safety & lint checker for LISL programs",
    )
    ap.add_argument("paths", nargs="+",
                    help=".lisl files or directories (searched recursively)")
    ap.add_argument("--tier", choices=("lint", "safety", "termination", "all"),
                    default="all",
                    help="which tier(s) to run (default: all = lint + safety; "
                         "termination is opt-in)")
    ap.add_argument("--rules", type=str, default=None,
                    help="comma-separated rule ids to enable (default: all)")
    ap.add_argument("--domain", choices=("am", "au"), default="am",
                    help="abstract domain for Tier B safety (default: am; "
                         "the termination tier always uses au)")
    ap.add_argument("--k", type=int, default=0, help="fold bound k for Tier B")
    ap.add_argument("--budget", type=float, default=None,
                    help="total wall-clock budget across all Tier-B analyses "
                         "(seconds); obligations past the budget degrade to "
                         "unknown with a checker.incomplete note")
    ap.add_argument("--include-safe", action="store_true",
                    help="also report proved-safe Tier-B obligations")
    ap.add_argument("--query", type=str, default=None,
                    metavar="PROC:LINE[:RULE]",
                    help="answer one program-point obligation on demand "
                         "(line 0 = whole procedure; rule defaults to every "
                         "Tier-B rule); analyzes only the procedure's "
                         "backward call cone and takes exactly one file")
    ap.add_argument("--fail-on", choices=("any", "unsafe", "none"), default="any",
                    help="exit 1 when findings at this severity exist "
                         "(any = lints + unsafe; default)")
    ap.add_argument("--sarif", type=str, default=None,
                    help="write a SARIF 2.1.0 log to this path")
    ap.add_argument("--json", action="store_true",
                    help="print the repro-diagnostics/1 envelope as JSON")
    args = ap.parse_args(argv)

    files = _collect_files(args.paths)
    if not files:
        print("error: no .lisl files found", file=sys.stderr)
        return 2
    if args.query is not None:
        if len(files) != 1:
            print("error: --query takes exactly one file", file=sys.stderr)
            return 2
        return _run_query(files[0], args.query, args)
    lint_rules, safety_rules, termination_rules = _split_rules(args.rules)
    tier = args.tier
    if args.rules:
        # A rules filter implies the tiers it names.  The termination
        # tier runs alone (it is a different cost class), so mixing
        # safety.termination with lint/safety rules is a usage error.
        if termination_rules and (lint_rules or safety_rules):
            print(
                "error: safety.termination cannot be combined with other "
                "rules (run it as its own tier)",
                file=sys.stderr,
            )
            return 2
        if termination_rules:
            tier = "termination"
        elif lint_rules and not safety_rules:
            tier = "lint"
        elif safety_rules and not lint_rules:
            tier = "safety"

    options = CheckOptions(
        tier=tier,
        lint_rules=lint_rules,
        safety=SafetyOptions(
            domain=args.domain,
            k=args.k,
            rules=safety_rules,
            max_seconds=args.budget,
        ),
        termination=TerminationOptions(
            k=args.k,
            rules=termination_rules,
            max_seconds=args.budget,
        ),
        include_safe=args.include_safe,
    )

    findings_by_uri: Dict[str, List[CheckFinding]] = {}
    envelopes: Dict[str, dict] = {}
    failed = False
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report = check_source(source, options, path=path)
        uri = path.replace(os.sep, "/")
        findings_by_uri[uri] = report.findings
        envelopes[uri] = report.to_envelope()
        for finding in report.findings:
            if _reportable(finding, args.fail_on):
                failed = True
            if not args.json:
                where = uri
                if finding.line:
                    where += f":{finding.line}"
                proc = f" ({finding.procedure})" if finding.procedure else ""
                print(f"{where}: [{finding.verdict}] {finding.rule_id}{proc}: "
                      f"{finding.message}")

    if args.json:
        print(json.dumps({"schema": diag.SCHEMA, "files": envelopes}, indent=2))
    elif not any(findings_by_uri.values()):
        print(f"no findings in {len(files)} file(s)")

    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as fh:
            fh.write(sarif_dumps(findings_by_uri))
        if not args.json:
            print(f"SARIF log written to {args.sarif}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
