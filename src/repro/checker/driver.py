"""The checker driver: run both tiers over a program, collect a report.

This is the single entry point everything else wraps -- the ``repro-lint``
CLI, the service daemon's ``check`` verb, the fuzz cross-check and the
benchmarks all call :func:`check_program` / :func:`check_source` and
consume the resulting :class:`CheckReport`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.core.api import Analyzer
from repro.lang.parser import ParseError
from repro.lang.typecheck import TypeError_
from repro.service import diagnostics as diag
from repro.checker.findings import (
    CheckFinding,
    POSSIBLY_NONTERMINATING,
    UNSAFE,
    UNKNOWN,
    WARN,
    sort_findings,
)
from repro.checker.lints import lint_program
from repro.checker.safety import SafetyOptions, SafetyReport, check_safety

# "all" remains lint + safety; the termination tier is opt-in (it runs
# whole-program AU fixpoints, a different cost class than the default lint).
TIERS = ("lint", "safety", "termination", "all")


@dataclass
class CheckOptions:
    tier: str = "all"  # "lint" | "safety" | "termination" | "all"
    lint_rules: Optional[Iterable[str]] = None
    safety: SafetyOptions = field(default_factory=SafetyOptions)
    termination: "TerminationOptions" = None  # defaults lazily (import cycle)
    include_safe: bool = False  # also report proved-safe obligations

    def __post_init__(self):
        if self.tier not in TIERS:
            raise ValueError(f"unknown tier {self.tier!r} (expected one of {TIERS})")
        if self.termination is None:
            from repro.termination.driver import TerminationOptions

            self.termination = TerminationOptions()


@dataclass
class CheckReport:
    """All findings of one checker run plus per-rule accounting."""

    findings: List[CheckFinding] = field(default_factory=list)
    safety: Optional[SafetyReport] = None
    termination: Optional["TerminationReport"] = None
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """No lints, no unsafe/possibly-nonterminating verdicts
        (unknowns are tolerated)."""
        return not any(
            f.verdict in (WARN, UNSAFE, POSSIBLY_NONTERMINATING, diag.ERROR)
            for f in self.findings
        )

    def rule_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule_id] = counts.get(f.rule_id, 0) + 1
        return counts

    def to_records(self) -> List[diag.DiagnosticRecord]:
        return [f.to_record() for f in self.findings]

    def to_envelope(self) -> Dict[str, Any]:
        return diag.run_envelope(self.to_records(), stats=self.stats)


def _count_rules(report: CheckReport, telemetry=None) -> None:
    counts = report.rule_counts()
    report.stats["rules"] = {k: counts[k] for k in sorted(counts)}
    if telemetry is not None:
        for rule_id, n in sorted(counts.items()):
            telemetry.count(f"checker.rule.{rule_id}", n)


def check_program(
    analyzer: Analyzer,
    options: Optional[CheckOptions] = None,
    telemetry=None,
) -> CheckReport:
    """Run the configured tiers over an already-parsed (normalized) program."""
    opts = options or CheckOptions()
    report = CheckReport()
    if opts.tier in ("lint", "all"):
        started = time.perf_counter()
        report.findings.extend(
            lint_program(analyzer.program, analyzer.icfg, rules=opts.lint_rules)
        )
        report.stats["lint_seconds"] = round(time.perf_counter() - started, 6)
    if opts.tier in ("safety", "all"):
        safety_report = check_safety(analyzer, opts.safety)
        report.safety = safety_report
        report.findings.extend(safety_report.findings(include_safe=opts.include_safe))
        report.stats["safety_seconds"] = round(safety_report.seconds, 6)
        report.stats["safety_verdicts"] = safety_report.counts()
        report.stats["safety_sites"] = len(safety_report.sites)
    if opts.tier == "termination":
        from repro.termination.driver import check_termination

        term_report = check_termination(analyzer, opts.termination)
        report.termination = term_report
        report.findings.extend(term_report.findings(include_safe=opts.include_safe))
        report.stats["termination_seconds"] = round(term_report.seconds, 6)
        report.stats["termination_verdicts"] = term_report.counts()
        report.stats["termination_sites"] = len(term_report.sites)
    report.findings = sort_findings(report.findings)
    _count_rules(report, telemetry)
    return report


def check_source(
    source: str,
    options: Optional[CheckOptions] = None,
    telemetry=None,
    path: Optional[str] = None,
) -> CheckReport:
    """Parse + typecheck + normalize, then check.

    Frontend failures do not raise: they come back as a report with one
    ``frontend.parse-error`` / ``frontend.type-error`` finding, carrying
    the source line -- the same envelope shape as every other finding.
    """
    try:
        analyzer = Analyzer.from_source(source)
    except (ParseError, TypeError_) as exc:
        record = diag.from_frontend_error(exc, path=path)
        report = CheckReport(
            findings=[
                CheckFinding(
                    rule_id=record.rule_id,
                    verdict=record.verdict,
                    message=record.message,
                    line=record.line,
                    witness=record.witness,
                )
            ]
        )
        _count_rules(report, telemetry)
        return report
    return check_program(analyzer, options, telemetry=telemetry)
