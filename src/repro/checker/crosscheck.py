"""Differential validation of Tier-B verdicts against concrete runs.

The checker's contract is that a *safe* verdict is a proof: no concrete
execution (from any cutpoint-free context) may null-deref at a site
proved safe, leak cells at the exit of a leak-safe procedure, or build a
cycle in an acyclicity-safe procedure.  This module holds the checker to
that contract the same way :mod:`repro.fuzz.oracle` holds the abstract
transformers to gamma-soundness: run the concrete interpreter on random
inputs, observe faults/leaks/cycles with their (proc, line) attribution,
and report any observation that lands on a "safe" verdict.

Wired into the fuzz CLI as ``python -m repro.fuzz --check-safety``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.concrete.heap import Cell, dll_violations, to_cells, to_dll_cells
from repro.concrete.interp import (
    AssertFailure,
    AssumeFailure,
    ConcreteError,
    Interpreter,
)
from repro.core.api import Analyzer
from repro.fuzz.oracle import Finding
from repro.lang import ast as A
from repro.lang.ast import uses_prev
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lang.typecheck import typecheck_program
from repro.checker.findings import SAFE
from repro.checker.safety import SafetyOptions, SafetyReport, check_safety


@dataclass
class CrossCheckConfig:
    rounds: int = 5  # concrete executions per program
    max_interp_steps: int = 200_000
    domain: str = "am"
    engine_max_steps: Optional[int] = 60_000
    engine_max_seconds: Optional[float] = 30.0
    max_list_len: int = 4
    data_lo: int = -9
    data_hi: int = 9


# One concrete observation: ("deref", proc, line) | ("leak", proc, None)
# | ("cycle", proc, None) | ("dllbroken", proc, None).
Event = Tuple[str, str, Optional[int]]


def _walk(cell: Optional[Cell]) -> Tuple[Set[int], Dict[int, Cell], bool]:
    """Follow ``next`` from a cell; returns (ids, id->cell, sees_cycle)."""
    ids: Set[int] = set()
    cells: Dict[int, Cell] = {}
    cur = cell
    while isinstance(cur, Cell):
        if id(cur) in ids:
            return ids, cells, True
        ids.add(id(cur))
        cells[id(cur)] = cur
        cur = cur.next
    return ids, cells, False


class _FrameObserver:
    """Collects leak/cycle/DLL events at every concrete frame exit."""

    def __init__(self, events: List[Event], dll: bool = False):
        self.events = events
        self.dll = dll

    def __call__(self, proc_name: str, env, cfg) -> None:
        io_names = {p.name for p in list(cfg.inputs) + list(cfg.outputs)}
        reach_io: Set[int] = set()
        cyclic = False
        for name in sorted(io_names):
            ids, _cells, saw_cycle = _walk(env.get(name))
            reach_io |= ids
            cyclic = cyclic or saw_cycle
        if self.dll:
            # Outputs are the lists the exit summary describes; a broken
            # back pointer there is what safety.dll-consistent must catch.
            for p in cfg.outputs:
                value = env.get(p.name)
                if isinstance(value, Cell) and dll_violations(value):
                    self.events.append(("dllbroken", proc_name, None))
                    break
        leaked = False
        for name in sorted(env):
            if name in io_names or not isinstance(env.get(name), Cell):
                continue
            ids, _cells, saw_cycle = _walk(env[name])
            cyclic = cyclic or saw_cycle
            if ids - reach_io:
                leaked = True
        if leaked:
            self.events.append(("leak", proc_name, None))
        if cyclic:
            self.events.append(("cycle", proc_name, None))


class CrossChecker:
    """Concrete-vs-checker differential harness (the ``--check-safety`` oracle)."""

    def __init__(self, config: Optional[CrossCheckConfig] = None):
        self.config = config or CrossCheckConfig()
        # run -> concrete execution ended early (budget/stuck, not a deref)
        self.skips: Dict[str, int] = {"run": 0}

    # -- input generation (mirrors fuzz.oracle) ---------------------------------

    def random_input_views(self, rng: random.Random, cfg) -> List:
        views: List = []
        for p in cfg.inputs:
            if p.type == A.INT:
                views.append(rng.randint(self.config.data_lo, self.config.data_hi))
            else:
                views.append(
                    [
                        rng.randint(self.config.data_lo, self.config.data_hi)
                        for _ in range(rng.randint(0, self.config.max_list_len))
                    ]
                )
        return views

    # -- entry points -----------------------------------------------------------

    def check_program(self, program: A.Program, root: str, seed: int) -> List[Finding]:
        try:
            norm = normalize_program(typecheck_program(program))
            analyzer = Analyzer(norm)
            cfg = analyzer.icfg.cfg(root)
        except Exception as exc:  # generator guarantees this never happens
            return [
                Finding(
                    kind="crash",
                    domain="checker",
                    root=root,
                    message=f"{type(exc).__name__}: {exc}",
                    source=pretty_program(program),
                    seed=seed,
                )
            ]
        rng = random.Random(seed)
        views_list = [
            self.random_input_views(rng, cfg) for _ in range(self.config.rounds)
        ]
        return self.check_views(program, root, views_list, seed=seed)

    def check_source(
        self,
        source: str,
        root: str,
        views_list: Sequence[List],
        seed: Optional[int] = None,
    ) -> List[Finding]:
        """Replay a corpus entry: parse source, then :meth:`check_views`."""
        program = typecheck_program(parse_program(source))
        return self.check_views(program, root, views_list, seed=seed)

    def check_views(
        self,
        program: A.Program,
        root: str,
        views_list: Sequence[List],
        seed: Optional[int] = None,
    ) -> List[Finding]:
        norm = normalize_program(typecheck_program(program))
        analyzer = Analyzer(norm)
        source = pretty_program(program)
        report = check_safety(
            analyzer,
            SafetyOptions(
                domain=self.config.domain,
                max_steps=self.config.engine_max_steps,
                max_seconds=self.config.engine_max_seconds,
            ),
        )
        events = self._observe_events(analyzer, root, views_list, dll=uses_prev(norm))
        return self._contradictions(report, events, root, source, seed)

    # -- concrete side ----------------------------------------------------------

    def _observe_events(
        self,
        analyzer: Analyzer,
        root: str,
        views_list: Sequence[List],
        dll: bool = False,
    ) -> List[Event]:
        events: List[Event] = []
        interp = Interpreter(
            analyzer.icfg, max_steps=self.config.max_interp_steps
        )
        interp.frame_observer = _FrameObserver(events, dll=dll)
        cfg = analyzer.icfg.cfg(root)
        build = to_dll_cells if dll else to_cells
        for views in views_list:
            args = [
                build(list(v)) if isinstance(v, list) else v for v in views
            ]
            if len(args) != len(cfg.inputs):
                continue
            try:
                interp.run(root, args)
            except ConcreteError as exc:
                if str(exc).startswith("NULL dereference") and exc.proc:
                    events.append(("deref", exc.proc, exc.line))
                else:
                    self.skips["run"] += 1
            except (AssumeFailure, AssertFailure, RecursionError):
                self.skips["run"] += 1
        return events

    # -- verdict comparison -----------------------------------------------------

    def _contradictions(
        self,
        report: SafetyReport,
        events: List[Event],
        root: str,
        source: str,
        seed: Optional[int],
    ) -> List[Finding]:
        findings: List[Finding] = []
        seen: Set[Tuple] = set()

        def add(message: str) -> None:
            if message in seen:
                return
            seen.add(message)
            findings.append(
                Finding(
                    kind="checker",
                    domain=self.config.domain,
                    root=root,
                    message=message,
                    source=source,
                    seed=seed,
                )
            )

        for kind, proc, line in events:
            if report.proc_status.get(proc, "ok") != "ok":
                continue  # verdicts already degraded to unknown
            if kind == "deref":
                if line is None:
                    continue
                verdict = report.null_deref_verdict(proc, line)
                if verdict == SAFE:
                    add(
                        f"concrete NULL dereference at {proc}:{line} "
                        "contradicts a safe null-deref verdict"
                    )
                elif verdict is None:
                    add(
                        f"concrete NULL dereference at {proc}:{line} has no "
                        "checker obligation site (missed dereference)"
                    )
            elif kind == "leak" and report.leak_verdict(proc) == SAFE:
                add(
                    f"concrete cells leaked at exit of {proc} contradict "
                    "a safe leak verdict"
                )
            elif kind == "cycle" and report.acyclic_verdict(proc) == SAFE:
                add(
                    f"concrete cyclic backbone in {proc} contradicts "
                    "a safe acyclicity verdict"
                )
            elif kind == "dllbroken" and report.dll_consistent_verdict(proc) == SAFE:
                add(
                    f"concrete back-pointer violation at exit of {proc} "
                    "contradicts a safe dll-consistent verdict"
                )
        return findings
