"""The checker's finding model and rule-id registry.

Rule ids are stable API (frozen by ``tests/test_checker.py``): dashboards,
golden corpus files and the SARIF exporter all key on them.  A finding is
deliberately flat -- rule id, verdict, procedure, line, message, small
witness dict -- and converts losslessly into the service's
:class:`~repro.service.diagnostics.DiagnosticRecord` envelope shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.service import diagnostics as diag

# -- Tier A (dataflow lints) -------------------------------------------------
RULE_USE_BEFORE_INIT = "lint.use-before-init"
RULE_DEAD_STORE = "lint.dead-store"
RULE_UNREACHABLE = "lint.unreachable"
RULE_LINT_NULL_DEREF = "lint.null-deref"
RULE_MISSING_RETURN = "lint.missing-return"
RULE_UNUSED_LOCAL = "lint.unused-local"
RULE_UNUSED_PARAM = "lint.unused-param"

# -- Tier B (summary-backed safety proofs) -----------------------------------
RULE_SAFETY_NULL_DEREF = "safety.null-deref"
RULE_SAFETY_LEAK = "safety.leak"
RULE_SAFETY_ACYCLIC = "safety.acyclic"
RULE_SAFETY_DLL_CONSISTENT = "safety.dll-consistent"

# -- Termination prover (repro.termination; opt-in tier) ----------------------
RULE_SAFETY_TERMINATION = "safety.termination"

# -- Frontend (shared with the service envelope layer) -----------------------
RULE_PARSE_ERROR = diag.RULE_PARSE_ERROR
RULE_TYPE_ERROR = diag.RULE_TYPE_ERROR

# -- Checker-internal --------------------------------------------------------
RULE_CHECKER_INCOMPLETE = "checker.incomplete"

LINT_RULE_IDS: Tuple[str, ...] = (
    RULE_USE_BEFORE_INIT,
    RULE_DEAD_STORE,
    RULE_UNREACHABLE,
    RULE_LINT_NULL_DEREF,
    RULE_MISSING_RETURN,
    RULE_UNUSED_LOCAL,
    RULE_UNUSED_PARAM,
)
SAFETY_RULE_IDS: Tuple[str, ...] = (
    RULE_SAFETY_NULL_DEREF,
    RULE_SAFETY_LEAK,
    RULE_SAFETY_ACYCLIC,
    RULE_SAFETY_DLL_CONSISTENT,
)
TERMINATION_RULE_IDS: Tuple[str, ...] = (RULE_SAFETY_TERMINATION,)
FRONTEND_RULE_IDS: Tuple[str, ...] = (RULE_PARSE_ERROR, RULE_TYPE_ERROR)
ALL_RULE_IDS: Tuple[str, ...] = (
    LINT_RULE_IDS
    + SAFETY_RULE_IDS
    + TERMINATION_RULE_IDS
    + FRONTEND_RULE_IDS
    + (RULE_CHECKER_INCOMPLETE,)
)

RULE_DESCRIPTIONS: Dict[str, str] = {
    RULE_USE_BEFORE_INIT: "variable may be read before it is assigned",
    RULE_DEAD_STORE: "assigned value is never read",
    RULE_UNREACHABLE: "statement is unreachable",
    RULE_LINT_NULL_DEREF: "dereference of a definitely-NULL pointer",
    RULE_MISSING_RETURN: "output may be unset when the procedure returns",
    RULE_UNUSED_LOCAL: "local variable is never read",
    RULE_UNUSED_PARAM: "parameter is never read",
    RULE_SAFETY_NULL_DEREF: "dereference not proved non-NULL in all abstract heaps",
    RULE_SAFETY_LEAK: "cells may be unreachable from inputs/outputs at exit",
    RULE_SAFETY_ACYCLIC: "list backbone may become cyclic",
    RULE_SAFETY_DLL_CONSISTENT: (
        "doubly-linked back pointers not proved consistent at exit"
    ),
    RULE_SAFETY_TERMINATION: "loop or recursion not proved terminating",
    RULE_PARSE_ERROR: "source does not parse",
    RULE_TYPE_ERROR: "source does not typecheck",
    RULE_CHECKER_INCOMPLETE: "analysis incomplete; safety verdicts degraded to unknown",
}

# Verdicts.  Tier A lints always "warn"; Tier B is three-valued; the
# termination prover adds its own three-valued vocabulary.
WARN = diag.WARN
SAFE = diag.SAFE
UNSAFE = diag.UNSAFE
UNKNOWN = diag.UNKNOWN
TERMINATING = diag.TERMINATING
POSSIBLY_NONTERMINATING = diag.POSSIBLY_NONTERMINATING


@dataclass
class CheckFinding:
    """One checker result, stable under re-runs of the same source."""

    rule_id: str
    verdict: str
    message: str
    procedure: Optional[str] = None
    line: Optional[int] = None
    witness: Dict[str, Any] = field(default_factory=dict)

    def sort_key(self) -> Tuple:
        return (
            self.procedure or "",
            self.line or 0,
            self.rule_id,
            self.verdict,
            self.message,
        )

    def to_record(self) -> diag.DiagnosticRecord:
        return diag.DiagnosticRecord(
            rule_id=self.rule_id,
            verdict=self.verdict,
            message=self.message,
            procedure=self.procedure,
            line=self.line,
            witness=dict(self.witness),
        )

    def to_json(self) -> Dict[str, Any]:
        return self.to_record().to_json()


def sort_findings(findings: List[CheckFinding]) -> List[CheckFinding]:
    return sorted(findings, key=CheckFinding.sort_key)
