"""Local heaps, entry snapshots, and summary composition (paper §4).

At a call ``(y...) = Q(x...)`` the callee sees only the part of the heap
reachable from the actual parameters (the *local heap*, Rinetzky et al.);
we verify cutpoint-freedom and build the callee's entry configuration: the
local subgraph relabeled with formals, *plus an isomorphic snapshot copy*
labeled ``f$0`` whose words are pointwise equal (paper eq. H/I) -- the
doubled vocabulary that makes summaries relations.

At the return, the summary (a relation between the ``$0`` snapshot and the
exit heap) is composed with the caller's relation at the call point by
*identifying the snapshot words with the caller's local words*, conjoining
the two values, and existentially quantifying the identified words -- the
paper's ``Combine`` followed by projection, with a hook where
``strengthen_M`` plugs in (§6.2).

External references into the local heap are tolerated only on *entry*
nodes whose formal parameter the callee never reassigns (then the entry
cell keeps its identity and the references re-attach to the formal's exit
node); anything else raises :class:`CutpointError`, as the analysis only
supports cutpoint-free programs (§2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.datawords import terms as T
from repro.datawords.base import LDWDomain
from repro.lang import ast as A
from repro.lang.cfg import CFG, OpAssignPtr, OpCall
from repro.numeric.linexpr import Constraint, LinExpr
from repro.shape.abstract_heap import AbstractHeap
from repro.shape.graph import NULL, HeapGraph


class CutpointError(Exception):
    """The program is outside the supported cutpoint-free fragment."""


@dataclass
class CallInfo:
    """Everything the return composition needs about one call site."""

    callee: str
    entry_heap: AbstractHeap  # formals + $0 snapshot, canonical node names
    caller_to_entry: Dict[str, str]  # caller local node -> entry node
    local_nodes: List[str]  # caller node names consumed by the call
    ptr_formals: List[str]
    ptr_actuals: List[str]
    data_formals: List[str]
    data_actuals: List[str]
    reattach: Dict[str, bool]  # formal -> callee never reassigns it


def _formal_split(cfg: CFG) -> Tuple[List[str], List[str]]:
    ptrs = [p.name for p in cfg.inputs if p.type == A.LIST]
    data = [p.name for p in cfg.inputs if p.type == A.INT]
    return ptrs, data


def _callee_reassigns(cfg: CFG, formal: str) -> bool:
    return any(
        isinstance(e.op, OpAssignPtr) and e.op.target == formal
        for e in cfg.edges
    ) or any(
        isinstance(e.op, OpCall) and formal in e.op.targets for e in cfg.edges
    )


def build_call_entry(
    domain: LDWDomain,
    heap: AbstractHeap,
    callee_cfg: CFG,
    op: OpCall,
) -> CallInfo:
    """Extract the local heap and build the callee's entry configuration."""
    graph = heap.graph
    ptr_formals, data_formals = _formal_split(callee_cfg)
    ptr_actuals: List[str] = []
    data_actuals: List[str] = []
    index = 0
    for param in callee_cfg.inputs:
        arg = op.args[index]
        index += 1
        if param.type == A.LIST:
            ptr_actuals.append(arg)
        else:
            data_actuals.append(arg)

    entry_nodes_of_actuals = {
        graph.node_of(a) for a in ptr_actuals if graph.node_of(a) != NULL
    }
    local = set(graph.reachable_from(entry_nodes_of_actuals)) - {NULL}

    reattach = {
        f: not _callee_reassigns(callee_cfg, f) for f in ptr_formals
    }
    # A reassigned formal loses track of the entry cell: the caller's
    # actual still points at it after the call (by-value parameters), but
    # the callee's exit heap no longer delimits it with a node, so the
    # return composition cannot re-attach the caller's pointer soundly.
    # ``normalize_program`` rewrites every procedure so this never happens
    # (assigned list formals are renamed to locals); reject rather than
    # silently corrupt callers of un-normalized procedures.
    for f, a in zip(ptr_formals, ptr_actuals):
        if not reattach[f] and graph.node_of(a) != NULL:
            raise CutpointError(
                f"callee {op.proc} reassigns list formal {f}; the entry "
                f"cell of actual {a} cannot be tracked through the return"
            )
    actual_set = set(ptr_actuals)
    for node in local:
        external_preds = [p for p in graph.preds(node) if p not in local]
        external_labels = [
            v for v in graph.vars_of(node) if v not in actual_set
        ]
        # An external cell whose prev pointer aims into the local heap is
        # an external reference too (the DLL analogue of a predecessor).
        external_prevrefs = [
            m
            for m, t in graph.prevof.items()
            if t == node and m not in local
        ]
        is_entry = node in entry_nodes_of_actuals
        if not is_entry and (external_preds or external_labels or external_prevrefs):
            raise CutpointError(
                f"cutpoint at node {node} calling {op.proc} "
                f"(preds={external_preds}, labels={external_labels}, "
                f"prevrefs={external_prevrefs})"
            )
        if is_entry and (external_preds or external_labels or external_prevrefs):
            for f, a in zip(ptr_formals, ptr_actuals):
                if graph.node_of(a) == node and not reattach[f]:
                    raise CutpointError(
                        f"externally referenced entry node {node}: callee "
                        f"{op.proc} reassigns formal {f}"
                    )

    # -- the local subgraph, relabeled with formals -----------------------------
    local_succ = {n: m for n, m in graph.succ.items() if n in local}
    labels: Dict[str, str] = {}
    for f, a in zip(ptr_formals, ptr_actuals):
        labels[f] = graph.node_of(a)
    for p in callee_cfg.outputs + callee_cfg.locals:
        if p.type == A.LIST and p.name not in labels:
            labels[p.name] = NULL
    local_prevof: Dict[str, str] = {}
    for m, t in graph.prevof.items():
        if m not in local:
            continue
        if t != NULL and t not in local:
            # Backward-reachability makes prev targets local; a miss means
            # the local heap reaches out behind the callee's view.
            raise CutpointError(
                f"prev target {t} of local node {m} escapes the local heap "
                f"calling {op.proc}"
            )
        local_prevof[m] = t
    local_graph = HeapGraph(
        local,
        local_succ,
        labels,
        local_prevof,
        graph.dllseg & local,
        graph.backlink & local,
    )
    canon_graph, renaming = local_graph.canonical()
    caller_to_entry = {n: renaming[n] for n in local}

    # -- the entry value --------------------------------------------------------------
    value = heap.value
    external_words = [w for w in graph.word_nodes() if w not in local]
    value = domain.project_words(value, external_words)
    value = domain.rename_words(value, caller_to_entry)
    # Data actual -> formal transfer through clash-safe temporaries.
    temp_of = {}
    for i, (fd, ad) in enumerate(zip(data_formals, data_actuals)):
        temp = f"$arg{i}"
        temp_of[fd] = temp
        value = domain.meet_constraint(
            value, Constraint.eq(LinExpr.var(temp), LinExpr.var(ad))
        )
    caller_data = _data_vocabulary(domain, value) - set(temp_of.values())
    value = domain.forget_data(value, caller_data)
    for fd, temp in temp_of.items():
        value = _rename_data(domain, value, temp, fd)
    # Callee's other integer variables start at 0.
    for p in callee_cfg.outputs + callee_cfg.locals:
        if p.type == A.INT:
            value = domain.meet_constraint(
                value, Constraint.eq(LinExpr.var(p.name), LinExpr.const_expr(0))
            )

    # -- the $0 snapshot ---------------------------------------------------------------
    snap_nodes = {n: T.entry_copy(n) for n in canon_graph.word_nodes()}
    nodes = set(canon_graph.word_nodes()) | set(snap_nodes.values())
    succ = dict(canon_graph.succ)
    for n, m in canon_graph.succ.items():
        succ[snap_nodes[n]] = snap_nodes.get(m, m)  # NULL stays NULL
    labels = dict(canon_graph.labels)
    for f in ptr_formals:
        target = canon_graph.node_of(f)
        labels[T.entry_copy(f)] = (
            NULL if target == NULL else snap_nodes[target]
        )
    # Snapshot nodes stay attr-free: they exist only to pin word identity,
    # and _match_snapshot walks succ chains exclusively.
    entry_graph = HeapGraph(
        nodes, succ, labels,
        canon_graph.prevof, canon_graph.dllseg, canon_graph.backlink,
    )
    for n, c in snap_nodes.items():
        value = domain.add_word_copy_eq(value, n, c)
    for fd in data_formals:
        value = domain.meet_constraint(
            value,
            Constraint.eq(
                LinExpr.var(T.entry_copy(fd)), LinExpr.var(fd)
            ),
        )

    entry_heap = AbstractHeap(entry_graph, value)
    return CallInfo(
        callee=op.proc,
        entry_heap=entry_heap,
        caller_to_entry=caller_to_entry,
        local_nodes=sorted(local),
        ptr_formals=ptr_formals,
        ptr_actuals=ptr_actuals,
        data_formals=data_formals,
        data_actuals=data_actuals,
        reattach=reattach,
    )


def restrict_summary_exit(
    domain: LDWDomain, heap: AbstractHeap, callee_cfg: CFG
) -> AbstractHeap:
    """Prepare one exit heap for tabulation: drop callee-local state.

    Keeps: the $0 snapshot, the in/out formals (pointers as labels, data as
    variables with their $0 copies), and everything reachable from them.
    """
    keep_ptr = {p.name for p in callee_cfg.inputs + callee_cfg.outputs if p.type == A.LIST}
    keep_ptr |= {T.entry_copy(p.name) for p in callee_cfg.inputs if p.type == A.LIST}
    keep_data = {p.name for p in callee_cfg.inputs + callee_cfg.outputs if p.type == A.INT}
    keep_data |= {T.entry_copy(p.name) for p in callee_cfg.inputs if p.type == A.INT}
    drop_labels = [v for v in heap.graph.labels if v not in keep_ptr]
    graph = heap.graph.without_labels(drop_labels)
    heap = AbstractHeap(graph, heap.value).gc(domain)
    data_vars = _data_vocabulary(domain, heap.value) - keep_data
    value = domain.forget_data(heap.value, data_vars)
    return AbstractHeap(heap.graph, value)


def compose_return(
    domain: LDWDomain,
    caller_heap: AbstractHeap,
    exit_heap: AbstractHeap,
    callee_cfg: CFG,
    op: OpCall,
    info: CallInfo,
    strengthen=None,
) -> Optional[AbstractHeap]:
    """Compose the caller's relation with one summary exit heap.

    ``strengthen`` is an optional hook ``value -> value`` applied to the
    combined value before projection (the paper's strengthen_M, §6.2).
    Returns None when the snapshot chains cannot be matched (should not
    happen for summaries produced by this engine).
    """
    snapshot_map = _match_snapshot(exit_heap.graph, info)
    if snapshot_map is None:
        return None

    caller_graph = caller_heap.graph
    entry_to_caller = {e: c for c, e in info.caller_to_entry.items()}

    # -- rename the summary vocabulary away from the caller's -----------------------
    taken = set(caller_graph.nodes)
    node_rename: Dict[str, str] = {}
    for snap_node, entry_node in snapshot_map.items():
        node_rename[snap_node] = entry_to_caller[entry_node]
    fresh_i = 0
    for n in exit_heap.graph.word_nodes():
        if n in node_rename:
            continue
        while f"r{fresh_i}" in taken:
            fresh_i += 1
        node_rename[n] = f"r{fresh_i}"
        taken.add(f"r{fresh_i}")
    summary_value = domain.rename_words(exit_heap.value, node_rename)

    callee_data = _data_vocabulary(domain, summary_value)
    data_rename = {d: f"$ret_{d}" for d in callee_data}
    summary_value = _rename_data_map(domain, summary_value, data_rename)

    # -- Combine (paper §4, procedure returns) ----------------------------------------
    value = domain.meet(caller_heap.value, summary_value)
    for fd, ad in zip(info.data_formals, info.data_actuals):
        snap = f"$ret_{T.entry_copy(fd)}"
        value = domain.meet_constraint(
            value, Constraint.eq(LinExpr.var(snap), LinExpr.var(ad))
        )
    if strengthen is not None:
        value = strengthen(value, node_rename, data_rename)

    # -- integer results --------------------------------------------------------------
    out_targets = list(op.targets)
    for param, target in zip(callee_cfg.outputs, out_targets):
        if param.type == A.INT:
            value = domain.forget_data(value, [target])
            value = _rename_data(domain, value, f"$ret_{param.name}", target)

    # -- graph assembly ------------------------------------------------------------------
    consumed = set(info.local_nodes)
    kept_nodes = (set(caller_graph.nodes) - {NULL}) - consumed
    summary_nodes = {
        node_rename[n]
        for n in exit_heap.graph.word_nodes()
        if n not in snapshot_map  # snapshot nodes are not heap cells
    }
    nodes = kept_nodes | summary_nodes

    succ: Dict[str, str] = {}
    for n, m in caller_graph.succ.items():
        if n in kept_nodes and m not in consumed:
            succ[n] = m
    for n, m in exit_heap.graph.succ.items():
        if n in snapshot_map:
            continue
        rn = node_rename[n]
        rm = m if m == NULL else node_rename[m]
        if rm in snapshot_map.values():  # edge into the snapshot: impossible
            return None
        succ[rn] = rm

    # External edges / labels into consumed entry nodes re-attach to the
    # formal's exit node (the callee kept that cell's identity).
    exit_node_of_actual: Dict[str, str] = {}
    for f, a in zip(info.ptr_formals, info.ptr_actuals):
        caller_entry = caller_graph.node_of(a)
        if caller_entry == NULL:
            exit_node_of_actual[a] = NULL
            continue
        f_exit = exit_heap.graph.node_of(f)
        exit_node_of_actual[a] = (
            NULL if f_exit == NULL else node_rename[f_exit]
        )

    labels: Dict[str, str] = {}
    for var, node in caller_graph.labels.items():
        if node not in consumed:
            labels[var] = node
            continue
        replacement = _reattach_target(
            var, node, caller_graph, info, exit_node_of_actual
        )
        labels[var] = replacement
    for n, m in caller_graph.succ.items():
        if n in kept_nodes and m in consumed:
            target = _reattach_edge(n, m, caller_graph, info, exit_node_of_actual)
            if target is None:
                return None
            if target == NULL:
                succ.pop(n, None)
            else:
                succ[n] = target

    for param, target in zip(callee_cfg.outputs, out_targets):
        if param.type == A.LIST:
            o_exit = exit_heap.graph.node_of(param.name)
            labels[target] = NULL if o_exit == NULL else node_rename[o_exit]

    # -- project the identified words and leftover callee data --------------------------
    identified = [entry_to_caller[e] for e in snapshot_map.values()]
    value = domain.project_words(value, identified)
    leftover = [
        d for d in _data_vocabulary(domain, value) if d.startswith("$ret_")
    ]
    value = domain.forget_data(value, leftover)

    # -- DLL attributes: kept caller facts + renamed summary facts ----------------------
    prevof: Dict[str, str] = {}
    dllseg = (caller_graph.dllseg & kept_nodes)
    backlink = set()
    for m, t in caller_graph.prevof.items():
        if m not in kept_nodes:
            continue  # the summary is authoritative for consumed cells
        if t == NULL or t in kept_nodes:
            prevof[m] = t
        elif t in consumed:
            # first(t) kept its identity through the call; follow it to
            # the formal's exit node, else soundly forget the fact.
            target = _reattach_edge(m, t, caller_graph, info, exit_node_of_actual)
            if target is not None and target != NULL:
                prevof[m] = target
    for p in caller_graph.backlink:
        # A backlink into the consumed region may be stale (the callee can
        # rewrite first(entry).prev), so only fully-kept links survive.
        if p in kept_nodes and caller_graph.succ.get(p) in kept_nodes:
            backlink.add(p)
    for m, t in exit_heap.graph.prevof.items():
        if m in snapshot_map or t in snapshot_map:
            continue  # snapshot nodes carry no heap facts
        prevof[node_rename[m]] = t if t == NULL else node_rename[t]
    for n in exit_heap.graph.dllseg:
        if n not in snapshot_map:
            dllseg = dllseg | {node_rename[n]}
    for p in exit_heap.graph.backlink:
        if p not in snapshot_map:
            backlink.add(node_rename[p])

    graph = HeapGraph(nodes, succ, labels, prevof, dllseg, backlink)
    return AbstractHeap(graph, value)


def _reattach_target(
    var: str,
    node: str,
    caller_graph: HeapGraph,
    info: CallInfo,
    exit_node_of_actual: Dict[str, str],
) -> str:
    """Where a caller label into the consumed local heap points afterwards."""
    for f, a in zip(info.ptr_formals, info.ptr_actuals):
        if caller_graph.node_of(a) == node and info.reattach[f]:
            return exit_node_of_actual[a]
    # Unreachable for engine-built calls: build_call_entry rejects every
    # call whose consumed entry node could not re-attach.  Fail loudly
    # rather than corrupt the caller's heap.
    raise CutpointError(
        f"label {var} on consumed node {node} has no re-attachment point"
    )


def _reattach_edge(
    src: str,
    node: str,
    caller_graph: HeapGraph,
    info: CallInfo,
    exit_node_of_actual: Dict[str, str],
) -> Optional[str]:
    for f, a in zip(info.ptr_formals, info.ptr_actuals):
        if caller_graph.node_of(a) == node and info.reattach[f]:
            return exit_node_of_actual[a]
    return None


def _match_snapshot(
    exit_graph: HeapGraph, info: CallInfo
) -> Optional[Dict[str, str]]:
    """Map the summary's $0 nodes to entry-graph node names via the chains
    hanging off each ``f$0`` label (the snapshot is structurally stable)."""
    entry_graph = info.entry_heap.graph
    mapping: Dict[str, str] = {}
    for f in info.ptr_formals:
        snap_var = T.entry_copy(f)
        entry_start = entry_graph.node_of(snap_var)
        exit_start = exit_graph.node_of(snap_var)
        e, x = entry_start, exit_start
        while e != NULL or x != NULL:
            if e == NULL or x == NULL:
                return None  # chain length mismatch: not our snapshot
            if x in mapping and mapping[x] != e:
                return None
            mapping[x] = e
            e = entry_graph.succ.get(e, NULL)
            x = exit_graph.succ.get(x, NULL)
    # Map back through the snapshot naming to the entry (non-$0) node names.
    out: Dict[str, str] = {}
    for exit_node, entry_snap in mapping.items():
        if not T.is_entry_copy(entry_snap):
            return None
        out[exit_node] = entry_snap[: -len("$0")]
    return out


def _data_vocabulary(domain: LDWDomain, value) -> Set[str]:
    """Data variables mentioned by a value (domain-agnostic best effort)."""
    support: Set[str] = set()
    if hasattr(value, "data_vars"):
        return set(value.data_vars())
    if hasattr(value, "support"):
        for term in value.support():
            if T.word_of(term) is None and not T.is_posvar(term):
                support.add(term)
    return support


def _rename_data(domain: LDWDomain, value, old: str, new: str):
    return _rename_data_map(domain, value, {old: new})


def _rename_data_map(domain: LDWDomain, value, mapping: Dict[str, str]):
    """Rename data variables.  Both domains rename via term renaming."""
    if hasattr(value, "E"):  # UniversalValue
        from repro.datawords.universal import UniversalValue

        E = value.E.rename(mapping)
        clauses = {
            gi: body.rename(mapping) for gi, body in value.clauses.items()
        }
        return UniversalValue(E, clauses, bottom=value.is_bot)
    if hasattr(value, "rows"):  # MultisetValue
        from repro.datawords.multiset import MultisetValue

        if value.is_bot:
            return value
        rows = [
            {mapping.get(c, c): k for c, k in r.items()} for r in value.rows
        ]
        return MultisetValue(rows)
    raise TypeError(f"cannot rename data in {value!r}")
