"""User-facing facade: parse, analyze, inspect summaries.

Typical use::

    from repro import Analyzer
    analyzer = Analyzer.from_source(source_text)
    result = analyzer.analyze("quicksort", domain="am")
    print(result.describe())

The pattern-choice heuristic of §7 (`choose_patterns`) picks the guard
patterns per procedure from its syntax: ``P=`` always (parameter/entry
equality), ``P1`` when there is at least one loop or recursive call
traversing a list, ``P2`` for nested loops or two and more recursive
calls.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.datawords.multiset import MultisetDomain
from repro.datawords.patterns import PatternSet, pattern_set
from repro.datawords.universal import UniversalDomain
from repro.engine import EngineOptions, SummaryCache
from repro.lang.cfg import ICFG, build_icfg
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck_program
from repro.shape.abstract_heap import AbstractHeap
from repro.shape.heap_set import HeapSet
from repro.core.interproc import AnalysisBudgetExceeded, Engine
from repro.core.strategy import (
    DemandStrategy,
    ExhaustiveStrategy,
    InterProcStrategy,
    backward_cone,
)


def choose_patterns(icfg: ICFG, proc: str) -> PatternSet:
    """The paper's §7 heuristic for the AU guard patterns of a procedure.

    ``P=`` always; ``P1`` with a loop or recursive call; ``P2`` with
    nesting or two and more recursive calls.  Spec formulas extend the
    choice (the paper lets the user propose patterns): ``sorted`` needs
    the order pattern ``P2``.
    """
    from repro.lang.cfg import OpAssert, OpAssume

    cfg = icfg.cfg(proc)
    loops = cfg.loop_count()
    rec = icfg.recursion_count(proc)
    names = ["P="]
    if loops >= 1 or rec >= 1:
        names.append("P1")
    if loops >= 2 or rec >= 2:
        names.append("P2")
    for edge in cfg.edges:
        if isinstance(edge.op, (OpAssert, OpAssume)):
            for atom in edge.op.formula.atoms:
                if atom.kind == "sorted":
                    names.extend(["P1", "P2"])
    return pattern_set(*names)


@dataclass
class Diagnostic:
    """A structured analysis problem surfaced instead of a traceback."""

    kind: str  # e.g. "record_iterations" | "entry_widenings" | "global_steps"
    message: str
    proc: Optional[str] = None
    record_key: Optional[Tuple] = None
    steps: Optional[int] = None
    limit: Optional[int] = None

    @staticmethod
    def from_budget(exc: AnalysisBudgetExceeded) -> "Diagnostic":
        return Diagnostic(
            kind=exc.kind,
            message=str(exc),
            proc=exc.proc,
            record_key=exc.record_key,
            steps=exc.steps,
            limit=exc.limit,
        )

    def __str__(self) -> str:
        where = f" in {self.proc}" if self.proc else ""
        return f"[{self.kind}{where}] {self.message}"


@dataclass
class AnalysisResult:
    """Summaries of one procedure in one domain.

    ``stats`` carries the engine's telemetry for the run (record,
    widening, step, scheduler and cache counters); ``diagnostics`` is
    non-empty when the analysis hit a budget and the summaries are
    partial (see :meth:`ok`).
    """

    proc: str
    domain_name: str  # "au" or "am"
    domain: object
    summaries: List[Tuple[AbstractHeap, HeapSet]]
    engine: Engine
    stats: Dict[str, object] = field(default_factory=dict)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def describe(self) -> str:
        lines = [f"== {self.proc} ({self.domain_name}) =="]
        for diag in self.diagnostics:
            lines.append(f"diagnostic: {diag}")
        for entry, summary in self.summaries:
            lines.append(f"entry: {entry.graph!r}")
            lines.append(summary.describe(self.domain))
        return "\n".join(lines)

    def exit_heaps(self) -> List[AbstractHeap]:
        out = []
        for _, summary in self.summaries:
            out.extend(summary)
        return out


class Analyzer:
    """Parses a program once; runs per-procedure analyses on demand.

    Every analyzer owns a :class:`SummaryCache` shared by all of its
    ``analyze`` calls, so repeated analyses of the same procedure in the
    same domain (benchmarks, equivalence checks, the AM pass that
    ``analyze_strengthened`` repeats) are dictionary lookups.  Pass
    ``engine_opts=EngineOptions(use_cache=False)`` to bypass it, or an
    ``EngineOptions(cache=...)`` to share a cache (possibly disk-backed)
    across analyzers.
    """

    def __init__(self, program, cache: Optional[SummaryCache] = None):
        self.program = program
        self.icfg = build_icfg(program)
        self.cache = cache if cache is not None else SummaryCache()

    @staticmethod
    def from_source(source: str, cache: Optional[SummaryCache] = None) -> "Analyzer":
        program = normalize_program(typecheck_program(parse_program(source)))
        return Analyzer(program, cache=cache)

    def make_domain(self, domain: str, proc: Optional[str] = None, patterns=None):
        if domain == "am":
            return MultisetDomain()
        if domain == "au":
            if patterns is None:
                patterns = (
                    choose_patterns(self.icfg, proc)
                    if proc is not None
                    else pattern_set("P=", "P1")
                )
            return UniversalDomain(patterns)
        raise ValueError(f"unknown domain {domain!r}")

    def analyze(
        self,
        proc: str,
        domain: str = "au",
        patterns=None,
        k: int = 0,
        strengthen_hook=None,
        assume_handler=None,
        max_steps: Optional[int] = None,
        max_seconds: Optional[float] = None,
        engine_opts: Optional[EngineOptions] = None,
        strategy: Optional[InterProcStrategy] = None,
    ) -> AnalysisResult:
        ldw = self.make_domain(domain, proc, patterns)
        if strengthen_hook is not None and hasattr(strengthen_hook, "au_domain"):
            strengthen_hook.au_domain = ldw
        opts = engine_opts if engine_opts is not None else EngineOptions()
        if opts.cache is None and opts.use_cache:
            opts = dataclasses.replace(opts, cache=self.cache)
        engine = Engine(
            self.icfg,
            ldw,
            k=k,
            strengthen_hook=strengthen_hook,
            assume_handler=assume_handler,
            max_steps=max_steps,
            max_seconds=max_seconds,
            opts=opts,
        )
        diagnostics: List[Diagnostic] = []
        try:
            engine.analyze(proc, strategy=strategy)
        except AnalysisBudgetExceeded as exc:
            diagnostics.append(Diagnostic.from_budget(exc))
        finally:
            engine.telemetry.close()
        stats = engine.stats()
        if strategy is not None:
            stats.update(strategy.stats())
        return AnalysisResult(
            proc=proc,
            domain_name=domain,
            domain=ldw,
            summaries=engine.summaries_of(proc),
            engine=engine,
            stats=stats,
            diagnostics=diagnostics,
        )

    def analyze_batch(
        self,
        procs: Optional[List[str]] = None,
        domains=("au",),
        jobs: int = 1,
        k: int = 0,
        max_steps: Optional[int] = None,
        max_seconds: Optional[float] = None,
        store_dir: Optional[str] = None,
        trace_dir: Optional[str] = None,
        trace_path: Optional[str] = None,
        on_outcome=None,
    ):
        """Analyze many procedures on a worker pool (one task per root and
        domain, sharded along call-graph SCCs — see :mod:`repro.parallel`).

        Returns a :class:`repro.parallel.batch.BatchReport` whose
        outcomes are in deterministic (shard, root, domain) order;
        ``jobs=0`` runs the same requests inline as a sequential
        baseline.  Summaries of a parallel run are identical to the
        corresponding ``analyze`` calls.
        """
        from repro.parallel.batch import plan_requests, run_batch

        requests = plan_requests(
            self,
            procs=procs,
            domains=domains,
            k=k,
            max_steps=max_steps,
            max_seconds=max_seconds,
            store_dir=store_dir,
            trace_dir=trace_dir,
        )
        return run_batch(
            requests, jobs=jobs, trace_path=trace_path, on_outcome=on_outcome
        )

    def open_session(
        self,
        store_dir: Optional[str] = None,
        jobs: int = 0,
        max_seconds: Optional[float] = None,
    ):
        """Open an incremental analysis session on this program.

        A session (:class:`repro.service.session.Session`) tracks the
        program's call-graph dependency structure; after
        ``session.update_source(edited)`` the next ``session.analyze()``
        re-analyzes only the dirty cone, answering clean roots from
        retained results and the cone-keyed persistent store
        (``store_dir``; a session-private temporary store when None).
        Warm results are hash-identical to a cold run by construction.
        """
        from repro.service.session import Session

        return Session(
            self.program,
            store_dir=store_dir,
            jobs=jobs,
            max_seconds=max_seconds,
        )

    def analyze_strengthened(
        self,
        proc: str,
        patterns=None,
        k: int = 0,
        assume_handler=None,
        max_steps: Optional[int] = None,
        engine_opts: Optional[EngineOptions] = None,
    ) -> AnalysisResult:
        """The paper's combined analysis (§6.2): AHS(AM) first, then
        AHS(AU) with strengthen_M applied at every procedure return."""
        am_result = self.analyze(
            proc, domain="am", max_steps=max_steps, engine_opts=engine_opts
        )
        hook = make_am_strengthen_hook(am_result.engine)
        result = self.analyze(
            proc,
            domain="au",
            patterns=patterns,
            k=k,
            strengthen_hook=hook,
            assume_handler=assume_handler,
            max_steps=max_steps,
            engine_opts=engine_opts,
        )
        result.am_result = am_result
        result.diagnostics = am_result.diagnostics + result.diagnostics
        return result


def make_am_strengthen_hook(am_engine: Engine):
    """Build the return-edge hook applying strengthen_M (paper eq. J).

    At a return being composed in the AU analysis, the matching AM summary
    (same callee, same entry backbone, same exit backbone) is renamed with
    the very same node/data maps and σ¹_M imports its multiset facts into
    the combined AU value.
    """
    from repro.core.combine import sigma_m_strengthen
    from repro.core.localheap import _rename_data_map

    am_domain = am_engine.domain

    from repro.datawords import terms as dw_terms

    def hook(callee, info, exit_heap, combined_value, node_rename, data_rename):
        if hook.au_domain is None:  # pragma: no cover - defensive
            return combined_value
        record = am_engine.record_for(callee, info.entry_heap)
        if record is None:
            return combined_value
        for am_exit in record.summary:
            if am_exit.graph.key() != exit_heap.graph.key():
                continue
            am_value = am_domain.rename_words(am_exit.value, node_rename)
            data_support = {
                t
                for t in am_value.support()
                if dw_terms.word_of(t) is None
            }
            data_map = {d: data_rename.get(d, f"$ret_{d}") for d in data_support}
            am_value = _rename_data_map(am_domain, am_value, data_map)
            return sigma_m_strengthen(hook.au_domain, combined_value, am_value)
        return combined_value

    hook.au_domain = None
    # The hook is a pure function of the AM engine's tabulated records,
    # which are themselves determined by (program, root proc, domain) --
    # all part of the summary-cache key -- so runs using it are cacheable.
    hook.cache_tag = "strengthen-am"
    return hook
