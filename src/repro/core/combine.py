"""Combining abstract domains (paper §5): σ reductions, strengthen, convert.

Two cooperating mechanisms are implemented:

1. **Direct partial reduction** (used inside the analysis, fast):

   - :func:`sigma_m_strengthen` -- σ¹_M: import facts from a multiset value
     into a universal value using the membership inference rules of Fig. 8
     (``mhd(n) ⊑ ...`` decompositions give facts about ``hd(n)``;
     ``mtl(n) ⊑ ...`` decompositions strengthen the ``∀y ∈ tl(n)`` clause);
   - :func:`sigma_m_from_universal` -- σ²_M: export head equalities;
   - :func:`convert_value` -- convert(P1, P2): re-express an AU value over a
     different pattern set by instantiating the old clauses at the new
     guards' positions (the reinterpretation engine's instantiation, with
     the identity recomposition);
   - :func:`strengthen` -- ``W ⊓ infer(W, W_aux)``.

2. **The traversal-program infer_W of Fig. 7** (:func:`infer_via_traversal`)
   -- an actual analysis of the two-cursor list-traversal program over the
   partially reduced product AHS(AU) × AHS(AW), with the σ operators applied
   at every unfolding step.  Used by the applications and benchmarks to
   validate the paper's mechanism; the direct reduction is its fast path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.datawords import terms as T
from repro.datawords.multiset import MultisetDomain, MultisetValue
from repro.datawords.patterns import GuardInstance, PatternSet
from repro.datawords.universal import UniversalDomain, UniversalValue
from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron

_AM = MultisetDomain()


def _facts_about(
    u: UniversalValue,
    domain: UniversalDomain,
    rhs_term: str,
    mult: int,
    target: str,
) -> Optional[Polyhedron]:
    """Facts about a value known to be a member of the multiset ``rhs_term``,
    expressed as constraints on the term ``target``.

    Returns None when nothing is known (top).
    """
    if T.is_mhd(rhs_term):
        w = T.word_of(rhs_term)
        src = T.hd(w)
        # membership in the singleton {hd(w)} is equality with hd(w) --
        # itself an E-term, so the fact stays relational.
        return u.E.meet_constraints(
            [Constraint.eq(LinExpr.var(target), LinExpr.var(src))]
        )
    if T.is_mtl(rhs_term):
        w = T.word_of(rhs_term)
        gi = GuardInstance("ALL1", (w,))
        body = u.clauses.get(gi)
        if body is None:
            return None
        y = gi.posvars()[0]
        elem = T.elem(w, y)
        # Rename the source clause's quantified position to a fresh name so
        # it cannot clash with a position variable inside ``target``.
        fresh_pos = "$q"
        fresh_elem = f"{w}[{fresh_pos}]"
        body = body.rename({elem: fresh_elem}).substitute(
            {y: LinExpr.var(fresh_pos)}
        )
        guard = gi.guard_poly().substitute({y: LinExpr.var(fresh_pos)})
        facts = body.meet(u.E).meet(guard).meet_constraints(
            [Constraint.eq(LinExpr.var(target), LinExpr.var(fresh_elem))]
        )
        out = facts.project([fresh_elem, fresh_pos])
        return None if out.is_top() else out
    # a data variable: membership in the singleton means equality
    return u.E.meet_constraints(
        [Constraint.eq(LinExpr.var(target), LinExpr.var(rhs_term))]
    )


def _membership_facts(
    u: UniversalValue,
    domain: UniversalDomain,
    m: MultisetValue,
    member_term: str,
    target: str,
) -> Optional[Polyhedron]:
    """Join, over the decompositions ``member ⊑ t1 ⊎ ... ⊎ tk`` derivable
    from the multiset value, of the disjunction of per-``tj`` facts.

    Implements step (M) of §5.2: each decomposition gives a disjunction
    (the member sits in one of the tj), and distinct decompositions can be
    intersected (all are valid simultaneously).
    """
    best: Optional[Polyhedron] = None
    for rhs in _AM.membership_decompositions(member_term, m):
        disjuncts: List[Polyhedron] = []
        hopeless = False
        for term, mult in rhs:
            facts = _facts_about(u, domain, term, mult, target)
            if facts is None:
                hopeless = True
                break
            disjuncts.append(facts)
        if hopeless or not disjuncts:
            continue
        joined = disjuncts[0]
        for d in disjuncts[1:]:
            joined = joined.join(d)
        if joined.is_top():
            continue
        best = joined if best is None else best.meet(joined)
    return best


def sigma_m_strengthen(
    domain: UniversalDomain, u: UniversalValue, m: MultisetValue
) -> UniversalValue:
    """σ¹_M: strengthen an AU value with a multiset value (Fig. 8)."""
    if u.is_bot or m.is_bot:
        return u
    words = sorted(set(u.words()) | {w for t in m.support() if (w := T.word_of(t))})
    out = u
    # Facts about heads.
    for w in words:
        facts = _membership_facts(out, domain, m, T.mhd(w), T.hd(w))
        if facts is not None:
            out = UniversalValue(out.E.meet(facts), out.clauses)
    # Facts about tails: strengthen the ALL1 clause bodies.
    if "ALL1" in domain.patterns:
        for w in words:
            gi = GuardInstance("ALL1", (w,))
            y = gi.posvars()[0]
            elem = T.elem(w, y)
            facts = _membership_facts(out, domain, m, T.mtl(w), elem)
            if facts is not None:
                out = domain.meet_clause(out, gi, facts)
    return out


def sigma_m_from_universal(
    domain: UniversalDomain, u: UniversalValue, m: MultisetValue
) -> MultisetValue:
    """σ²_M: export ``hd(n) = hd(n')`` equalities into the multiset value."""
    if u.is_bot or m.is_bot:
        return m
    out = m
    words = sorted(u.words())
    for i, a in enumerate(words):
        for b in words[i + 1 :]:
            eq = Constraint.eq(LinExpr.var(T.hd(a)), LinExpr.var(T.hd(b)))
            if u.E.entails(eq):
                out = _AM.meet_constraint(out, eq)
    return out


def convert_value(
    value: UniversalValue,
    source: UniversalDomain,
    target: UniversalDomain,
) -> UniversalValue:
    """convert(P1, P2): re-express over the target domain's pattern set.

    For every guard instance of the target set, the old clauses (and E)
    are instantiated at the new guard's positions; the instantiation engine
    is shared with split#/concat#.  Clauses whose pattern exists in both
    sets carry over directly.
    """
    from repro.datawords.reinterp import _instantiate_old_clauses, Anchor

    if value.is_bot:
        return target.bottom()
    words = sorted(value.words())
    clauses: Dict[GuardInstance, Polyhedron] = {}
    common = source.patterns & target.patterns
    for gi, body in value.clauses.items():
        if gi.pattern_name in common:
            clauses[gi] = body
    for gi in target.patterns.instances(words):
        if gi in clauses:
            continue  # carried over from a common pattern
        var_word = gi.var_word()
        anchors = [
            Anchor(var_word[v], LinExpr.var(v), T.elem(var_word[v], v))
            for v in gi.posvars()
        ]
        # Mirror anchors: the same symbolic positions inside every other
        # word, so equality clauses (EQ2 and friends) can chain the
        # derivation through the vocabulary (e.g. sorted(x) ∧ eq≈(y, x)
        # gives sorted(y)).  Applicability (membership in the other word's
        # bounds) is still checked by guard entailment.
        for v in gi.posvars():
            for w in words:
                if w != var_word[v]:
                    anchors.append(
                        Anchor(w, LinExpr.var(v), T.elem(w, v))
                    )
        context = value.E.meet(gi.guard_poly())
        if context.is_bottom():
            clauses[gi] = Polyhedron.bottom()
            continue
        enriched = _instantiate_old_clauses(value.clauses, anchors, context)
        allowed = set(value.E.support()) | set(gi.posvars()) | set(gi.elem_terms())
        body = enriched.restrict_to(allowed)
        body = target._prune_body(value.E, gi, body)
        if not body.is_top():
            clauses[gi] = body
    return UniversalValue(value.E, clauses)


def strengthen(
    domain: UniversalDomain,
    value: UniversalValue,
    aux_value,
    aux_domain,
) -> UniversalValue:
    """strengthen_W(W, W_aux) = W ⊓ infer_W(W, W_aux) (paper Def. 5.1)."""
    if isinstance(aux_domain, MultisetDomain):
        return sigma_m_strengthen(domain, value, aux_value)
    if isinstance(aux_domain, UniversalDomain):
        converted = convert_value(aux_value, aux_domain, domain)
        return domain.meet(value, converted)
    raise TypeError(f"cannot strengthen with {aux_domain!r}")


# ---------------------------------------------------------------------------
# The Fig. 7 traversal-program infer_W over the reduced product


def infer_via_traversal(
    domain: UniversalDomain,
    value: UniversalValue,
    aux_value,
    aux_domain,
    words: Optional[Sequence[str]] = None,
    max_iterations: int = 40,
) -> UniversalValue:
    """infer_W computed by analyzing the list-traversal program of Fig. 7.

    Builds the initial configuration (one node per chosen data-word
    variable, labeled by a stable anchor and a cursor), then runs the
    abstract execution of::

        while (z1 != NULL && z2 != NULL) { z1 = z1->next; z2 = z2->next; }
        while (z1 != NULL) { z1 = z1->next; }
        while (z2 != NULL) { z2 = z2->next; }

    over the partially reduced product AHS(AU) × AHS(AW): every cursor
    advance unfolds both components and applies σ_W.  The exit states
    (cursors at NULL, words folded back to single nodes) are joined and
    projected onto the original vocabulary.
    """
    from repro.core.product import ProductDomain
    from repro.core.transfer import Transfer
    from repro.lang.cfg import OpAssignPtr, OpAssumePtr
    from repro.shape.abstract_heap import AbstractHeap
    from repro.shape.graph import NULL, HeapGraph
    from repro.shape.heap_set import HeapSet

    if value.is_bot:
        return value
    chosen = list(words) if words is not None else sorted(value.words())[:2]
    if not chosen:
        return value
    product = ProductDomain(domain, aux_domain)
    transfer = Transfer(product, k=0)

    labels: Dict[str, str] = {}
    for w in chosen:
        labels[f"$anchor_{w}"] = w
        labels[f"$z_{w}"] = w
    graph = HeapGraph(chosen, {w: NULL for w in chosen}, labels)
    start = AbstractHeap(graph, (value, aux_value))
    state = HeapSet.single(product, start)

    cursors = [f"$z_{w}" for w in chosen]

    def advance_all(current: HeapSet, active: List[str]) -> HeapSet:
        """One lockstep advance of the active cursors (non-NULL branch)."""
        for z in active:
            current = current.map(
                product,
                lambda h, _z=z: transfer.post(
                    OpAssumePtr(_z, None, False), h
                ),
            )
        for z in active:
            current = current.map(
                product,
                lambda h, _z=z: transfer.post(OpAssignPtr(_z, "next", _z), h),
            )
        return current

    def loop(current: HeapSet, active: List[str]) -> HeapSet:
        """Fixpoint of the while loop advancing ``active`` cursors."""
        head = current
        for iteration in range(max_iterations):
            stepped = advance_all(head, active)
            if stepped.is_bottom():
                break
            joined = head.join(stepped, product)
            if iteration >= 3:
                joined = head.widen(joined, product)
            if joined.leq(head, product) and head.leq(joined, product):
                head = joined
                break
            head = joined
        # Exit: some active cursor is NULL.
        exits = HeapSet.bottom()
        for z in active:
            exited = head.map(
                product,
                lambda h, _z=z: transfer.post(OpAssumePtr(_z, None, True), h),
            )
            exits = exits.join(exited, product)
        return exits

    state = loop(state, cursors)
    for z in cursors:
        state = loop(state, [z])

    # Collect: all cursors NULL, each anchor chain folded to one node.
    result = domain.bottom()
    for heap in state:
        folded = heap.fold(product, 0)
        rename: Dict[str, str] = {}
        ok = True
        for w in chosen:
            anchor_node = folded.graph.node_of(f"$anchor_{w}")
            if anchor_node == NULL or folded.graph.succ.get(anchor_node) != NULL:
                ok = False
                break
            rename[anchor_node] = w
        if not ok:
            continue
        u_part = folded.value[0]
        u_part = domain.rename_words(u_part, rename)
        extra = [x for x in u_part.words() if x not in chosen and x not in set(value.words())]
        u_part = domain.project_words(u_part, extra)
        result = domain.join(result, u_part)
    if domain.is_bottom(result):
        return value
    return domain.meet(value, result)
