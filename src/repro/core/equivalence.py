"""Procedure equivalence checking (paper §6.4, Fig. 9).

Two procedures with the same signature are equivalent if, run on equal
inputs, they produce equal outputs.  Following the paper, the check builds
the two-copies driver program::

    assume equal(i1, i2);
    o1 = P1(i1);
    o2 = P2(i2);
    assert equal(o1, o2);

and verifies the final assertion under the inter-procedural analysis.  As
in the paper's reduction to formula (C), the assertion generally needs the
*combination* of domains: ``sorted(o1) ∧ sorted(o2) ∧ ms(o1) = ms(o2)``
entails ``equal(o1, o2)`` only through the multiset argument, which the
checker discharges with the lockstep strengthening of
:func:`equal_from_sorted_ms` (the σ_M head argument: the head of each list
is a member of the other's multiset, and sortedness bounds it both ways).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.datawords import terms as T
from repro.datawords.multiset import MultisetDomain, MultisetValue
from repro.datawords.patterns import GuardInstance, pattern_set
from repro.datawords.universal import UniversalDomain, UniversalValue
from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron
from repro.core.combine import sigma_m_from_universal, sigma_m_strengthen

_AM = MultisetDomain()


@dataclass
class EquivalenceResult:
    proc1: str
    proc2: str
    equivalent: bool  # verified equivalence (False = could not verify)
    detail: str = ""
    # Engine accounting aggregated over the underlying analyses (record /
    # cache counters); filled by check_equivalence.
    stats: Optional[dict] = None


def equal_from_sorted_ms(max_len: int = 0) -> bool:
    """The validity of the paper's formula (C) instance: two sorted lists
    with equal multisets are equal.  Discharged by :func:`check_formula_c`;
    kept as a named fact for the benchmarks."""
    return check_formula_c()


def check_formula_c(steps: int = 3) -> bool:
    """Check validity of formula (C) (paper p.3) by lockstep descent.

    Claim: ``sorted(o1) ∧ sorted(o2) ∧ ms(o1) = ms(o2) ⊨ eq≈(o1, o2)``.
    The proof our domains can express: at each step the two heads are each
    a member of the other's multiset, and sortedness bounds every member
    from below by the head, hence the heads are equal (σ_M, Fig. 8); then
    the head equality is exported (σ²_M) and the multiset equality of the
    tails follows linearly, so the argument repeats on the tails.  The
    implementation verifies the inductive step once on symbolic words.
    """
    domain = UniversalDomain(pattern_set("P=", "P1", "P2"))
    o1, o2 = "o1", "o2"
    value = domain.top()
    for w in (o1, o2):
        value = domain.meet_clause(
            value,
            GuardInstance("ORD2", (w,)),
            Polyhedron.of(
                Constraint.le(
                    LinExpr.var(T.elem(w, "y1")), LinExpr.var(T.elem(w, "y2"))
                )
            ),
        )
        value = domain.meet_clause(
            value,
            GuardInstance("ALL1", (w,)),
            Polyhedron.of(
                Constraint.le(LinExpr.var(T.hd(w)), LinExpr.var(T.elem(w, "y1")))
            ),
        )
    from fractions import Fraction

    ms = MultisetValue(
        [
            {
                T.mhd(o1): Fraction(1),
                T.mtl(o1): Fraction(1),
                T.mhd(o2): Fraction(-1),
                T.mtl(o2): Fraction(-1),
            }
        ]
    )
    # Step 1: heads are equal.
    strengthened = sigma_m_strengthen(domain, value, ms)
    heads_equal = strengthened.E.entails(
        Constraint.eq(LinExpr.var(T.hd(o1)), LinExpr.var(T.hd(o2)))
    )
    if not heads_equal:
        return False
    # Step 2: the head equality exports, making the tail multisets equal --
    # which re-establishes the premise on the tails (the inductive step).
    ms2 = sigma_m_from_universal(domain, strengthened, ms)
    tails_equal = _AM.entails_row(
        ms2,
        {T.mtl(o1): Fraction(1), T.mtl(o2): Fraction(-1)},
    )
    return tails_equal


def check_equivalence(
    analyzer,
    proc1: str,
    proc2: str,
    max_steps: int = 400_000,
    engine_opts=None,
) -> EquivalenceResult:
    """Sound equivalence check for two sorting-like procedures.

    Computes both procedures' AU and AM summaries, instantiates them on a
    shared input (``equal(i1, i2)``), and checks that the outputs are
    provably equal: either directly (the AU summaries relate output and
    input pointwise) or via the sorted+multiset argument of formula (C).

    The check analyzes each procedure in both domains and repeats the AM
    pass inside the strengthened analysis; the analyzer's summary cache
    collapses the repeats, and the resulting cache accounting is reported
    on ``EquivalenceResult.stats``.
    """

    def done(equivalent: bool, detail: str) -> EquivalenceResult:
        cache = getattr(analyzer, "cache", None)
        stats = {"cache": cache.stats()} if cache is not None else None
        return EquivalenceResult(proc1, proc2, equivalent, detail, stats=stats)

    su1 = _sort_summary(analyzer, proc1, max_steps, engine_opts)
    su2 = _sort_summary(analyzer, proc2, max_steps, engine_opts)
    if su1 is None or su2 is None:
        return done(False, "missing summaries")
    sorted1, preserves1 = su1
    sorted2, preserves2 = su2
    if not (preserves1 and preserves2):
        return done(False, "multiset preservation not derived")
    if not (sorted1 and sorted2):
        return done(False, "sortedness not derived")
    # equal(i1,i2) ∧ ms(i1)=ms(o1) ∧ ms(i2)=ms(o2) gives ms(o1)=ms(o2);
    # with sorted(o1) ∧ sorted(o2), formula (C) closes the argument.
    if check_formula_c():
        return done(True, "via formula (C)")
    return done(False, "formula (C) not derived")


def _sort_summary(
    analyzer, proc: str, max_steps: int, engine_opts=None
) -> Optional[Tuple[bool, bool]]:
    """(output sorted?, multiset preserved?) from the two analyses."""
    am = analyzer.analyze(
        proc, domain="am", max_steps=max_steps, engine_opts=engine_opts
    )
    if not am.ok:
        return None
    cfg = analyzer.icfg.cfg(proc)
    out_var = next(p.name for p in cfg.outputs if p.type == "list")
    in_var = next(p.name for p in cfg.inputs if p.type == "list")
    preserved = _check_ms_preserved(am, in_var, out_var)
    sorted_ok = _check_sorted_summary(analyzer, proc, out_var, max_steps, engine_opts)
    return (sorted_ok, preserved)


def _check_ms_preserved(am_result, in_var: str, out_var: str) -> bool:
    from fractions import Fraction
    from repro.shape.graph import NULL

    for entry, summary in am_result.summaries:
        for heap in summary:
            node_in0 = heap.graph.labels.get(T.entry_copy(in_var), NULL)
            node_out = heap.graph.labels.get(out_var, NULL)
            if node_in0 == NULL and node_out == NULL:
                continue
            if node_in0 == NULL or node_out == NULL:
                return False
            row = {
                T.mhd(node_in0): Fraction(1),
                T.mtl(node_in0): Fraction(1),
                T.mhd(node_out): Fraction(-1),
                T.mtl(node_out): Fraction(-1),
            }
            if not _AM.entails_row(heap.value, row):
                return False
    return True


def _check_sorted_summary(
    analyzer, proc: str, out_var: str, max_steps: int, engine_opts=None
) -> bool:
    """Does the AU (AM-strengthened) analysis derive a sorted output?"""
    from repro.core.assertions import _check_sorted
    from repro.shape.graph import NULL

    result = analyzer.analyze_strengthened(
        proc, max_steps=max_steps, engine_opts=engine_opts
    )
    found_any = False
    for entry, summary in result.summaries:
        for heap in summary:
            node = heap.graph.labels.get(out_var, NULL)
            if node == NULL:
                continue
            found_any = True
            if not _check_sorted(result.domain, heap.value, node):
                return False
    return found_any
