"""Pluggable inter-procedural analysis strategies.

The tabulating engine of :mod:`repro.core.interproc` decides *how* one
(procedure, entry configuration) record reaches its fixpoint; a strategy
decides *which* records a run is about.  The interface follows the
value-context formulation of Padhye–Khedker (VASCO) and the
same-level-valid-path framing of Reps–Horwitz–Sagiv (IFDS): a *value
context* here is a :class:`~repro.core.interproc.Record` — one procedure
paired with one canonical entry heap — and the three context-transfer
functions map onto existing engine pieces:

===============  ==========================================================
VASCO hook       this codebase
===============  ==========================================================
``callEntry``    :func:`repro.core.localheap.build_call_entry` (caller heap
                 restricted to the callee frame, cutpoint-checked)
``callExit``     :func:`repro.core.localheap.compose_return` (callee exit
                 heap re-attached into the caller frame)
``normalFlow``   :meth:`repro.core.transfer.Transfer.post` (intra-edge
                 abstract post)
===============  ==========================================================

Both strategies drive the very same tabulation
(:meth:`~repro.core.interproc.Engine.tabulate_root`), which makes their
summaries — and every checker verdict derived from them — bit-identical
by construction; the corpus-wide differential gate in
``tests/test_query.py`` holds them to that.

:class:`ExhaustiveStrategy`
    the paper's bottom-up summary tabulation: analyze a root from its
    most-general entries, creating callee records on demand.  This is
    what every pre-existing caller gets by default.

:class:`DemandStrategy`
    answers a single program-point query.  Before running it computes
    the *backward-relevant call cone* of the queried procedure over the
    ICFG — the call-graph closure that is the only part of the program a
    query's verdict can depend on (records are created on demand at call
    edges, so the top-down tabulation from the root's entries can never
    leave the cone) — and reuses cached whole-run summaries for
    everything else: a warm query is a cache restore, never a fixpoint.
    The cone is exposed for observability (``repro-lint --query``, the
    service ``check`` verb and ``BENCH_query.json`` all report cone size
    against whole-program procedure count).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.interproc import Engine, Record
    from repro.lang.cfg import ICFG


def backward_cone(icfg: "ICFG", proc: str) -> Tuple[str, ...]:
    """The backward-relevant call cone of a query in ``proc``: the
    call-graph closure of ``{proc}`` (the procedure plus its transitive
    callees), sorted for determinism.

    This is exactly the set of procedures whose records the top-down
    tabulation from ``proc``'s entries may create, hence the only
    procedures a per-point verdict inside ``proc`` can depend on.  A
    mutual-recursion SCC is wholly inside the cone of any of its
    members; procedures only *calling into* the cone are not (the
    checker analyzes every root from its most-general entries, which
    over-approximates all callers).
    """
    if proc not in icfg.cfgs:
        raise KeyError(f"unknown procedure {proc!r}")
    graph = icfg.call_graph()
    seen = {proc}
    stack = [proc]
    while stack:
        current = stack.pop()
        for callee in graph.get(current, ()):
            if callee not in seen:
                seen.add(callee)
                stack.append(callee)
    return tuple(sorted(seen))


class InterProcStrategy:
    """How a run maps a root procedure onto tabulated records."""

    name = "abstract"

    def run(self, engine: "Engine", proc: str) -> List["Record"]:
        raise NotImplementedError

    def stats(self) -> dict:
        """Strategy-specific accounting merged into the run stats."""
        return {"strategy": self.name}


class ExhaustiveStrategy(InterProcStrategy):
    """The bottom-up summary tabulator (paper §4), unchanged semantics:
    analyze the root from its most-general entry configurations; callee
    records come into existence on demand at call edges and the SCC
    scheduler drives the condensation bottom-up."""

    name = "exhaustive"

    def run(self, engine: "Engine", proc: str) -> List["Record"]:
        return engine.tabulate_root(proc)


class DemandStrategy(InterProcStrategy):
    """Scope a run to one query's backward-relevant call cone.

    ``target`` defaults to the analyzed root.  After :meth:`run`,
    ``cone`` holds the cone members and ``proc_count`` the
    whole-program procedure count — the demand-vs-exhaustive work ratio
    every query surface reports.  The tabulation itself is shared with
    :class:`ExhaustiveStrategy` (same entries, same scheduler, same
    widening points), so demand answers match exhaustive answers
    bit-for-bit; the saving is that *only* the cone is ever analyzed
    (one root instead of every procedure in the program) and that warm
    queries restore the root's cached run — including per-point state
    tables under ``EngineOptions.point_states`` — without running any
    fixpoint.
    """

    name = "demand"

    def __init__(self, target: Optional[str] = None):
        self.target = target
        self.cone: Tuple[str, ...] = ()
        self.proc_count = 0
        self.from_cache = False

    def run(self, engine: "Engine", proc: str) -> List["Record"]:
        target = self.target or proc
        if target != proc:
            raise ValueError(
                f"demand strategy targets {target!r} but was run on {proc!r}"
            )
        self.cone = backward_cone(engine.icfg, target)
        self.proc_count = len(engine.icfg.cfgs)
        engine.telemetry.count("demand.queries")
        engine.telemetry.event(
            "demand.cone",
            proc=target,
            cone=len(self.cone),
            procs=self.proc_count,
        )
        records = engine.tabulate_root(target)
        self.from_cache = engine.from_cache
        # The tabulation can only have created records inside the cone;
        # anything else would be a cone-computation bug worth failing
        # loudly on (the differential gate relies on this invariant).
        outside = {r.proc for r in engine.records.values()} - set(self.cone)
        if outside:
            raise AssertionError(
                f"demand analysis of {target!r} left its backward cone: "
                f"{sorted(outside)}"
            )
        return records

    def stats(self) -> dict:
        return {
            "strategy": self.name,
            "cone_size": len(self.cone),
            "proc_count": self.proc_count,
            "cone": list(self.cone),
            "from_cache": self.from_cache,
        }
