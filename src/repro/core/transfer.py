"""Abstract post# for the primitive statements (paper §4).

Each transformer maps one abstract heap to a list of abstract heaps
(materialization may case-split); the heap-set layer renormalizes.  All
transformers end with garbage collection and folding back to the k-bound,
as in CINV's eager-fold discipline.

Dereference of a possibly-NULL pointer drops the NULL branch (the concrete
execution would fault there; the analysis computes properties of non-
faulting runs, like the paper's tool).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.datawords import terms as T
from repro.datawords.base import LDWDomain
from repro.lang import ast as A
from repro.lang.cfg import (
    OpAssert,
    OpAssignData,
    OpAssignPtr,
    OpAssume,
    OpAssumeData,
    OpAssumePtr,
    OpSkip,
    OpStoreData,
    OpStoreNext,
)
from repro.numeric.linexpr import Constraint, LinExpr
from repro.shape.abstract_heap import AbstractHeap, split_word
from repro.shape.graph import NULL, HeapGraph


class NullDereference(Exception):
    """Raised internally; transformers convert it to an empty result."""


def _advance(domain: LDWDomain, value, pred, word, tail, all_words):
    """Call the domain's fused advance, passing the vocabulary if supported."""
    try:
        return domain.advance(value, pred, word, tail, all_words=all_words)
    except TypeError:
        return domain.advance(value, pred, word, tail)


def data_expr_to_linexpr(expr: A.Expr, graph: HeapGraph) -> LinExpr:
    """Translate an affine LISL data expression to terms.

    ``q->data`` becomes ``hd(node_of(q))``; NULL dereference raises.
    """
    if isinstance(expr, A.IntLit):
        return LinExpr.const_expr(expr.value)
    if isinstance(expr, A.Var):
        return LinExpr.var(expr.name)
    if isinstance(expr, A.DataOf):
        node = graph.node_of(expr.base.name)
        if node == NULL:
            raise NullDereference(expr.base.name)
        return LinExpr.var(T.hd(node))
    if isinstance(expr, A.BinOp):
        left = data_expr_to_linexpr(expr.left, graph)
        right = data_expr_to_linexpr(expr.right, graph)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            if left.is_const():
                return right.scale(left.const)
            return left.scale(right.const)
    raise ValueError(f"not an affine data expression: {expr!r}")


class Transfer:
    """post# over abstract heaps, parameterized by the LDW domain and k."""

    def __init__(self, domain: LDWDomain, k: int = 0):
        self.domain = domain
        self.k = k

    # -- shared helpers ------------------------------------------------------------

    def _finish(self, heap: AbstractHeap) -> List[AbstractHeap]:
        heap = heap.gc(self.domain)
        heap = heap.fold(self.domain, self.k)
        if heap.is_bottom(self.domain):
            return []
        return [heap.canonicalize(self.domain)]

    def materialize_next(self, heap: AbstractHeap, var: str) -> List[AbstractHeap]:
        """Expose the successor cell of ``var``'s cell: after this, the
        node labeled by ``var`` has a word of length exactly 1, so its
        graph successor is the concrete ``var->next``.

        Returns 0-2 heaps (len == 1 case and len > 1 split case).
        """
        domain = self.domain
        node = heap.graph.node_of(var)
        if node == NULL:
            return []
        results: List[AbstractHeap] = []
        # Case len == 1: the successor is already var->next.
        value1 = domain.restrict_len1(heap.value, node)
        if not domain.is_bottom(value1):
            results.append(AbstractHeap(heap.graph, value1))
        # Case len > 1: split off the tail as a fresh node.
        tail = heap.graph.fresh_node_name()
        value2 = split_word(
            domain, heap.value, node, tail, heap.graph.word_nodes() + [tail]
        )
        if not domain.is_bottom(value2):
            old_succ = heap.graph.succ.get(node)
            graph = heap.graph.with_node(tail, old_succ).with_succ(node, tail)
            results.append(AbstractHeap(graph, value2))
        return results

    # -- dispatcher -----------------------------------------------------------------

    def post(self, op, heap: AbstractHeap) -> List[AbstractHeap]:
        if isinstance(op, OpSkip):
            return [heap]
        if isinstance(op, OpAssignPtr):
            return self.post_assign_ptr(op, heap)
        if isinstance(op, OpStoreNext):
            return self.post_store_next(op, heap)
        if isinstance(op, OpStoreData):
            return self.post_store_data(op, heap)
        if isinstance(op, OpAssignData):
            return self.post_assign_data(op, heap)
        if isinstance(op, OpAssumePtr):
            return self.post_assume_ptr(op, heap)
        if isinstance(op, OpAssumeData):
            return self.post_assume_data(op, heap)
        raise ValueError(f"no transformer for {op!r}")

    # -- pointer assignment -------------------------------------------------------------

    def post_assign_ptr(self, op: OpAssignPtr, heap: AbstractHeap) -> List[AbstractHeap]:
        domain = self.domain
        if op.kind == "null":
            graph = heap.graph.with_label(op.target, NULL)
            return self._finish(AbstractHeap(graph, heap.value))
        if op.kind == "var":
            node = heap.graph.node_of(op.source)
            graph = heap.graph.with_label(op.target, node)
            return self._finish(AbstractHeap(graph, heap.value))
        if op.kind == "new":
            fresh = heap.graph.fresh_node_name()
            graph = heap.graph.with_node(fresh, NULL).with_label(op.target, fresh)
            value = domain.add_singleton_word(heap.value, fresh)
            return self._finish(AbstractHeap(graph, value))
        # op.kind == "next": materialize, then retarget the label.
        results: List[AbstractHeap] = []
        # Case len == 1 (the successor cell is already exposed).
        node = heap.graph.node_of(op.source)
        if node == NULL:
            return []
        value1 = domain.restrict_len1(heap.value, node)
        if not domain.is_bottom(value1):
            succ = heap.graph.succ.get(node)
            if succ is not None:
                graph = heap.graph.with_label(op.target, succ)
                results.extend(self._finish(AbstractHeap(graph, value1)))
        # Case len > 1: if the head cell would immediately be folded into
        # its unique predecessor (the cursor-advance idiom), use the fused
        # recomposition; otherwise split off the tail as usual.
        remaining_labels = [
            v for v in heap.graph.vars_of(node) if v != op.target
        ]
        preds = heap.graph.preds(node)
        tail = heap.graph.fresh_node_name()
        if not remaining_labels and len(preds) == 1 and preds[0] != node:
            pred = preds[0]
            value2 = _advance(
                domain,
                heap.value,
                pred,
                node,
                tail,
                heap.graph.word_nodes() + [tail],
            )
            if not domain.is_bottom(value2):
                old_succ = heap.graph.succ.get(node)
                graph = (
                    heap.graph.with_node(tail, old_succ)
                    .with_label(op.target, tail)
                    .without_nodes([node])
                    .with_succ(pred, tail)
                )
                results.extend(self._finish(AbstractHeap(graph, value2)))
            return results
        value2 = split_word(
            domain, heap.value, node, tail, heap.graph.word_nodes() + [tail]
        )
        if not domain.is_bottom(value2):
            old_succ = heap.graph.succ.get(node)
            graph = (
                heap.graph.with_node(tail, old_succ)
                .with_succ(node, tail)
                .with_label(op.target, tail)
            )
            results.extend(self._finish(AbstractHeap(graph, value2)))
        return results

    # -- heap writes ----------------------------------------------------------------------

    def post_store_next(self, op: OpStoreNext, heap: AbstractHeap) -> List[AbstractHeap]:
        results: List[AbstractHeap] = []
        for mat in self.materialize_next(heap, op.target):
            node = mat.graph.node_of(op.target)
            target = NULL if op.source is None else mat.graph.node_of(op.source)
            if target == node:
                continue  # would build a self-loop; outside the fragment
            graph = mat.graph.with_succ(node, target)
            results.extend(self._finish(AbstractHeap(graph, mat.value)))
        return results

    def post_store_data(self, op: OpStoreData, heap: AbstractHeap) -> List[AbstractHeap]:
        node = heap.graph.node_of(op.target)
        if node == NULL:
            return []
        try:
            expr = data_expr_to_linexpr(op.expr, heap.graph)
        except NullDereference:
            return []
        value = self.domain.assign_hd(heap.value, node, expr)
        return self._finish(AbstractHeap(heap.graph, value))

    # -- data assignment ---------------------------------------------------------------------

    def post_assign_data(self, op: OpAssignData, heap: AbstractHeap) -> List[AbstractHeap]:
        try:
            expr = data_expr_to_linexpr(op.expr, heap.graph)
        except NullDereference:
            return []
        value = self.domain.assign_data(heap.value, op.target, expr)
        return self._finish(AbstractHeap(heap.graph, value))

    # -- conditions ------------------------------------------------------------------------------

    def post_assume_ptr(self, op: OpAssumePtr, heap: AbstractHeap) -> List[AbstractHeap]:
        left = heap.graph.node_of(op.left)
        right = NULL if op.right is None else heap.graph.node_of(op.right)
        # Distinct backbone nodes denote disjoint segments, so equality of
        # pointers is equality of nodes: the test is exact.
        if (left == right) == op.equal:
            return [heap]
        return []

    def post_assume_data(self, op: OpAssumeData, heap: AbstractHeap) -> List[AbstractHeap]:
        try:
            left = data_expr_to_linexpr(op.left, heap.graph)
            right = data_expr_to_linexpr(op.right, heap.graph)
        except NullDereference:
            return []
        if op.op == "==":
            constraint = Constraint.eq(left, right)
        elif op.op == "<":
            constraint = Constraint.lt_int(left, right)
        elif op.op == "<=":
            constraint = Constraint.le(left, right)
        elif op.op == ">":
            constraint = Constraint.gt_int(left, right)
        elif op.op == ">=":
            constraint = Constraint.ge(left, right)
        else:
            raise ValueError(f"bad data comparison {op.op!r}")
        value = self.domain.meet_constraint(heap.value, constraint)
        if self.domain.is_bottom(value):
            return []
        return [AbstractHeap(heap.graph, value)]
