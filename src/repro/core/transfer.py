"""Abstract post# for the primitive statements (paper §4).

Each transformer maps one abstract heap to a list of abstract heaps
(materialization may case-split); the heap-set layer renormalizes.  All
transformers end with garbage collection and folding back to the k-bound,
as in CINV's eager-fold discipline.

Dereference of a possibly-NULL pointer drops the NULL branch (the concrete
execution would fault there; the analysis computes properties of non-
faulting runs, like the paper's tool).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.datawords import terms as T
from repro.datawords.base import LDWDomain
from repro.lang import ast as A
from repro.lang.cfg import (
    OpAssert,
    OpAssignData,
    OpAssignPtr,
    OpAssume,
    OpAssumeData,
    OpAssumePtr,
    OpSkip,
    OpStoreData,
    OpStoreNext,
    OpStorePrev,
)
from repro.core.localheap import CutpointError
from repro.numeric.linexpr import Constraint, LinExpr
from repro.shape.abstract_heap import AbstractHeap, split_word
from repro.shape.graph import NULL, HeapGraph


class NullDereference(Exception):
    """Raised internally; transformers convert it to an empty result."""


class PrevUnknownError(CutpointError):
    """A ``prev`` read the DLL attributes cannot resolve.

    Subclassing :class:`CutpointError` routes it through the existing
    degradation paths: the checker reports ``unknown`` instead of
    guessing, the fuzz oracle counts a skip, termination declines.
    """


def _advance(domain: LDWDomain, value, pred, word, tail, all_words):
    """Call the domain's fused advance, passing the vocabulary if supported."""
    try:
        return domain.advance(value, pred, word, tail, all_words=all_words)
    except TypeError:
        return domain.advance(value, pred, word, tail)


def data_expr_to_linexpr(expr: A.Expr, graph: HeapGraph) -> LinExpr:
    """Translate an affine LISL data expression to terms.

    ``q->data`` becomes ``hd(node_of(q))``; NULL dereference raises.
    """
    if isinstance(expr, A.IntLit):
        return LinExpr.const_expr(expr.value)
    if isinstance(expr, A.Var):
        return LinExpr.var(expr.name)
    if isinstance(expr, A.DataOf):
        node = graph.node_of(expr.base.name)
        if node == NULL:
            raise NullDereference(expr.base.name)
        return LinExpr.var(T.hd(node))
    if isinstance(expr, A.BinOp):
        left = data_expr_to_linexpr(expr.left, graph)
        right = data_expr_to_linexpr(expr.right, graph)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            if left.is_const():
                return right.scale(left.const)
            return left.scale(right.const)
    raise ValueError(f"not an affine data expression: {expr!r}")


class Transfer:
    """post# over abstract heaps, parameterized by the LDW domain and k.

    ``dll=True`` (set by the engine when the program touches ``prev``)
    switches on maintenance of the DLL attributes; prev-free programs
    keep attribute-free graphs and the transformers below behave exactly
    as the singly-linked seed code did.
    """

    def __init__(self, domain: LDWDomain, k: int = 0, dll: bool = False):
        self.domain = domain
        self.k = k
        self.dll = dll

    # -- shared helpers ------------------------------------------------------------

    def _finish(self, heap: AbstractHeap) -> List[AbstractHeap]:
        heap = heap.gc(self.domain)
        heap = heap.fold(self.domain, self.k)
        if heap.is_bottom(self.domain):
            return []
        return [heap.canonicalize(self.domain)]

    def _entails_len1(self, value, node: str) -> bool:
        """Does the value entail ``len(node) == 1``?

        AU answers through its length polyhedron; AM has no length terms,
        but emptiness of the tail multiset ``mtl(node)`` is the same fact.
        """
        domain = self.domain
        try:
            if domain.entails_constraint(
                value, Constraint.eq(LinExpr.var(T.length(node)), 1)
            ):
                return True
        except Exception:
            pass
        try:
            return domain.entails_constraint(
                value, Constraint.eq(LinExpr.var(T.mtl(node)), 0)
            )
        except Exception:
            return False

    def _mark_len1(self, graph: HeapGraph, node: str) -> HeapGraph:
        """Record that ``node`` is a known singleton (vacuously interior-
        back-linked), so folds can keep DLL facts through the segment."""
        if not self.dll or node in graph.dllseg:
            return graph
        return graph.with_dll_attrs(dllseg=graph.dllseg | {node})

    def _split_attr_fixup(
        self, graph: HeapGraph, orig: HeapGraph, node: str, tail: str
    ) -> HeapGraph:
        """DLL attributes after split(node -> node·tail).

        first(node) is unchanged so every prevof fact survives verbatim;
        node is now a singleton; node's old boundary link moves to tail;
        the fresh node->tail boundary was an interior link of node.
        """
        if not self.dll:
            return graph
        dllseg = set(graph.dllseg)
        backlink = set(graph.backlink)
        backlink.discard(node)
        if node in orig.backlink:
            backlink.add(tail)
        if node in orig.dllseg:
            dllseg.add(tail)
            backlink.add(node)
        dllseg.add(node)  # len == 1 after the split
        return graph.with_dll_attrs(dllseg=dllseg, backlink=backlink)

    def materialize_next(self, heap: AbstractHeap, var: str) -> List[AbstractHeap]:
        """Expose the successor cell of ``var``'s cell: after this, the
        node labeled by ``var`` has a word of length exactly 1, so its
        graph successor is the concrete ``var->next``.

        Returns 0-2 heaps (len == 1 case and len > 1 split case).
        """
        domain = self.domain
        node = heap.graph.node_of(var)
        if node == NULL:
            return []
        results: List[AbstractHeap] = []
        # Case len == 1: the successor is already var->next.
        value1 = domain.restrict_len1(heap.value, node)
        if not domain.is_bottom(value1):
            results.append(
                AbstractHeap(self._mark_len1(heap.graph, node), value1)
            )
        # Case len > 1: split off the tail as a fresh node.
        tail = heap.graph.fresh_node_name()
        value2 = split_word(
            domain, heap.value, node, tail, heap.graph.word_nodes() + [tail]
        )
        if not domain.is_bottom(value2):
            old_succ = heap.graph.succ.get(node)
            graph = heap.graph.with_node(tail, old_succ).with_succ(node, tail)
            graph = self._split_attr_fixup(graph, heap.graph, node, tail)
            results.append(AbstractHeap(graph, value2))
        return results

    # -- dispatcher -----------------------------------------------------------------

    def post(self, op, heap: AbstractHeap) -> List[AbstractHeap]:
        if isinstance(op, OpSkip):
            return [heap]
        if isinstance(op, OpAssignPtr):
            return self.post_assign_ptr(op, heap)
        if isinstance(op, OpStoreNext):
            return self.post_store_next(op, heap)
        if isinstance(op, OpStorePrev):
            return self.post_store_prev(op, heap)
        if isinstance(op, OpStoreData):
            return self.post_store_data(op, heap)
        if isinstance(op, OpAssignData):
            return self.post_assign_data(op, heap)
        if isinstance(op, OpAssumePtr):
            return self.post_assume_ptr(op, heap)
        if isinstance(op, OpAssumeData):
            return self.post_assume_data(op, heap)
        raise ValueError(f"no transformer for {op!r}")

    # -- pointer assignment -------------------------------------------------------------

    def post_assign_ptr(self, op: OpAssignPtr, heap: AbstractHeap) -> List[AbstractHeap]:
        domain = self.domain
        if op.kind == "null":
            graph = heap.graph.with_label(op.target, NULL)
            return self._finish(AbstractHeap(graph, heap.value))
        if op.kind == "var":
            node = heap.graph.node_of(op.source)
            graph = heap.graph.with_label(op.target, node)
            return self._finish(AbstractHeap(graph, heap.value))
        if op.kind == "new":
            fresh = heap.graph.fresh_node_name()
            graph = heap.graph.with_node(fresh, NULL).with_label(op.target, fresh)
            if self.dll:
                # A fresh cell has prev == NULL and is a singleton.
                graph = graph.with_dll_attrs(
                    prevof={**graph.prevof, fresh: NULL},
                    dllseg=graph.dllseg | {fresh},
                )
            value = domain.add_singleton_word(heap.value, fresh)
            return self._finish(AbstractHeap(graph, value))
        if op.kind == "prev":
            return self.post_assign_prev(op, heap)
        # op.kind == "next": materialize, then retarget the label.
        results: List[AbstractHeap] = []
        # Case len == 1 (the successor cell is already exposed).
        node = heap.graph.node_of(op.source)
        if node == NULL:
            return []
        value1 = domain.restrict_len1(heap.value, node)
        if not domain.is_bottom(value1):
            succ = heap.graph.succ.get(node)
            if succ is not None:
                graph = self._mark_len1(
                    heap.graph.with_label(op.target, succ), node
                )
                results.extend(self._finish(AbstractHeap(graph, value1)))
        # Case len > 1: if the head cell would immediately be folded into
        # its unique predecessor (the cursor-advance idiom), use the fused
        # recomposition; otherwise split off the tail as usual.
        remaining_labels = [
            v for v in heap.graph.vars_of(node) if v != op.target
        ]
        preds = heap.graph.preds(node)
        tail = heap.graph.fresh_node_name()
        if not remaining_labels and len(preds) == 1 and preds[0] != node:
            pred = preds[0]
            value2 = _advance(
                domain,
                heap.value,
                pred,
                node,
                tail,
                heap.graph.word_nodes() + [tail],
            )
            if not domain.is_bottom(value2):
                old_succ = heap.graph.succ.get(node)
                graph = (
                    heap.graph.with_node(tail, old_succ)
                    .with_label(op.target, tail)
                    .without_nodes([node])
                    .with_succ(pred, tail)
                )
                if self.dll:
                    # Fused split+merge: the head of node became the last
                    # cell of pred, node's tail the fresh node.
                    orig = heap.graph
                    dllseg = set(graph.dllseg)
                    backlink = set(graph.backlink)
                    if node in orig.dllseg:
                        dllseg.add(tail)
                        backlink.add(pred)
                    if node in orig.backlink:
                        backlink.add(tail)
                    if not (pred in orig.dllseg and pred in orig.backlink):
                        dllseg.discard(pred)
                    graph = graph.with_dll_attrs(dllseg=dllseg, backlink=backlink)
                results.extend(self._finish(AbstractHeap(graph, value2)))
            return results
        value2 = split_word(
            domain, heap.value, node, tail, heap.graph.word_nodes() + [tail]
        )
        if not domain.is_bottom(value2):
            old_succ = heap.graph.succ.get(node)
            graph = (
                heap.graph.with_node(tail, old_succ)
                .with_succ(node, tail)
                .with_label(op.target, tail)
            )
            graph = self._split_attr_fixup(graph, heap.graph, node, tail)
            results.extend(self._finish(AbstractHeap(graph, value2)))
        return results

    # -- heap writes ----------------------------------------------------------------------

    def post_store_next(self, op: OpStoreNext, heap: AbstractHeap) -> List[AbstractHeap]:
        results: List[AbstractHeap] = []
        for mat in self.materialize_next(heap, op.target):
            node = mat.graph.node_of(op.target)
            target = NULL if op.source is None else mat.graph.node_of(op.source)
            if target == node:
                continue  # would build a self-loop; outside the fragment
            graph = mat.graph.with_succ(node, target)
            if self.dll:
                old_succ = mat.graph.succ.get(node)
                prevof = dict(graph.prevof)
                backlink = set(graph.backlink)
                if node in backlink:
                    backlink.discard(node)
                    if old_succ not in (None, NULL):
                        # The detached successor still has prev == node
                        # (node is a singleton after materialization).
                        prevof[old_succ] = node
                if target != NULL and prevof.get(target) == node:
                    # The explicit back-pointer now matches the new edge.
                    del prevof[target]
                    backlink.add(node)
                graph = graph.with_dll_attrs(prevof=prevof, backlink=backlink)
            results.extend(self._finish(AbstractHeap(graph, mat.value)))
        return results

    def post_store_prev(self, op: OpStorePrev, heap: AbstractHeap) -> List[AbstractHeap]:
        """``p->prev = q`` writes the first cell of p's segment, so no
        materialization is needed; only the DLL attributes move."""
        graph = heap.graph
        node = graph.node_of(op.target)
        if node == NULL:
            return []
        target = NULL if op.source is None else graph.node_of(op.source)
        prevof = dict(graph.prevof)
        backlink = set(graph.backlink)
        prevof.pop(node, None)
        for p in list(backlink):
            if graph.succ.get(p) == node:
                # Those boundary facts described the overwritten field.
                backlink.discard(p)
        if (
            target != NULL
            and graph.succ.get(target) == node
            and self._entails_len1(heap.value, target)
        ):
            # The store re-establishes the boundary invariant exactly.
            backlink.add(target)
        else:
            prevof[node] = target
        new_graph = graph.with_dll_attrs(prevof=prevof, backlink=backlink)
        return self._finish(AbstractHeap(new_graph, heap.value))

    def post_assign_prev(self, op: OpAssignPtr, heap: AbstractHeap) -> List[AbstractHeap]:
        """``y = x->prev``: resolve through an explicit head back-pointer
        or materialize the last cell of the back-linked predecessor."""
        domain = self.domain
        graph = heap.graph
        node = graph.node_of(op.source)
        if node == NULL:
            return []
        if node in graph.prevof:
            new_graph = graph.with_label(op.target, graph.prevof[node])
            return self._finish(AbstractHeap(new_graph, heap.value))
        preds = [p for p in graph.backlink if graph.succ.get(p) == node]
        if len(preds) == 1:
            p = preds[0]
            results: List[AbstractHeap] = []
            # Case len(p) == 1: p's cell is the prev cell itself.
            value1 = domain.restrict_len1(heap.value, p)
            if not domain.is_bottom(value1):
                g1 = self._mark_len1(graph.with_label(op.target, p), p)
                results.extend(self._finish(AbstractHeap(g1, value1)))
            # Case len(p) > 1: split the last cell off from the right.
            last = graph.fresh_node_name()
            value2 = domain.split_last(heap.value, p, last)
            if not domain.is_bottom(value2):
                g2 = (
                    graph.with_node(last, node)
                    .with_succ(p, last)
                    .with_label(op.target, last)
                )
                dllseg = set(g2.dllseg)
                backlink = set(g2.backlink)
                backlink.discard(p)
                backlink.add(last)  # last->node keeps the boundary fact
                if p in graph.dllseg:
                    backlink.add(p)  # p->last was an interior link of p
                dllseg.add(last)
                g2 = g2.with_dll_attrs(dllseg=dllseg, backlink=backlink)
                results.extend(self._finish(AbstractHeap(g2, value2)))
            return results
        raise PrevUnknownError(
            f"cannot resolve {op.source}->prev: no back-link fact for {node}"
        )

    def post_store_data(self, op: OpStoreData, heap: AbstractHeap) -> List[AbstractHeap]:
        node = heap.graph.node_of(op.target)
        if node == NULL:
            return []
        try:
            expr = data_expr_to_linexpr(op.expr, heap.graph)
        except NullDereference:
            return []
        value = self.domain.assign_hd(heap.value, node, expr)
        return self._finish(AbstractHeap(heap.graph, value))

    # -- data assignment ---------------------------------------------------------------------

    def post_assign_data(self, op: OpAssignData, heap: AbstractHeap) -> List[AbstractHeap]:
        try:
            expr = data_expr_to_linexpr(op.expr, heap.graph)
        except NullDereference:
            return []
        value = self.domain.assign_data(heap.value, op.target, expr)
        return self._finish(AbstractHeap(heap.graph, value))

    # -- conditions ------------------------------------------------------------------------------

    def post_assume_ptr(self, op: OpAssumePtr, heap: AbstractHeap) -> List[AbstractHeap]:
        left = heap.graph.node_of(op.left)
        right = NULL if op.right is None else heap.graph.node_of(op.right)
        # Distinct backbone nodes denote disjoint segments, so equality of
        # pointers is equality of nodes: the test is exact.
        if (left == right) == op.equal:
            return [heap]
        return []

    def post_assume_data(self, op: OpAssumeData, heap: AbstractHeap) -> List[AbstractHeap]:
        try:
            left = data_expr_to_linexpr(op.left, heap.graph)
            right = data_expr_to_linexpr(op.right, heap.graph)
        except NullDereference:
            return []
        if op.op == "==":
            constraint = Constraint.eq(left, right)
        elif op.op == "<":
            constraint = Constraint.lt_int(left, right)
        elif op.op == "<=":
            constraint = Constraint.le(left, right)
        elif op.op == ">":
            constraint = Constraint.gt_int(left, right)
        elif op.op == ">=":
            constraint = Constraint.ge(left, right)
        else:
            raise ValueError(f"bad data comparison {op.op!r}")
        value = self.domain.meet_constraint(heap.value, constraint)
        if self.domain.is_bottom(value):
            return []
        return [AbstractHeap(heap.graph, value)]
