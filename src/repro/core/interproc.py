"""The tabulating inter-procedural fixpoint engine (paper §4).

For each procedure and each *entry configuration* (an abstract heap over
the formals plus their ``$0`` snapshot) the engine keeps a record with the
per-node heap sets of the intra-procedural fixpoint and the summary (the
restricted exit heap set).  Call edges look summaries up (creating and
enqueueing records on demand) and register dependencies; when a summary
grows, its dependents are re-analyzed.

Widening is applied at intra-procedural loop heads and, for recursive
procedures, at the entry (the tabulated entry configuration is widened
when a new call brings a larger one) and at the exit (summaries are
widened instead of joined), exactly the three widening points of §4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.datawords.base import LDWDomain
from repro.lang import ast as A
from repro.lang.cfg import CFG, ICFG, OpAssert, OpAssume, OpCall
from repro.shape.abstract_heap import AbstractHeap
from repro.shape.graph import NULL, HeapGraph
from repro.shape.heap_set import HeapSet
from repro.core.localheap import (
    CallInfo,
    CutpointError,
    build_call_entry,
    compose_return,
    restrict_summary_exit,
)
from repro.core.transfer import Transfer


class AnalysisBudgetExceeded(Exception):
    pass


RecordKey = Tuple[str, Tuple]


@dataclass
class Record:
    """One tabulated (procedure, entry configuration) pair."""

    proc: str
    entry: AbstractHeap
    states: Dict[int, HeapSet] = field(default_factory=dict)
    summary: HeapSet = field(default_factory=HeapSet.bottom)
    dependents: Set[RecordKey] = field(default_factory=set)
    iterations: int = 0


# A hook called when composing a return:
#   hook(callee_name, call_info, exit_heap, combined_value,
#        node_rename, data_rename) -> value
StrengthenHook = Callable[..., object]


class Engine:
    """Runs the analysis of a whole program in one LDW domain."""

    def __init__(
        self,
        icfg: ICFG,
        domain: LDWDomain,
        k: int = 0,
        strengthen_hook: Optional[StrengthenHook] = None,
        assume_handler=None,
        max_record_iterations: int = 60,
        max_steps: int = 200_000,
    ):
        self.icfg = icfg
        self.domain = domain
        self.transfer = Transfer(domain, k)
        self.records: Dict[RecordKey, Record] = {}
        self.worklist: List[RecordKey] = []
        self.strengthen_hook = strengthen_hook
        self.assume_handler = assume_handler
        self.max_record_iterations = max_record_iterations
        self.max_steps = max_steps
        self.steps = 0
        self.recursive = icfg.recursive_procs()

    # -- entry configurations -----------------------------------------------------------

    def generic_entries(self, proc: str) -> List[AbstractHeap]:
        """Most-general entry configurations for a root analysis: every
        pointer formal is independently NULL or a separate acyclic list."""
        cfg = self.icfg.cfg(proc)
        ptr_formals = [p.name for p in cfg.inputs if p.type == A.LIST]
        shapes: List[Dict[str, bool]] = [{}]
        for f in ptr_formals:
            shapes = [dict(s, **{f: null}) for s in shapes for null in (False, True)]
        entries = []
        for shape in shapes:
            entries.append(self._entry_for_shape(cfg, shape))
        return entries

    def _entry_for_shape(self, cfg: CFG, null_of: Dict[str, bool]) -> AbstractHeap:
        """Build the ICFG-level initial heap for one NULL/non-NULL shape,
        going through build_call_entry on a synthetic caller heap."""
        caller_graph_nodes: List[str] = []
        succ: Dict[str, str] = {}
        labels: Dict[str, str] = {}
        value = self.domain.top()
        i = 0
        args: List[str] = []
        for param in cfg.inputs:
            if param.type == A.INT:
                args.append(param.name + "$arg")
                continue
            var = param.name + "$arg"
            args.append(var)
            if null_of[param.name]:
                labels[var] = NULL
            else:
                node = f"a{i}"
                i += 1
                caller_graph_nodes.append(node)
                succ[node] = NULL
                labels[var] = node
        graph = HeapGraph(caller_graph_nodes, succ, labels)
        heap = AbstractHeap(graph, value)
        op = OpCall(
            targets=tuple(p.name + "$res" for p in cfg.outputs),
            proc=cfg.proc_name,
            args=tuple(args),
        )
        info = build_call_entry(self.domain, heap, cfg, op)
        return info.entry_heap

    # -- records ---------------------------------------------------------------------------

    def _record_key(self, proc: str, entry: AbstractHeap) -> RecordKey:
        return (proc, entry.graph.key())

    def get_record(self, proc: str, entry: AbstractHeap) -> Record:
        """Find or create the record; widen its entry if the new one is larger."""
        entry = entry.canonicalize(self.domain)
        key = self._record_key(proc, entry)
        record = self.records.get(key)
        if record is None:
            record = Record(proc=proc, entry=entry)
            self.records[key] = record
            self._enqueue(key)
            return record
        if not entry.leq(record.entry, self.domain):
            joined = record.entry.join(entry, self.domain)
            if proc in self.recursive:
                record.entry = record.entry.widen(joined, self.domain)
            else:
                record.entry = joined
            record.states = {}
            record.iterations = 0
            self._enqueue(key)
        return record

    def _enqueue(self, key: RecordKey) -> None:
        if key not in self.worklist:
            self.worklist.append(key)

    # -- main loop ----------------------------------------------------------------------------

    def run(self) -> None:
        while self.worklist:
            key = self.worklist.pop(0)
            self._analyze_record(key)

    def analyze(self, proc: str) -> List[Record]:
        """Analyze a procedure from its most-general entries; returns the
        records (one per entry shape)."""
        records = [self.get_record(proc, e) for e in self.generic_entries(proc)]
        self.run()
        return records

    # -- intra-procedural fixpoint ----------------------------------------------------------------

    def _analyze_record(self, key: RecordKey) -> None:
        record = self.records[key]
        record.iterations += 1
        if record.iterations > self.max_record_iterations:
            raise AnalysisBudgetExceeded(
                f"record {key[0]} exceeded {self.max_record_iterations} runs"
            )
        cfg = self.icfg.cfg(record.proc)
        domain = self.domain
        states: Dict[int, HeapSet] = dict(record.states)
        entry_state = HeapSet.single(domain, record.entry)
        states[cfg.entry] = entry_state

        # Re-seed every known node: a re-analysis is usually triggered by a
        # callee summary growing, which changes a call edge's output even
        # though the state at its source is unchanged.
        pending: List[int] = [cfg.entry] + [
            n for n in sorted(states) if n != cfg.entry
        ]
        visits: Dict[int, int] = {}
        while pending:
            self.steps += 1
            if self.steps > self.max_steps:
                raise AnalysisBudgetExceeded("global step budget exhausted")
            node = pending.pop(0)
            state = states.get(node)
            if state is None or state.is_bottom():
                continue
            for edge in cfg.out_edges(node):
                out = self._post_edge(record, key, edge, state)
                if out is None or out.is_bottom():
                    continue
                old = states.get(edge.dst, HeapSet.bottom())
                if out.leq(old, domain):
                    continue
                visits[edge.dst] = visits.get(edge.dst, 0) + 1
                # Delayed widening: the first join at a loop head computes
                # the hull (where relational bounds like i <= n first
                # appear); widening starts one visit later so those bounds
                # can stabilize instead of being dropped.
                if edge.dst in cfg.widen_points and visits[edge.dst] > 3:
                    new = old.widen(out.join(old, domain), domain)
                else:
                    new = old.join(out, domain)
                states[edge.dst] = new
                if edge.dst not in pending:
                    pending.append(edge.dst)

        record.states = states
        exit_state = states.get(cfg.exit, HeapSet.bottom())
        summary = exit_state.map(
            domain,
            lambda h: [
                restrict_summary_exit(domain, h, cfg).fold(
                    domain, self.transfer.k
                )
            ],
        )
        if not summary.leq(record.summary, domain):
            if record.proc in self.recursive:
                record.summary = record.summary.widen(
                    summary.join(record.summary, domain), domain
                )
            else:
                record.summary = record.summary.join(summary, domain)
            for dep in list(record.dependents):
                self._enqueue(dep)

    # -- edges -------------------------------------------------------------------------------------

    def _post_edge(
        self, record: Record, key: RecordKey, edge, state: HeapSet
    ) -> Optional[HeapSet]:
        op = edge.op
        domain = self.domain
        if isinstance(op, OpCall):
            return self._post_call(record, key, op, state)
        if isinstance(op, (OpAssume, OpAssert)):
            if self.assume_handler is None:
                return state  # treated as skip when no assertion layer
            return self.assume_handler(op, state, domain)
        return state.map(domain, lambda h: self.transfer.post(op, h))

    def _post_call(
        self, record: Record, key: RecordKey, op: OpCall, state: HeapSet
    ) -> HeapSet:
        domain = self.domain
        callee_cfg = self.icfg.cfg(op.proc)
        results: List[AbstractHeap] = []
        for heap in state:
            info = build_call_entry(domain, heap, callee_cfg, op)
            callee_record = self.get_record(op.proc, info.entry_heap)
            callee_record.dependents.add(key)
            for exit_heap in callee_record.summary:
                strengthen = None
                if self.strengthen_hook is not None:
                    strengthen = lambda value, nr, dr, _eh=exit_heap, _info=info: (
                        self.strengthen_hook(op.proc, _info, _eh, value, nr, dr)
                    )
                composed = compose_return(
                    domain, heap, exit_heap, callee_cfg, op, info, strengthen
                )
                if composed is None:
                    continue
                composed = composed.gc(domain)
                composed = composed.fold(domain, self.transfer.k)
                if not composed.is_bottom(domain):
                    results.append(composed.canonicalize(domain))
        return HeapSet.of(domain, results)

    # -- results ---------------------------------------------------------------------------------------

    def summaries_of(self, proc: str) -> List[Tuple[AbstractHeap, HeapSet]]:
        out = []
        for (name, _), record in sorted(self.records.items()):
            if name == proc:
                out.append((record.entry, record.summary))
        return out
