"""The tabulating inter-procedural fixpoint engine (paper §4).

For each procedure and each *entry configuration* (an abstract heap over
the formals plus their ``$0`` snapshot) the engine keeps a record with the
per-node heap sets of the intra-procedural fixpoint and the summary (the
restricted exit heap set).  Call edges look summaries up (creating and
enqueueing records on demand) and register dependencies; when a summary
grows, its dependents are re-analyzed.

Widening is applied at intra-procedural loop heads and, for recursive
procedures, at the entry (the tabulated entry configuration is widened
when a new call brings a larger one) and at the exit (summaries are
widened instead of joined), exactly the three widening points of §4.

The *mechanics* of the fixpoint live in :mod:`repro.engine`: records are
keyed by stable canonical hashes (:mod:`repro.engine.canon`), scheduled
SCC-bottom-up (:mod:`repro.engine.scheduler`), reused across runs through
the summary cache (:mod:`repro.engine.cache`), and instrumented with
counters/timers/events (:mod:`repro.engine.telemetry`).  All of it is
controlled by one :class:`repro.engine.EngineOptions` bundle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.strategy import InterProcStrategy

from repro.datawords.base import LDWDomain
from repro.engine import EngineOptions, FifoScheduler, Scheduler, SummaryCache
from repro.engine.canon import (
    domain_descriptor,
    graph_hash,
    icfg_fingerprint,
)
from repro.lang import ast as A
from repro.lang.cfg import (
    CFG,
    ICFG,
    OpAssert,
    OpAssume,
    OpCall,
    icfg_uses_prev,
)
from repro.shape.abstract_heap import AbstractHeap
from repro.shape.graph import NULL, HeapGraph
from repro.shape.heap_set import HeapSet
from repro.core.localheap import (
    CallInfo,
    CutpointError,
    build_call_entry,
    compose_return,
    restrict_summary_exit,
)
from repro.core.transfer import Transfer


class AnalysisBudgetExceeded(Exception):
    """An analysis budget was exhausted.

    Carries structured fields so callers can surface a diagnostic instead
    of parsing the message: ``kind`` is one of ``"record_iterations"``,
    ``"entry_widenings"``, ``"global_steps"`` or ``"wall_clock"``;
    ``proc``/``record_key`` identify the offending record when applicable.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "budget",
        proc: Optional[str] = None,
        record_key: Optional[Tuple] = None,
        steps: Optional[int] = None,
        limit: Optional[int] = None,
    ):
        super().__init__(message)
        self.kind = kind
        self.proc = proc
        self.record_key = record_key
        self.steps = steps
        self.limit = limit

    def to_dict(self) -> Dict[str, object]:
        return {
            "message": str(self),
            "kind": self.kind,
            "proc": self.proc,
            "record_key": self.record_key,
            "steps": self.steps,
            "limit": self.limit,
        }


# A record key is (procedure name, stable hash of the canonical entry
# backbone) -- see repro.engine.canon.graph_hash.
RecordKey = Tuple[str, str]


@dataclass
class Record:
    """One tabulated (procedure, entry configuration) pair."""

    proc: str
    entry: AbstractHeap
    states: Dict[int, HeapSet] = field(default_factory=dict)
    summary: HeapSet = field(default_factory=HeapSet.bottom)
    dependents: Set[RecordKey] = field(default_factory=set)
    iterations: int = 0
    # Monotone count of entry-configuration growths; unlike ``iterations``
    # it is never reset, bounding entry-widening livelocks.
    entry_widenings: int = 0
    # Dependency depth at creation (roots are 0, callee records one more
    # than their caller); orders records inside a call-graph SCC.
    depth: int = 0


# A hook called when composing a return:
#   hook(callee_name, call_info, exit_heap, combined_value,
#        node_rename, data_rename) -> value
StrengthenHook = Callable[..., object]


class Engine:
    """Runs the analysis of a whole program in one LDW domain."""

    def __init__(
        self,
        icfg: ICFG,
        domain: LDWDomain,
        k: int = 0,
        strengthen_hook: Optional[StrengthenHook] = None,
        assume_handler=None,
        max_record_iterations: Optional[int] = None,
        max_steps: Optional[int] = None,
        max_seconds: Optional[float] = None,
        opts: Optional[EngineOptions] = None,
    ):
        self.opts = opts if opts is not None else EngineOptions()
        self.icfg = icfg
        self.domain = domain
        self.transfer = Transfer(domain, k, dll=icfg_uses_prev(icfg))
        self.records: Dict[RecordKey, Record] = {}
        self.strengthen_hook = strengthen_hook
        self.assume_handler = assume_handler
        self.max_record_iterations = (
            max_record_iterations
            if max_record_iterations is not None
            else self.opts.max_record_iterations
        )
        self.max_entry_widenings = self.opts.max_entry_widenings
        self.max_steps = max_steps if max_steps is not None else self.opts.max_steps
        self.max_seconds = (
            max_seconds if max_seconds is not None else self.opts.max_seconds
        )
        self._deadline: Optional[float] = None
        self.steps = 0
        self.recursive = icfg.recursive_procs()
        self.telemetry = self.opts.make_telemetry()
        if self.opts.scheduler == "fifo":
            self.worklist = FifoScheduler()
        elif self.opts.scheduler == "scc":
            self.worklist = Scheduler(icfg.call_graph())
        else:
            raise ValueError(
                f"unknown scheduler policy {self.opts.scheduler!r} "
                "(expected 'scc' or 'fifo')"
            )
        self.cache: Optional[SummaryCache] = (
            self.opts.cache if self.opts.use_cache else None
        )
        self.wants_point_states = bool(self.opts.point_states)
        self.from_cache = False  # did the last analyze() restore a cached run?
        self.strategy: Optional["InterProcStrategy"] = None
        # Baseline of the process-wide exact-LP memo, so stats() can
        # report this run's hits/misses rather than cumulative totals.
        from repro.numeric import simplex as _simplex

        self._lp_stats_baseline = _simplex.cache_stats()

    # -- entry configurations -----------------------------------------------------------

    def generic_entries(self, proc: str) -> List[AbstractHeap]:
        """Most-general entry configurations for a root analysis: every
        pointer formal is independently NULL or a separate acyclic list."""
        cfg = self.icfg.cfg(proc)
        ptr_formals = [p.name for p in cfg.inputs if p.type == A.LIST]
        shapes: List[Dict[str, bool]] = [{}]
        for f in ptr_formals:
            shapes = [dict(s, **{f: null}) for s in shapes for null in (False, True)]
        entries = []
        for shape in shapes:
            entries.append(self._entry_for_shape(cfg, shape))
        return entries

    def _entry_for_shape(self, cfg: CFG, null_of: Dict[str, bool]) -> AbstractHeap:
        """Build the ICFG-level initial heap for one NULL/non-NULL shape,
        going through build_call_entry on a synthetic caller heap."""
        caller_graph_nodes: List[str] = []
        succ: Dict[str, str] = {}
        labels: Dict[str, str] = {}
        value = self.domain.top()
        i = 0
        args: List[str] = []
        for param in cfg.inputs:
            if param.type == A.INT:
                args.append(param.name + "$arg")
                continue
            var = param.name + "$arg"
            args.append(var)
            if null_of[param.name]:
                labels[var] = NULL
            else:
                node = f"a{i}"
                i += 1
                caller_graph_nodes.append(node)
                succ[node] = NULL
                labels[var] = node
        if self.transfer.dll:
            # Generic DLL arguments: each list is a well-formed doubly-
            # linked fragment whose head's prev is NULL.
            graph = HeapGraph(
                caller_graph_nodes,
                succ,
                labels,
                {n: NULL for n in caller_graph_nodes},
                frozenset(caller_graph_nodes),
                frozenset(),
            )
        else:
            graph = HeapGraph(caller_graph_nodes, succ, labels)
        heap = AbstractHeap(graph, value)
        op = OpCall(
            targets=tuple(p.name + "$res" for p in cfg.outputs),
            proc=cfg.proc_name,
            args=tuple(args),
        )
        info = build_call_entry(self.domain, heap, cfg, op)
        return info.entry_heap

    # -- records ---------------------------------------------------------------------------

    def _record_key(self, proc: str, entry: AbstractHeap) -> RecordKey:
        return (proc, graph_hash(entry.graph))

    def record_for(self, proc: str, entry: AbstractHeap) -> Optional[Record]:
        """Look up the tabulated record for an entry configuration (by
        canonical backbone), without creating or enqueueing one."""
        return self.records.get(self._record_key(proc, entry))

    def get_record(self, proc: str, entry: AbstractHeap, depth: int = 0) -> Record:
        """Find or create the record; widen its entry if the new one is larger."""
        entry = entry.canonicalize(self.domain)
        key = self._record_key(proc, entry)
        record = self.records.get(key)
        if record is None:
            record = Record(proc=proc, entry=entry, depth=depth)
            self.records[key] = record
            self.telemetry.count("records.created")
            self.telemetry.event("record.created", proc=proc, key=key[1], depth=depth)
            self._enqueue(key, record)
            return record
        if depth < record.depth:
            record.depth = depth
        if not entry.leq(record.entry, self.domain):
            record.entry_widenings += 1
            if record.entry_widenings > self.max_entry_widenings:
                raise AnalysisBudgetExceeded(
                    f"record {proc} widened its entry "
                    f"{record.entry_widenings} times "
                    f"(limit {self.max_entry_widenings}); "
                    "the entry widening is not stabilizing",
                    kind="entry_widenings",
                    proc=proc,
                    record_key=key,
                    steps=record.entry_widenings,
                    limit=self.max_entry_widenings,
                )
            joined = record.entry.join(entry, self.domain)
            if proc in self.recursive:
                record.entry = record.entry.widen(joined, self.domain)
            else:
                record.entry = joined
            record.states = {}
            # The iteration budget is per entry configuration; growth of the
            # entry starts a fresh intra-procedural fixpoint.  Livelock with
            # a non-stabilizing widening is caught by ``entry_widenings``,
            # which is monotone and bounded separately.
            record.iterations = 0
            self.telemetry.count("records.entry_widened")
            self.telemetry.event(
                "entry.widened",
                proc=proc,
                key=key[1],
                count=record.entry_widenings,
            )
            self._enqueue(key, record)
        return record

    def _enqueue(self, key: RecordKey, record: Record) -> None:
        self.worklist.push(key, record.proc, record.depth)

    # -- main loop ----------------------------------------------------------------------------

    def run(self) -> None:
        if self.max_seconds is not None and self._deadline is None:
            self._deadline = time.monotonic() + self.max_seconds
        with self.telemetry.phase("fixpoint"):
            while self.worklist:
                key = self.worklist.pop()
                self._analyze_record(key)

    def analyze(
        self, proc: str, strategy: Optional["InterProcStrategy"] = None
    ) -> List[Record]:
        """Analyze a procedure through an inter-procedural strategy.

        The default :class:`repro.core.strategy.ExhaustiveStrategy` is
        the paper's bottom-up summary tabulation from the procedure's
        most-general entries; :class:`repro.core.strategy.DemandStrategy`
        scopes the run to the backward-relevant call cone of a single
        program-point query.  Returns the root records (one per entry
        shape).
        """
        from repro.core.strategy import ExhaustiveStrategy

        if strategy is None:
            strategy = ExhaustiveStrategy()
        self.strategy = strategy
        return strategy.run(self, proc)

    def tabulate_root(self, proc: str) -> List[Record]:
        """Tabulate a procedure from its most-general entries; returns
        the records (one per entry shape).  Strategies share this as the
        underlying fixpoint driver, which keeps their verdicts
        bit-identical by construction.

        When a summary cache is configured and holds this exact run
        (program, procedure, domain, patterns, fold bound, hooks), the
        whole record table is restored from it and no fixpoint runs.
        Under ``EngineOptions.point_states`` the cached payload must also
        carry per-node state tables; a cached run recorded without them
        is recomputed and the cache entry upgraded in place.
        """
        self.from_cache = False
        cache_key = self._cache_key(proc)
        if cache_key is not None and self.cache is not None:
            payload = self.cache.get(cache_key)
            if payload is not None:
                records_part, states_part = payload_parts(payload)
                if states_part is not None or not self.wants_point_states:
                    self.telemetry.count("cache.hits")
                    self.telemetry.event("cache.hit", proc=proc)
                    return self._notify_recorder(
                        self._restore_run(records_part, states_part, proc)
                    )
                # The cached run predates this point_states request:
                # recompute and upgrade the entry so the next hit
                # carries the state tables.
                self.telemetry.count("cache.state_upgrades")
                self.telemetry.event("cache.state_upgrade", proc=proc)
            else:
                self.telemetry.count("cache.misses")
                self.telemetry.event("cache.miss", proc=proc)
        records = [self.get_record(proc, e) for e in self.generic_entries(proc)]
        self.run()
        if cache_key is not None and self.cache is not None:
            self.cache.put(cache_key, self._run_payload())
        return self._notify_recorder(records)

    def _notify_recorder(self, records: List[Record]) -> List[Record]:
        """Invoke a callable ``point_states`` recorder on every finished
        record (fresh or cache-restored), in deterministic table order."""
        recorder = self.opts.point_states if callable(self.opts.point_states) else None
        if recorder is not None:
            for record in self.records.values():
                recorder(record)
        return records

    # -- run-level caching --------------------------------------------------------------------

    def _cache_key(self, proc: str) -> Optional[Tuple]:
        """The cache key for a root analysis, or None when the run is not
        cacheable (a hook without a declared ``cache_tag`` may close over
        arbitrary state, e.g. a stateful assertion checker)."""
        hook_tag = _hook_tag(self.strengthen_hook)
        assume_tag = _hook_tag(self.assume_handler)
        if hook_tag is None or assume_tag is None:
            return None
        return (
            icfg_fingerprint(self.icfg),
            proc,
            domain_descriptor(self.domain),
            self.transfer.k,
            hook_tag,
            assume_tag,
        )

    def _run_payload(self):
        """The cacheable run result.  The compact legacy shape is a list
        of ``(proc, entry, summary)`` triples; runs recorded under
        ``point_states`` use the dict shape that additionally carries
        each record's per-node state table (same order)."""
        records = [
            (record.proc, record.entry, record.summary)
            for record in self.records.values()
        ]
        if not self.wants_point_states:
            return records
        return {
            "records": records,
            "states": [dict(record.states) for record in self.records.values()],
        }

    def _restore_run(self, records_payload, states_payload, proc: str) -> List[Record]:
        self.from_cache = True
        for i, (callee, entry, summary) in enumerate(records_payload):
            key = self._record_key(callee, entry)
            record = Record(proc=callee, entry=entry, summary=summary)
            if states_payload is not None:
                record.states = dict(states_payload[i])
            self.records[key] = record
        self.telemetry.count("records.restored", len(records_payload))
        return [record for record in self.records.values() if record.proc == proc]

    # -- intra-procedural fixpoint ----------------------------------------------------------------

    def _analyze_record(self, key: RecordKey) -> None:
        record = self.records[key]
        record.iterations += 1
        if record.iterations > 1:
            self.telemetry.count("records.reanalyzed")
            self.telemetry.event(
                "record.rerun", proc=record.proc, key=key[1], run=record.iterations
            )
        if record.iterations > self.max_record_iterations:
            raise AnalysisBudgetExceeded(
                f"record {key[0]} exceeded {self.max_record_iterations} runs",
                kind="record_iterations",
                proc=record.proc,
                record_key=key,
                steps=record.iterations,
                limit=self.max_record_iterations,
            )
        cfg = self.icfg.cfg(record.proc)
        domain = self.domain
        states: Dict[int, HeapSet] = dict(record.states)
        entry_state = HeapSet.single(domain, record.entry)
        states[cfg.entry] = entry_state

        # Re-seed every known node: a re-analysis is usually triggered by a
        # callee summary growing, which changes a call edge's output even
        # though the state at its source is unchanged.
        pending: List[int] = [cfg.entry] + [
            n for n in sorted(states) if n != cfg.entry
        ]
        visits: Dict[int, int] = {}
        while pending:
            self.steps += 1
            if self.steps > self.max_steps:
                raise AnalysisBudgetExceeded(
                    f"global step budget exhausted while analyzing {record.proc}",
                    kind="global_steps",
                    proc=record.proc,
                    record_key=key,
                    steps=self.steps,
                    limit=self.max_steps,
                )
            # A step bound does not bound time: a single AU step can sink
            # minutes into exact-LP fallbacks, so fuzzing and other batch
            # drivers additionally cap wall-clock.
            if self._deadline is not None and time.monotonic() > self._deadline:
                raise AnalysisBudgetExceeded(
                    f"wall-clock budget exhausted while analyzing "
                    f"{record.proc}",
                    kind="wall_clock",
                    proc=record.proc,
                    record_key=key,
                    steps=self.steps,
                    limit=self.max_seconds,
                )
            node = pending.pop(0)
            state = states.get(node)
            if state is None or state.is_bottom():
                continue
            for edge in cfg.out_edges(node):
                out = self._post_edge(record, key, edge, state)
                if out is None or out.is_bottom():
                    continue
                old = states.get(edge.dst, HeapSet.bottom())
                if out.leq(old, domain):
                    continue
                visits[edge.dst] = visits.get(edge.dst, 0) + 1
                # Delayed widening: the first join at a loop head computes
                # the hull (where relational bounds like i <= n first
                # appear); widening starts one visit later so those bounds
                # can stabilize instead of being dropped.
                if edge.dst in cfg.widen_points and visits[edge.dst] > 3:
                    new = old.widen(out.join(old, domain), domain)
                    self.telemetry.count("widenings.loop")
                    self.telemetry.event(
                        "widening.applied",
                        proc=record.proc,
                        node=edge.dst,
                        visit=visits[edge.dst],
                    )
                else:
                    new = old.join(out, domain)
                states[edge.dst] = new
                if edge.dst not in pending:
                    pending.append(edge.dst)

        record.states = states
        exit_state = states.get(cfg.exit, HeapSet.bottom())
        summary = exit_state.map(
            domain,
            lambda h: [
                restrict_summary_exit(domain, h, cfg).fold(
                    domain, self.transfer.k
                )
            ],
        )
        if not summary.leq(record.summary, domain):
            if record.proc in self.recursive:
                record.summary = record.summary.widen(
                    summary.join(record.summary, domain), domain
                )
                self.telemetry.count("widenings.summary")
            else:
                record.summary = record.summary.join(summary, domain)
            self.telemetry.count("summaries.grew")
            self.telemetry.event(
                "summary.grew",
                proc=record.proc,
                key=key[1],
                dependents=len(record.dependents),
            )
            for dep in list(record.dependents):
                dep_record = self.records.get(dep)
                if dep_record is not None:
                    self._enqueue(dep, dep_record)

    # -- edges -------------------------------------------------------------------------------------

    def _post_edge(
        self, record: Record, key: RecordKey, edge, state: HeapSet
    ) -> Optional[HeapSet]:
        op = edge.op
        domain = self.domain
        if isinstance(op, OpCall):
            return self._post_call(record, key, op, state)
        if isinstance(op, (OpAssume, OpAssert)):
            if self.assume_handler is None:
                return state  # treated as skip when no assertion layer
            # Handlers that want source context (procedure, line) for
            # structured diagnostics opt in via a ``set_context`` method;
            # plain callables keep the bare (op, state, domain) protocol.
            set_context = getattr(self.assume_handler, "set_context", None)
            if set_context is not None:
                set_context(proc=record.proc, line=edge.line)
            return self.assume_handler(op, state, domain)
        return state.map(domain, lambda h: self.transfer.post(op, h))

    def _post_call(
        self, record: Record, key: RecordKey, op: OpCall, state: HeapSet
    ) -> HeapSet:
        domain = self.domain
        callee_cfg = self.icfg.cfg(op.proc)
        results: List[AbstractHeap] = []
        for heap in state:
            info = build_call_entry(domain, heap, callee_cfg, op)
            callee_record = self.get_record(
                op.proc, info.entry_heap, depth=record.depth + 1
            )
            callee_record.dependents.add(key)
            for exit_heap in callee_record.summary:
                strengthen = None
                if self.strengthen_hook is not None:
                    strengthen = lambda value, nr, dr, _eh=exit_heap, _info=info: (
                        self.strengthen_hook(op.proc, _info, _eh, value, nr, dr)
                    )
                composed = compose_return(
                    domain, heap, exit_heap, callee_cfg, op, info, strengthen
                )
                if composed is None:
                    continue
                composed = composed.gc(domain)
                composed = composed.fold(domain, self.transfer.k)
                if not composed.is_bottom(domain):
                    results.append(composed.canonicalize(domain))
        return HeapSet.of(domain, results)

    # -- results ---------------------------------------------------------------------------------------

    def summaries_of(self, proc: str) -> List[Tuple[AbstractHeap, HeapSet]]:
        out = []
        for record in self.records.values():
            if record.proc == proc:
                out.append((record.entry, record.summary))
        # Deterministic order independent of hash values: sort on the
        # canonical backbone key (matches the seed engine's ordering).
        out.sort(key=lambda pair: pair[0].graph.key())
        return out

    def stats(self) -> Dict[str, object]:
        """Counters, timers, scheduler and cache accounting for this run."""
        out: Dict[str, object] = {
            "records": len(self.records),
            "steps": self.steps,
            "from_cache": self.from_cache,
        }
        if self.strategy is not None:
            out["strategy"] = self.strategy.name
        out.update(self.telemetry.report())
        out["scheduler"] = self.worklist.stats()
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        from repro.numeric import simplex as _simplex

        lp_now = _simplex.cache_stats()
        out["lp_cache"] = {
            "solve_hits": lp_now["solve_hits"]
            - self._lp_stats_baseline["solve_hits"],
            "solve_misses": lp_now["solve_misses"]
            - self._lp_stats_baseline["solve_misses"],
            "solve_entries": lp_now["solve_entries"],
        }
        return out


def payload_parts(payload) -> Tuple[List[Tuple], Optional[List[Dict]]]:
    """Split a cached run payload into ``(records, states-or-None)``,
    accepting both the legacy list shape and the point-states dict shape
    (old disk stores keep working either way)."""
    if isinstance(payload, dict):
        return payload["records"], payload.get("states")
    return payload, None


def _hook_tag(hook) -> Optional[str]:
    """Cache tag of an engine hook: "" for no hook, the hook's declared
    ``cache_tag`` otherwise, or None (uncacheable) for anonymous hooks."""
    if hook is None:
        return ""
    return getattr(hook, "cache_tag", None)
