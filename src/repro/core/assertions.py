"""assume/assert handling and pre/post-condition reasoning (paper §6.3).

Spec formulas are conjunctions of atoms: ``sorted(x)``, ``ms_eq(x, y)``,
``equal(x, y)`` and affine data comparisons.  The handler plugs into the
engine (replacing the skip treatment of OpAssume/OpAssert):

- ``assume`` *conjoins* the atom's translation into the current domain
  (atoms a domain cannot express are soundly ignored);
- ``assert`` folds the heap (paper: ``fold#(AH) ⊑ A'_H``) and checks
  entailment, recording the verdict; to improve precision the check can be
  strengthened with an auxiliary AM analysis (strengthen_M, §6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.datawords import terms as T
from repro.datawords.multiset import MultisetDomain
from repro.datawords.patterns import GuardInstance
from repro.datawords.universal import UniversalDomain, UniversalValue
from repro.lang import ast as A
from repro.lang.cfg import OpAssert, OpAssume
from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron
from repro.shape.abstract_heap import AbstractHeap
from repro.shape.graph import NULL
from repro.shape.heap_set import HeapSet
from repro.core.transfer import data_expr_to_linexpr, NullDereference


@dataclass
class AssertionOutcome:
    formula: str
    verified: bool
    heap_count: int
    proc: Optional[str] = None  # procedure owning the assert edge
    line: Optional[int] = None  # source line of the assert statement


class AssertionChecker:
    """An assume/assert handler recording assertion verdicts."""

    def __init__(self, strengthen_with_am=None):
        self.outcomes: List[AssertionOutcome] = []
        self.strengthen_with_am = strengthen_with_am  # optional hook
        self._proc: Optional[str] = None
        self._line: Optional[int] = None

    # -- engine hook -------------------------------------------------------------

    def set_context(self, proc: Optional[str] = None, line: Optional[int] = None) -> None:
        """Called by the engine just before the handler, with the procedure
        and source line of the assume/assert edge being evaluated."""
        self._proc = proc
        self._line = line

    def diagnostics(self):
        """The recorded verdicts as structured diagnostic records
        (:mod:`repro.service.diagnostics`), aggregated per assertion."""
        from repro.service.diagnostics import from_assertions

        return from_assertions(self.outcomes)

    def __call__(self, op, state: HeapSet, domain) -> HeapSet:
        if isinstance(op, OpAssume):
            return state.map(
                domain, lambda h: [assume_formula(domain, h, op.formula)]
            )
        verified = True
        for heap in state:
            value = heap.value
            if self.strengthen_with_am is not None and isinstance(
                domain, UniversalDomain
            ):
                value = self.strengthen_with_am(heap)
            check_heap = AbstractHeap(heap.graph, value).fold(domain, 0)
            if not check_formula(domain, check_heap, op.formula):
                verified = False
        self.outcomes.append(
            AssertionOutcome(
                str(op.formula), verified, len(state),
                proc=self._proc, line=self._line,
            )
        )
        return state

    def all_verified(self) -> bool:
        return all(o.verified for o in self.outcomes)


def _chain_of(graph, node: str) -> List[str]:
    chain = []
    current = node
    while current != NULL and current not in chain:
        chain.append(current)
        current = graph.succ.get(current, NULL)
    return chain


# ---------------------------------------------------------------------------
# assume


def assume_formula(domain, heap: AbstractHeap, formula: A.SpecFormula) -> AbstractHeap:
    out = heap
    for atom in formula.atoms:
        out = _assume_atom(domain, out, atom)
    return out


def _assume_atom(domain, heap: AbstractHeap, atom: A.SpecAtom) -> AbstractHeap:
    graph = heap.graph
    value = heap.value
    if atom.kind == "data":
        try:
            left = data_expr_to_linexpr(atom.cmp.left, graph)
            right = data_expr_to_linexpr(atom.cmp.right, graph)
        except NullDereference:
            return heap
        constraint = _cmp_constraint(atom.cmp.op, left, right)
        if constraint is not None:
            value = domain.meet_constraint(value, constraint)
        return AbstractHeap(graph, value)
    if atom.kind == "sorted":
        node = graph.node_of(atom.args[0])
        if node == NULL:
            return heap
        chain = _chain_of(graph, node)
        if isinstance(domain, UniversalDomain) and len(chain) == 1:
            value = _assume_sorted(domain, value, node)
        return AbstractHeap(graph, value)
    if atom.kind == "ms_eq":
        n1 = graph.node_of(atom.args[0])
        n2 = graph.node_of(atom.args[1])
        if (n1 == NULL) != (n2 == NULL):
            # One empty, one non-empty: infeasible (words are non-empty).
            return AbstractHeap(graph, domain.bottom())
        if n1 == NULL or n2 == NULL:
            return heap
        if isinstance(domain, MultisetDomain):
            value = domain.add_ms_eq(value, n1, n2)
        return AbstractHeap(graph, value)
    if atom.kind == "equal":
        n1 = graph.node_of(atom.args[0])
        n2 = graph.node_of(atom.args[1])
        if n1 == NULL or n2 == NULL:
            # equal(x, y) with one side NULL: both must be NULL.
            if (n1 == NULL) != (n2 == NULL):
                return AbstractHeap(graph, domain.bottom())
            return heap
        if len(_chain_of(graph, n1)) == 1 and len(_chain_of(graph, n2)) == 1:
            value = domain.add_word_copy_eq(value, n1, n2)
        return AbstractHeap(graph, value)
    raise ValueError(f"unknown spec atom {atom.kind!r}")


def _assume_sorted(domain: UniversalDomain, value: UniversalValue, node: str):
    body_ord = Polyhedron.of(
        Constraint.le(
            LinExpr.var(T.elem(node, "y1")), LinExpr.var(T.elem(node, "y2"))
        )
    )
    body_all = Polyhedron.of(
        Constraint.le(LinExpr.var(T.hd(node)), LinExpr.var(T.elem(node, "y1")))
    )
    if "ORD2" in domain.patterns:
        value = domain.meet_clause(
            value, GuardInstance("ORD2", (node,)), body_ord
        )
    if "ALL1" in domain.patterns:
        value = domain.meet_clause(
            value, GuardInstance("ALL1", (node,)), body_all
        )
    return value


# ---------------------------------------------------------------------------
# assert


def check_formula(domain, heap: AbstractHeap, formula: A.SpecFormula) -> bool:
    return all(_check_atom(domain, heap, atom) for atom in formula.atoms)


def _check_atom(domain, heap: AbstractHeap, atom: A.SpecAtom) -> bool:
    graph = heap.graph
    value = heap.value
    if domain.is_bottom(value):
        return True
    if atom.kind == "data":
        try:
            left = data_expr_to_linexpr(atom.cmp.left, graph)
            right = data_expr_to_linexpr(atom.cmp.right, graph)
        except NullDereference:
            return False
        constraint = _cmp_constraint(atom.cmp.op, left, right)
        if constraint is None:  # != : check via both strict sides
            lt = Constraint.lt_int(left, right)
            gt = Constraint.gt_int(left, right)
            return domain.entails_constraint(value, lt) or domain.entails_constraint(value, gt)
        return domain.entails_constraint(value, constraint)
    if atom.kind == "sorted":
        node = graph.node_of(atom.args[0])
        if node == NULL:
            return True
        if not isinstance(domain, UniversalDomain):
            return False
        return _check_sorted(domain, value, node)
    if atom.kind == "ms_eq":
        n1 = graph.node_of(atom.args[0])
        n2 = graph.node_of(atom.args[1])
        if n1 == NULL and n2 == NULL:
            return True
        if n1 == NULL or n2 == NULL:
            return False
        if isinstance(domain, MultisetDomain):
            from fractions import Fraction

            row = {
                T.mhd(n1): Fraction(1),
                T.mtl(n1): Fraction(1),
                T.mhd(n2): Fraction(-1),
                T.mtl(n2): Fraction(-1),
            }
            return domain.entails_row(value, row)
        return False
    if atom.kind == "equal":
        n1 = graph.node_of(atom.args[0])
        n2 = graph.node_of(atom.args[1])
        if n1 == NULL and n2 == NULL:
            return True
        if n1 == NULL or n2 == NULL:
            return False
        if not isinstance(domain, UniversalDomain):
            return False
        return _check_equal(domain, value, n1, n2)
    raise ValueError(f"unknown spec atom {atom.kind!r}")


def _check_sorted(domain: UniversalDomain, value: UniversalValue, node: str) -> bool:
    gi = GuardInstance("ORD2", (node,))
    target = Constraint.le(
        LinExpr.var(T.elem(node, "y1")), LinExpr.var(T.elem(node, "y2"))
    )
    context = value.E.meet(gi.guard_poly()).meet(
        value.clauses.get(gi, Polyhedron.top())
    )
    if context.is_bottom():
        ord_ok = True
    else:
        ord_ok = context.entails(target)
    # hd <= tail elements
    gi1 = GuardInstance("ALL1", (node,))
    target1 = Constraint.le(
        LinExpr.var(T.hd(node)), LinExpr.var(T.elem(node, "y1"))
    )
    context1 = value.E.meet(gi1.guard_poly()).meet(
        value.clauses.get(gi1, Polyhedron.top())
    )
    all_ok = context1.is_bottom() or context1.entails(target1)
    return ord_ok and all_ok


def _check_equal(domain: UniversalDomain, value: UniversalValue, n1: str, n2: str) -> bool:
    if not value.E.entails(
        Constraint.eq(LinExpr.var(T.hd(n1)), LinExpr.var(T.hd(n2)))
    ):
        return False
    if not value.E.entails(
        Constraint.eq(LinExpr.var(T.length(n1)), LinExpr.var(T.length(n2)))
    ):
        return False
    gi = GuardInstance("EQ2", (n1, n2))
    target = Constraint.eq(
        LinExpr.var(T.elem(n1, "y1")), LinExpr.var(T.elem(n2, "y2"))
    )
    context = value.E.meet(gi.guard_poly()).meet(
        value.clauses.get(gi, Polyhedron.top())
    )
    return context.is_bottom() or context.entails(target)


def _cmp_constraint(op: str, left: LinExpr, right: LinExpr) -> Optional[Constraint]:
    if op == "==":
        return Constraint.eq(left, right)
    if op == "<":
        return Constraint.lt_int(left, right)
    if op == "<=":
        return Constraint.le(left, right)
    if op == ">":
        return Constraint.gt_int(left, right)
    if op == ">=":
        return Constraint.ge(left, right)
    return None  # '!=' has no single-constraint translation
