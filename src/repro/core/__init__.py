"""The paper's primary contribution: inter-procedural shape+data analysis.

- :mod:`repro.core.transfer` -- ``post#`` for the statement alphabet (§4);
- :mod:`repro.core.localheap` -- local heaps, entry snapshots, cutpoint
  checks, and summary composition at returns (§4, calls/returns);
- :mod:`repro.core.interproc` -- the tabulating fixpoint engine with
  widening at loop heads and recursive entries/exits;
- :mod:`repro.core.combine` -- partial reduction operators σ_U/σ_M, the
  traversal-program ``infer_W``, ``strengthen`` and ``convert`` (§5, §6.1);
- :mod:`repro.core.product` -- the partially reduced product AHS(AU)×AHS(AW)
  used by ``infer_W`` (§5.1);
- :mod:`repro.core.assertions` -- assert/assume formulas and entailment
  checking (§6.3);
- :mod:`repro.core.equivalence` -- procedure equivalence checking (§6.4);
- :mod:`repro.core.strategy` -- pluggable inter-procedural strategies
  (exhaustive bottom-up tabulation vs. demand-driven backward-cone
  queries);
- :mod:`repro.core.api` -- the user-facing :class:`Analyzer` facade.
"""

from repro.core.api import Analyzer, AnalysisResult, choose_patterns
from repro.core.strategy import (
    DemandStrategy,
    ExhaustiveStrategy,
    InterProcStrategy,
    backward_cone,
)

__all__ = [
    "Analyzer",
    "AnalysisResult",
    "choose_patterns",
    "InterProcStrategy",
    "ExhaustiveStrategy",
    "DemandStrategy",
    "backward_cone",
]
