"""The partially reduced product AHS(AU) × AHS(AW) (paper §5.1).

Values are pairs ``(u, aux)``.  All transformers apply componentwise; the
unfolding transformers (``split``/``advance``/``restrict_len1`` -- the
abstract counterparts of ``p = q->next``) additionally apply the partial
reduction σ_W, exchanging information between the components:

- against a multiset component: σ¹_M/σ²_M (Fig. 8 membership reasoning);
- against a second universal component: σ¹_U imports the quantifier-free
  part (the paper's definition).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Tuple

from repro.datawords.base import LDWDomain
from repro.datawords.multiset import MultisetDomain
from repro.datawords.universal import UniversalDomain, UniversalValue
from repro.numeric.linexpr import Constraint, LinExpr


class ProductDomain(LDWDomain):
    """Componentwise product with σ at unfolding points."""

    def __init__(self, main: UniversalDomain, aux: LDWDomain):
        self.main = main
        self.aux = aux

    # -- reduction -----------------------------------------------------------

    def reduce(self, value: Tuple) -> Tuple:
        from repro.core.combine import (
            sigma_m_from_universal,
            sigma_m_strengthen,
        )

        u, a = value
        if self.main.is_bottom(u) or self.aux.is_bottom(a):
            return (self.main.bottom(), self.aux.bottom())
        if isinstance(self.aux, MultisetDomain):
            u2 = sigma_m_strengthen(self.main, u, a)
            a2 = sigma_m_from_universal(self.main, u2, a)
            return (u2, a2)
        if isinstance(self.aux, UniversalDomain):
            # σ¹_U: import the quantifier-free part of the aux component.
            u2 = UniversalValue(u.E.meet(a.E), u.clauses)
            return (u2, a)
        return value

    # -- lattice ----------------------------------------------------------------

    def top(self):
        return (self.main.top(), self.aux.top())

    def bottom(self):
        return (self.main.bottom(), self.aux.bottom())

    def is_bottom(self, value) -> bool:
        return self.main.is_bottom(value[0]) or self.aux.is_bottom(value[1])

    def leq(self, v1, v2) -> bool:
        return self.main.leq(v1[0], v2[0]) and self.aux.leq(v1[1], v2[1])

    def join(self, v1, v2):
        if self.is_bottom(v1):
            return v2
        if self.is_bottom(v2):
            return v1
        return (self.main.join(v1[0], v2[0]), self.aux.join(v1[1], v2[1]))

    def meet(self, v1, v2):
        return (self.main.meet(v1[0], v2[0]), self.aux.meet(v1[1], v2[1]))

    def widen(self, v1, v2):
        if self.is_bottom(v1):
            return v2
        if self.is_bottom(v2):
            return v1
        return (self.main.widen(v1[0], v2[0]), self.aux.widen(v1[1], v2[1]))

    # -- vocabulary -----------------------------------------------------------------

    def rename_words(self, value, mapping: Mapping[str, str]):
        return (
            self.main.rename_words(value[0], mapping),
            self.aux.rename_words(value[1], mapping),
        )

    def project_words(self, value, words: Iterable[str]):
        ws = list(words)
        return (
            self.main.project_words(value[0], ws),
            self.aux.project_words(value[1], ws),
        )

    def forget_data(self, value, dvars: Iterable[str]):
        ds = list(dvars)
        return (
            self.main.forget_data(value[0], ds),
            self.aux.forget_data(value[1], ds),
        )

    def add_singleton_word(self, value, word: str):
        return (
            self.main.add_singleton_word(value[0], word),
            self.aux.add_singleton_word(value[1], word),
        )

    # -- structural (with reduction at unfold points) -----------------------------------

    def concat(self, value, target: str, parts: Sequence[str], all_words=None):
        u = _call(self.main.concat, value[0], target, parts, all_words)
        a = _call(self.aux.concat, value[1], target, parts, all_words)
        return (u, a)

    def split(self, value, word: str, tail: str, all_words=None):
        u = _call(self.main.split, value[0], word, tail, all_words)
        a = _call(self.aux.split, value[1], word, tail, all_words)
        return self.reduce((u, a))

    def advance(self, value, pred: str, word: str, tail: str, all_words=None):
        u = _call_adv(self.main, value[0], pred, word, tail, all_words)
        a = _call_adv(self.aux, value[1], pred, word, tail, all_words)
        return self.reduce((u, a))

    def restrict_len1(self, value, word: str):
        return self.reduce(
            (
                self.main.restrict_len1(value[0], word),
                self.aux.restrict_len1(value[1], word),
            )
        )

    # -- data ----------------------------------------------------------------------------

    def assign_hd(self, value, word: str, expr: Optional[LinExpr]):
        return (
            self.main.assign_hd(value[0], word, expr),
            self.aux.assign_hd(value[1], word, expr),
        )

    def assign_data(self, value, dvar: str, expr: Optional[LinExpr]):
        return (
            self.main.assign_data(value[0], dvar, expr),
            self.aux.assign_data(value[1], dvar, expr),
        )

    def meet_constraint(self, value, constraint: Constraint):
        return (
            self.main.meet_constraint(value[0], constraint),
            self.aux.meet_constraint(value[1], constraint),
        )

    def entails_constraint(self, value, constraint: Constraint) -> bool:
        return self.main.entails_constraint(
            value[0], constraint
        ) or self.aux.entails_constraint(value[1], constraint)

    def add_word_copy_eq(self, value, word: str, copy: str):
        return (
            self.main.add_word_copy_eq(value[0], word, copy),
            self.aux.add_word_copy_eq(value[1], word, copy),
        )

    # -- evaluation --------------------------------------------------------------------------

    def satisfied_by(self, value, words_env, data_env) -> bool:
        return self.main.satisfied_by(
            value[0], words_env, data_env
        ) and self.aux.satisfied_by(value[1], words_env, data_env)

    def describe(self, value) -> str:
        return (
            f"{self.main.describe(value[0])}  WITH  "
            f"{self.aux.describe(value[1])}"
        )


def _call(method, value, target, parts, all_words):
    try:
        return method(value, target, parts, all_words=all_words)
    except TypeError:
        return method(value, target, parts)


def _call_adv(domain, value, pred, word, tail, all_words):
    try:
        return domain.advance(value, pred, word, tail, all_words=all_words)
    except TypeError:
        return domain.advance(value, pred, word, tail)
