"""Kernel mode switch: optimized vs reference numeric/heap kernels.

The cold-path speed program (fast integer simplex, warm-started
entailment, incremental canonicalization, heap-set join pre-filters)
keeps every optimized kernel behind this switch, paired with the
original reference implementation.  The contract is *representation
identity*: with the same inputs, the fast and reference paths must
produce summaries whose canonical stable hashes are bit-identical —
the fuzz lane (``python -m repro.fuzz --check-kernels``) and the
corpus-wide suite in ``tests/test_kernels.py`` enforce it.

Default is ``fast``; set ``REPRO_KERNELS=reference`` (or call
:func:`set_mode`) to run the unoptimized baseline.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

FAST_MODE = "fast"
REFERENCE_MODE = "reference"

_VALID = (FAST_MODE, REFERENCE_MODE)

# Module-level flag read directly by the hot paths (attribute access is
# the cheapest call-site test Python offers).
FAST: bool = os.environ.get("REPRO_KERNELS", FAST_MODE) != REFERENCE_MODE


def mode() -> str:
    return FAST_MODE if FAST else REFERENCE_MODE


def set_mode(new_mode: str) -> None:
    """Switch kernel mode and drop caches populated under the old one.

    Caches are representation-identical across modes (that is the
    identity gate), but clearing them keeps differential timing honest:
    a reference run never rides on results the fast path computed.
    """
    if new_mode not in _VALID:
        raise ValueError(f"unknown kernel mode {new_mode!r}")
    global FAST
    FAST = new_mode != REFERENCE_MODE
    from repro.numeric import simplex
    from repro.numeric import polyhedra

    simplex.clear_caches()
    polyhedra.clear_caches()


@contextmanager
def mode_ctx(new_mode: str):
    """Temporarily run under ``new_mode`` (used by the identity gates)."""
    old = mode()
    set_mode(new_mode)
    try:
        yield
    finally:
        set_mode(old)
