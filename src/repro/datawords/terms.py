"""Canonical term names shared by the LDW domains.

All domains express constraints over *named terms* (plain strings) so they
can reuse the numeric layer directly.  This module centralizes the naming
scheme:

=============  ==========================  =========================
term           meaning                     producer
=============  ==========================  =========================
``hd(n)``      first letter of word n      :func:`hd`
``len(n)``     length of word n            :func:`length`
``n[y1]``      letter of n at position y1  :func:`elem`
``y1``         quantified position         :func:`posvar`
``d``          integer program variable    plain name
``mhd(n)``     singleton {hd(n)}           :func:`mhd` (AM only)
``mtl(n)``     multiset of the tail of n   :func:`mtl` (AM only)
=============  ==========================  =========================

Word variables are named after backbone nodes (``n3``) or snapshot copies
(``n3$0``); data variables are LISL identifiers, with ``$0`` marking the
entry-point copy.  ``$`` never occurs in LISL identifiers, so generated
names cannot collide with program variables.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, Optional, Set, Tuple

_HD = re.compile(r"^hd\((?P<w>[^()\[\]]+)\)$")
_LEN = re.compile(r"^len\((?P<w>[^()\[\]]+)\)$")
_ELEM = re.compile(r"^(?P<w>[^()\[\]]+)\[(?P<y>[^()\[\]]+)\]$")
_MHD = re.compile(r"^mhd\((?P<w>[^()\[\]]+)\)$")
_MTL = re.compile(r"^mtl\((?P<w>[^()\[\]]+)\)$")
_POS = re.compile(r"^y\d+$")


def hd(word: str) -> str:
    """The term denoting the first letter of ``word``."""
    return f"hd({word})"


def length(word: str) -> str:
    """The term denoting the length of ``word``."""
    return f"len({word})"


def elem(word: str, pos: str) -> str:
    """The term denoting the letter of ``word`` at position ``pos``."""
    return f"{word}[{pos}]"


def posvar(index: int) -> str:
    """The canonical i-th quantified position variable (1-based)."""
    return f"y{index}"


def mhd(word: str) -> str:
    """AM term: the singleton multiset holding the first letter."""
    return f"mhd({word})"


def mtl(word: str) -> str:
    """AM term: the multiset of all letters but the first."""
    return f"mtl({word})"


def is_hd(term: str) -> bool:
    return _HD.match(term) is not None


def is_len(term: str) -> bool:
    return _LEN.match(term) is not None


def is_elem(term: str) -> bool:
    return _ELEM.match(term) is not None


def is_posvar(term: str) -> bool:
    return _POS.match(term) is not None


def is_mhd(term: str) -> bool:
    return _MHD.match(term) is not None


def is_mtl(term: str) -> bool:
    return _MTL.match(term) is not None


def word_of(term: str) -> Optional[str]:
    """The word variable a term refers to, or None for data/position terms."""
    for rx in (_HD, _LEN, _ELEM, _MHD, _MTL):
        m = rx.match(term)
        if m:
            return m.group("w")
    return None


def elem_parts(term: str) -> Optional[Tuple[str, str]]:
    """For an element term ``w[y]`` return (w, y)."""
    m = _ELEM.match(term)
    if m:
        return (m.group("w"), m.group("y"))
    return None


def words_of_terms(terms: Iterable[str]) -> FrozenSet[str]:
    """All word variables mentioned by a collection of terms."""
    out: Set[str] = set()
    for t in terms:
        w = word_of(t)
        if w is not None:
            out.add(w)
    return frozenset(out)


def terms_of_word(word: str, terms: Iterable[str]) -> FrozenSet[str]:
    """The subset of ``terms`` that mention ``word``."""
    return frozenset(t for t in terms if word_of(t) == word)


def rename_term(term: str, mapping) -> str:
    """Rename the word variable inside a term (data terms pass through)."""
    m = _HD.match(term)
    if m:
        return hd(mapping.get(m.group("w"), m.group("w")))
    m = _LEN.match(term)
    if m:
        return length(mapping.get(m.group("w"), m.group("w")))
    m = _ELEM.match(term)
    if m:
        return elem(mapping.get(m.group("w"), m.group("w")), m.group("y"))
    m = _MHD.match(term)
    if m:
        return mhd(mapping.get(m.group("w"), m.group("w")))
    m = _MTL.match(term)
    if m:
        return mtl(mapping.get(m.group("w"), m.group("w")))
    return term


def entry_copy(name: str) -> str:
    """The entry-point snapshot copy of a program variable or node name."""
    return f"{name}$0"


def is_entry_copy(name: str) -> bool:
    return name.endswith("$0")
