"""Generic clause reinterpretation: the split#/concat# engine for AU.

Both unfolding (``split#``, paper formula G) and folding (``concat#``,
paper formula F) re-express a universal formula over a *recomposed*
vocabulary: each new word is a concatenation of segments of old words.
This module implements that re-expression once, uniformly for every guard
pattern:

1. A *bridge* polyhedron relates old and new quantifier-free terms
   (``len`` sums, ``hd`` identities, plus anchor terms for heads of tails).
2. For every guard instance over the new vocabulary, the engine enumerates
   the placements of its position variables into the segments, instantiates
   the old clauses at the placed positions (checking guard applicability by
   entailment), and projects onto the new vocabulary; the clause body is
   the join over all feasible placements, and *bottom* when none is
   feasible (a provably vacuous clause).

The precision argument mirrors the paper's closedness requirement on the
pattern set: the registry's closure rules pull in the suffix-alignment
(``SUF2``) and head-anchor (``BEF2``) patterns that make equality tracking
survive list traversals.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.datawords import terms as T
from repro.datawords.patterns import GuardInstance, PatternSet
from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron

WHOLE = "whole"
HEAD = "head"
TAIL = "tail"


@dataclass(frozen=True)
class Segment:
    """A piece of an old word: all of it, its head letter, or its tail."""

    kind: str
    word: str

    def length_expr(self) -> LinExpr:
        if self.kind == WHOLE:
            return LinExpr.var(T.length(self.word))
        if self.kind == HEAD:
            return LinExpr.const_expr(1)
        return LinExpr.var(T.length(self.word)) - 1


@dataclass(frozen=True)
class Anchor:
    """A symbolic position inside an old word with its element term."""

    word: str
    pos: LinExpr  # position inside the old word (0 = head)
    elem: str  # term naming the element at that position


@dataclass
class _Placement:
    """Where one new-guard position variable lands."""

    constraints: List[Constraint]  # e.g. y = offset + j, bounds on j
    elem_term: str  # the old term equal to new_word[y]
    anchor: Optional[Anchor]  # present when the position is quantified


class Recomposition:
    """new word -> ordered segments of old words.

    Words absent from ``composition`` are unchanged (identity); their terms
    keep their names on both sides.
    """

    def __init__(
        self,
        composition: Mapping[str, Sequence[Segment]],
        unchanged: Iterable[str],
    ):
        self.composition: Dict[str, Tuple[Segment, ...]] = {
            w: tuple(segs) for w, segs in composition.items()
        }
        # A freshly composed word may be listed in the caller's vocabulary;
        # the composition always wins over "unchanged".
        self.unchanged = frozenset(unchanged) - set(self.composition)
        self.old_changed = frozenset(
            seg.word for segs in self.composition.values() for seg in segs
        )
        self.new_words = frozenset(self.composition) | self.unchanged
        overlap = self.old_changed & self.unchanged
        if overlap:
            raise ValueError(f"words both changed and unchanged: {overlap}")

    def length_bridge(self) -> List[Constraint]:
        """``len(new) = sum of segment lengths`` for every composed word."""
        out = []
        for new, segs in self.composition.items():
            total = LinExpr.const_expr(0)
            for seg in segs:
                total = total + seg.length_expr()
            out.append(Constraint.eq(LinExpr.var(T.length(new)), total))
        return out

    def hd_bridge(self) -> Tuple[List[Constraint], List[Anchor]]:
        """``hd(new)`` definitions; heads of tail-segments need anchors."""
        cons: List[Constraint] = []
        anchors: List[Anchor] = []
        for new, segs in self.composition.items():
            first = segs[0]
            if first.kind in (WHOLE, HEAD):
                cons.append(
                    Constraint.eq(
                        LinExpr.var(T.hd(new)), LinExpr.var(T.hd(first.word))
                    )
                )
            else:  # TAIL: hd(new) is the old word's letter at position 1
                anchors.append(
                    Anchor(first.word, LinExpr.const_expr(1), T.hd(new))
                )
        return cons, anchors

    def tail_anchor_terms(self) -> List[Anchor]:
        """Anchors for the head of every tail segment (not only leading)."""
        anchors = []
        for new, segs in self.composition.items():
            offset = LinExpr.const_expr(0)
            for i, seg in enumerate(segs):
                if seg.kind == TAIL and i > 0:
                    anchors.append(
                        Anchor(
                            seg.word,
                            LinExpr.const_expr(1),
                            f"{seg.word}[@1]",
                        )
                    )
                offset = offset + seg.length_expr()
        return anchors

    def nonempty_constraints(self) -> List[Constraint]:
        """Old words are non-empty; tail segments need len >= 2."""
        cons = []
        for segs in self.composition.values():
            for seg in segs:
                minimum = 2 if seg.kind == TAIL else 1
                cons.append(
                    Constraint.ge(LinExpr.var(T.length(seg.word)), minimum)
                )
        return cons


def _placements_for(
    var: str, word: str, reco: Recomposition, aux_counter: List[int]
) -> List[_Placement]:
    """All placements of position variable ``var`` ranging over ``word``."""
    if word in reco.unchanged:
        return [_Placement([], T.elem(word, var), Anchor(word, LinExpr.var(var), T.elem(word, var)))]
    placements: List[_Placement] = []
    offset = LinExpr.const_expr(0)
    y = LinExpr.var(var)
    for seg in reco.composition[word]:
        if seg.kind == HEAD:
            placements.append(
                _Placement([Constraint.eq(y, offset)], T.hd(seg.word), None)
            )
        elif seg.kind == WHOLE:
            # head of the segment
            placements.append(
                _Placement([Constraint.eq(y, offset)], T.hd(seg.word), None)
            )
            # inside the tail of the segment: y = offset + j, j in tl(word)
            aux_counter[0] += 1
            j = f"$j{aux_counter[0]}"
            elem = T.elem(seg.word, j)
            placements.append(
                _Placement(
                    [
                        Constraint.eq(y, offset + LinExpr.var(j)),
                        Constraint.ge(LinExpr.var(j), 1),
                        Constraint.le(
                            LinExpr.var(j),
                            LinExpr.var(T.length(seg.word)) - 1,
                        ),
                    ],
                    elem,
                    Anchor(seg.word, LinExpr.var(j), elem),
                )
            )
        else:  # TAIL: letters are word[1 .. len-1]
            # head of the tail segment: old position 1
            placements.append(
                _Placement(
                    [Constraint.eq(y, offset)],
                    f"{seg.word}[@1]",
                    Anchor(seg.word, LinExpr.const_expr(1), f"{seg.word}[@1]"),
                )
            )
            # deeper: y = offset + j - 1 with old position j in [2, len-1]
            aux_counter[0] += 1
            j = f"$j{aux_counter[0]}"
            elem = T.elem(seg.word, j)
            placements.append(
                _Placement(
                    [
                        Constraint.eq(y, offset + LinExpr.var(j) - 1),
                        Constraint.ge(LinExpr.var(j), 2),
                        Constraint.le(
                            LinExpr.var(j),
                            LinExpr.var(T.length(seg.word)) - 1,
                        ),
                    ],
                    elem,
                    Anchor(seg.word, LinExpr.var(j), elem),
                )
            )
        offset = offset + seg.length_expr()
    return placements


def _instantiate_old_clauses(
    clauses: Mapping[GuardInstance, Polyhedron],
    anchors: Sequence[Anchor],
    context: Polyhedron,
    rounds: int = 2,
) -> Polyhedron:
    """Conjoin the bodies of old clauses at every applicable anchor tuple.

    A clause ``forall y. g -> U`` contributes ``U[y := p]`` whenever the
    current context entails ``g[y := p]`` for a tuple of anchors ``p`` whose
    words match the clause's.  Applicability can be enabled by previously
    imported bodies, so the process runs for a couple of rounds.
    """
    current = context
    by_word: Dict[str, List[Anchor]] = {}
    for a in anchors:
        by_word.setdefault(a.word, []).append(a)
    for _ in range(rounds):
        additions: List[Constraint] = []
        for gi, body in clauses.items():
            if body.is_top():
                continue
            var_word = gi.var_word()
            pools = []
            applicable = True
            for v in gi.posvars():
                pool = by_word.get(var_word[v], [])
                if not pool:
                    applicable = False
                    break
                pools.append([(v, a) for a in pool])
            if not applicable or not pools:
                continue
            guard_cons = list(gi.guard_poly().constraints)
            for assignment in itertools.product(*pools):
                subst: Dict[str, LinExpr] = {}
                elem_rename: Dict[str, str] = {}
                for v, anchor in assignment:
                    subst[v] = anchor.pos
                    elem_rename[T.elem(var_word[v], v)] = anchor.elem
                ok = True
                for g in guard_cons:
                    inst = g.substitute(subst)
                    if not current.entails(inst):
                        ok = False
                        break
                if not ok:
                    continue
                if body.is_bottom():
                    # A vacuous clause whose guard is satisfiable in the
                    # context would be unsound to instantiate; the guard
                    # check above passed, so the context itself must be
                    # infeasible -- return bottom.
                    return Polyhedron.bottom()
                for c in body.constraints:
                    additions.append(c.rename(elem_rename).substitute(subst))
        if not additions:
            break
        new = current.meet_constraints(additions)
        if new.constraints == current.constraints:
            break
        current = new
    return current


def _filtered_context(E: Polyhedron, relevant: Set[str]) -> List[Constraint]:
    """Constraints of E whose support lies in the relevant terms.

    A cheap (sound) alternative to projection: dropping constraints only
    weakens the context used for guard-applicability checks.
    """
    out = []
    for c in E.constraints:
        words = T.words_of_terms(c.support())
        if all(w in relevant for w in words):
            out.append(c)
    return out


def reinterpret(
    old_E: Polyhedron,
    old_clauses: Mapping[GuardInstance, Polyhedron],
    reco: Recomposition,
    patterns: PatternSet,
    data_vars: Iterable[str] = (),
) -> Tuple[Polyhedron, Dict[GuardInstance, Polyhedron]]:
    """Re-express (E, clauses) over the recomposed vocabulary.

    Returns the new quantifier-free part and the new clause map (sparse:
    missing entries are top).
    """
    length_bridge = reco.length_bridge()
    hd_bridge, hd_anchors = reco.hd_bridge()
    base = old_E.meet_constraints(
        length_bridge + hd_bridge + reco.nonempty_constraints()
    )
    if base.is_bottom():
        return Polyhedron.bottom(), {}

    # Step 1: the new quantifier-free part E'.
    context = _instantiate_old_clauses(old_clauses, hd_anchors, base)
    new_terms = _new_vocab_terms(reco, data_vars)
    new_E = context.project(
        [t for t in context.support() if _must_eliminate(t, reco, frozenset())]
    )

    # Step 2: clause bodies over the new vocabulary.
    new_clauses: Dict[GuardInstance, Polyhedron] = {}
    changed = set(reco.composition)
    has_info = _info_words(old_E, old_clauses)
    for gi in patterns.instances(sorted(reco.new_words)):
        words = set(gi.words)
        if not (words & changed):
            body = _carry_unchanged_clause(gi, old_clauses, reco, new_terms)
            if body is not None:
                new_clauses[gi] = body
            continue
        involved_old = set()
        sources: List[Set[str]] = []
        for w in words:
            if w in changed:
                src = {s.word for s in reco.composition[w]}
            else:
                src = {w}
            sources.append(src)
            involved_old |= src
        if not (involved_old & has_info):
            continue  # body would be top anyway
        if len(sources) == 2 and sources[0] != sources[1]:
            if not _related(sources[0], sources[1], old_E, old_clauses):
                continue  # no derivable cross-word relation
        body = _compute_clause_body(
            gi, old_E, old_clauses, reco, hd_anchors, new_terms, data_vars
        )
        if body is not None:
            new_clauses[gi] = body
    return new_E, new_clauses


def _new_vocab_terms(reco: Recomposition, data_vars: Iterable[str]) -> Set[str]:
    terms: Set[str] = set(data_vars)
    for w in reco.new_words:
        terms.add(T.hd(w))
        terms.add(T.length(w))
    return terms


def _must_eliminate(term: str, reco: Recomposition, keep_posvars: frozenset) -> bool:
    """Terms that cannot appear in the re-expressed value.

    These are the terms of the (aliased) old changed words, auxiliary
    position variables, and element/position terms whose position variable
    is not one of the target guard's.
    """
    w = T.word_of(term)
    if w is not None and w in reco.old_changed:
        return True
    parts = T.elem_parts(term)
    if parts is not None:
        return parts[1] not in keep_posvars
    if term.startswith("$j"):
        return True
    if T.is_posvar(term):
        return term not in keep_posvars
    return False


def _info_words(
    old_E: Polyhedron, old_clauses: Mapping[GuardInstance, Polyhedron]
) -> Set[str]:
    """Old words about whose *contents* something is known.

    Length-only facts produce length-only clause bodies, which the body
    pruning would discard anyway -- only stored clauses and ``hd`` facts
    warrant the (expensive) clause recomputation.
    """
    info: Set[str] = set()
    for gi, body in old_clauses.items():
        if not body.is_top():
            info |= set(gi.words)
    for term in old_E.support():
        if T.is_hd(term):
            info.add(T.word_of(term))
    return info


def _related(
    src1: Set[str],
    src2: Set[str],
    old_E: Polyhedron,
    old_clauses: Mapping[GuardInstance, Polyhedron],
) -> bool:
    """Can the contents of the two source groups be related at all?

    A cross-word clause body can only tie elements of both groups when an
    old clause already spans them, or some single E constraint links their
    head terms.  Skipping unrelated pairs is a pure precision no-op (the
    computed body would prune to top) and a large time saver.
    """
    for gi, body in old_clauses.items():
        if body.is_top():
            continue
        gw = set(gi.words)
        spans = gw & src1 and gw & src2
        mentions = T.words_of_terms(body.support())
        if spans or (
            (gw | mentions) & src1 and (gw | mentions) & src2
        ):
            return True
    for c in old_E.constraints:
        words = T.words_of_terms(c.support())
        if words & src1 and words & src2:
            return True
    return False


def _carry_unchanged_clause(
    gi: GuardInstance,
    old_clauses: Mapping[GuardInstance, Polyhedron],
    reco: Recomposition,
    new_terms: Set[str],
) -> Optional[Polyhedron]:
    """A clause purely over unchanged words survives, with its body's
    references to changed-word terms projected out (or rewritten when a
    bridge equality exists, e.g. split keeps ``hd``)."""
    body = old_clauses.get(gi)
    if body is None or body.is_top():
        return None
    if body.is_bottom():
        return body
    keep_posvars = frozenset(gi.posvars())
    drop = [t for t in body.support() if _must_eliminate(t, reco, keep_posvars)]
    if not drop:
        return body
    # Give the projection a chance to rewrite through the bridge first
    # (e.g. len(old) = len(head) + len(tail) after a split).
    bridged = body.meet_constraints(reco.length_bridge() + reco.hd_bridge()[0])
    out = bridged.project(
        [t for t in bridged.support() if _must_eliminate(t, reco, keep_posvars)]
    )
    return None if out.is_top() else out


def _compute_clause_body(
    gi: GuardInstance,
    old_E: Polyhedron,
    old_clauses: Mapping[GuardInstance, Polyhedron],
    reco: Recomposition,
    hd_anchors: Sequence[Anchor],
    new_terms: Set[str],
    data_vars: Iterable[str],
) -> Optional[Polyhedron]:
    var_word = gi.var_word()
    aux_counter = [0]
    pools: List[List[Tuple[str, _Placement]]] = []
    for v in gi.posvars():
        options = _placements_for(v, var_word[v], reco, aux_counter)
        pools.append([(v, p) for p in options])
    guard = gi.guard_poly()
    base_cons = (
        reco.length_bridge()
        + reco.hd_bridge()[0]
        + reco.nonempty_constraints()
        + list(guard.constraints)
    )
    relevant = set(reco.old_changed) | set(gi.words) | set(reco.unchanged)
    e_cons = _filtered_context(old_E, relevant)
    cases: List[Polyhedron] = []
    keep_posvars = frozenset(gi.posvars())
    for combo in itertools.product(*pools) if pools else [()]:
        cons = list(base_cons) + list(e_cons)
        anchors: List[Anchor] = list(hd_anchors)
        for v, placement in combo:
            cons.extend(placement.constraints)
            cons.append(
                Constraint.eq(
                    LinExpr.var(T.elem(var_word[v], v)),
                    LinExpr.var(placement.elem_term),
                )
            )
            if placement.anchor is not None:
                anchors.append(placement.anchor)
        ctx = Polyhedron(cons)
        if ctx.is_bottom():
            continue
        enriched = _instantiate_old_clauses(old_clauses, anchors, ctx)
        if enriched.is_bottom():
            continue
        cases.append(
            enriched.project(
                [
                    t
                    for t in enriched.support()
                    if _must_eliminate(t, reco, keep_posvars)
                ]
            )
        )
    if not cases:
        return Polyhedron.bottom()  # provably vacuous guard
    body = cases[0]
    for c in cases[1:]:
        body = body.join(c)
    return None if body.is_top() else body
