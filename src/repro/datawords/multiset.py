"""The AM domain: multiset constraints as linear equations (paper §3.3).

An element is a conjunction of equalities ``u1 ⊎ … ⊎ us = v1 ⊎ … ⊎ vt``
over basic multiset terms ``mhd(n)``, ``mtl(n)`` and data variables (each
data variable denotes the singleton containing its value).  As in the
paper, such a conjunction is represented by linear constraints -- here a
row space of homogeneous linear equations over the terms, kept in reduced
row echelon form with exact rational arithmetic.

Entailment is row-space inclusion, the join is row-space intersection (the
equalities implied by both sides), and the lattice is finite for a finite
vocabulary so the widening is the join (paper: "there is no need for a
widening operator").
"""

from __future__ import annotations

from collections import Counter
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.datawords import terms as T
from repro.datawords.base import LDWDomain
from repro.numeric.linexpr import Constraint, EQ, LinExpr
from repro.numeric.linalg import Row, nullspace as _nullspace, reduce_against as _reduce_against, rref as _rref



class MultisetValue:
    """An immutable AM element (row space of multiset equalities)."""

    __slots__ = ("rows", "is_bot")

    def __init__(self, rows: Iterable[Row] = (), bottom: bool = False):
        self.is_bot = bottom
        if bottom:
            self.rows: Tuple[Row, ...] = ()
        else:
            materialized = [dict(r) for r in rows if any(v != 0 for v in r.values())]
            columns = _columns(materialized)
            self.rows = tuple(_rref(materialized, columns))

    def support(self) -> frozenset:
        out: Set[str] = set()
        for r in self.rows:
            out |= set(r)
        return frozenset(out)

    def key(self) -> Tuple:
        if self.is_bot:
            return ("bottom",)
        return tuple(
            tuple(sorted(r.items())) for r in sorted(self.rows, key=lambda r: sorted(r))
        )

    def __eq__(self, other) -> bool:
        return isinstance(other, MultisetValue) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        if self.is_bot:
            return "AM(bottom)"
        if not self.rows:
            return "AM(top)"
        return "AM(" + " & ".join(_format_row(r) for r in self.rows) + ")"


def _columns(rows: Iterable[Row]) -> List[str]:
    cols: Set[str] = set()
    for r in rows:
        cols |= set(r)
    return sorted(cols)


def _format_row(row: Row) -> str:
    pos = [(c, k) for c, k in sorted(row.items()) if k > 0]
    neg = [(c, -k) for c, k in sorted(row.items()) if k < 0]
    def side(parts):
        if not parts:
            return "0"
        return " + ".join(c if k == 1 else f"{k}*{c}" for c, k in parts)
    return f"{side(pos)} = {side(neg)}"


class MultisetDomain(LDWDomain):
    """Operations over :class:`MultisetValue` (the paper's AM)."""

    # -- lattice -----------------------------------------------------------

    def top(self) -> MultisetValue:
        return MultisetValue(())

    def bottom(self) -> MultisetValue:
        return MultisetValue((), bottom=True)

    def is_bottom(self, value: MultisetValue) -> bool:
        return value.is_bot

    def leq(self, value1: MultisetValue, value2: MultisetValue) -> bool:
        if value1.is_bot:
            return True
        if value2.is_bot:
            return False
        basis = list(value1.rows)
        columns = _columns(list(basis) + list(value2.rows))
        return all(not _reduce_against(r, basis, columns) for r in value2.rows)

    def join(self, value1: MultisetValue, value2: MultisetValue) -> MultisetValue:
        if value1.is_bot:
            return value2
        if value2.is_bot:
            return value1
        rows_a = list(value1.rows)
        rows_b = list(value2.rows)
        if not rows_a or not rows_b:
            return MultisetValue(())
        columns = _columns(rows_a + rows_b)
        # span(A) ∩ span(B): solve sum x_i A_i - sum y_j B_j = 0 (per column),
        # i.e. find the null space of the (columns x (|A|+|B|)) matrix, then
        # map each null vector back through A.
        n_a, n_b = len(rows_a), len(rows_b)
        eq_rows: List[Row] = []
        for col in columns:
            row: Row = {}
            for i, a in enumerate(rows_a):
                k = a.get(col)
                if k:
                    row[f"x{i}"] = k
            for j, b in enumerate(rows_b):
                k = b.get(col)
                if k:
                    row[f"z{j}"] = -k
            if row:
                eq_rows.append(row)
        unknowns = [f"x{i}" for i in range(n_a)] + [f"z{j}" for j in range(n_b)]
        null_basis = _nullspace(eq_rows, unknowns)
        out_rows: List[Row] = []
        for vec in null_basis:
            combo: Row = {}
            for i, a in enumerate(rows_a):
                k = vec.get(f"x{i}")
                if k:
                    for c, v in a.items():
                        combo[c] = combo.get(c, 0) + k * v
            combo = {c: v for c, v in combo.items() if v != 0}
            if combo:
                out_rows.append(combo)
        return MultisetValue(out_rows)

    def meet(self, value1: MultisetValue, value2: MultisetValue) -> MultisetValue:
        if value1.is_bot or value2.is_bot:
            return self.bottom()
        return MultisetValue(list(value1.rows) + list(value2.rows))

    def widen(self, value1: MultisetValue, value2: MultisetValue) -> MultisetValue:
        # Finite lattice for a finite vocabulary (paper §3.3): join suffices.
        return self.join(value1, value2)

    # -- vocabulary ----------------------------------------------------------

    def rename_words(self, value: MultisetValue, mapping: Mapping[str, str]) -> MultisetValue:
        if value.is_bot:
            return value
        rows = [
            {T.rename_term(c, mapping): k for c, k in r.items()} for r in value.rows
        ]
        return MultisetValue(rows)

    def project_words(self, value: MultisetValue, words: Iterable[str]) -> MultisetValue:
        cols = set()
        for w in words:
            cols.add(T.mhd(w))
            cols.add(T.mtl(w))
        return self._project_columns(value, cols)

    def forget_data(self, value: MultisetValue, dvars: Iterable[str]) -> MultisetValue:
        return self._project_columns(value, set(dvars))

    def _project_columns(self, value: MultisetValue, cols: Set[str]) -> MultisetValue:
        if value.is_bot:
            return value
        present = value.support() & cols
        if not present:
            return value
        all_cols = _columns(list(value.rows))
        ordering = sorted(present) + [c for c in all_cols if c not in present]
        reduced = _rref([dict(r) for r in value.rows], ordering)
        kept = [r for r in reduced if not (set(r) & present)]
        return MultisetValue(kept)

    def add_singleton_word(self, value: MultisetValue, word: str) -> MultisetValue:
        if value.is_bot:
            return value
        rows = list(value.rows)
        rows.append({T.mtl(word): Fraction(1)})  # mtl(word) = emptyset
        return MultisetValue(rows)

    # -- structural transformers -----------------------------------------------

    def concat(self, value: MultisetValue, target: str, parts: Sequence[str]) -> MultisetValue:
        if value.is_bot or len(parts) == 1 and parts[0] == target:
            return value
        fresh = "$concat"
        row: Row = {fresh: Fraction(-1), T.mtl(parts[0]): Fraction(1)}
        for p in parts[1:]:
            row[T.mhd(p)] = row.get(T.mhd(p), 0) + 1
            row[T.mtl(p)] = row.get(T.mtl(p), 0) + 1
        rows = list(value.rows) + [row]
        out = MultisetValue(rows)
        drop = {T.mtl(parts[0])}
        for p in parts[1:]:
            drop |= {T.mhd(p), T.mtl(p)}
        out = self._project_columns(out, drop)
        renaming = {fresh: T.mtl(target)}
        if target != parts[0]:
            renaming[T.mhd(parts[0])] = T.mhd(target)
        rows = [{renaming.get(c, c): k for c, k in r.items()} for r in out.rows]
        return MultisetValue(rows)

    def split(self, value: MultisetValue, word: str, tail: str) -> MultisetValue:
        if value.is_bot:
            return value
        # old mtl(word) = mhd(tail) ⊎ mtl(tail); mhd(word) is unchanged;
        # the remaining head word is a singleton (mtl = emptyset).
        rows = []
        for r in value.rows:
            k = r.get(T.mtl(word), Fraction(0))
            new = {c: v for c, v in r.items() if c != T.mtl(word)}
            if k != 0:
                new[T.mhd(tail)] = new.get(T.mhd(tail), 0) + k
                new[T.mtl(tail)] = new.get(T.mtl(tail), 0) + k
            rows.append(new)
        rows.append({T.mtl(word): Fraction(1)})
        return MultisetValue(rows)

    def restrict_len1(self, value: MultisetValue, word: str) -> MultisetValue:
        if value.is_bot:
            return value
        rows = list(value.rows)
        rows.append({T.mtl(word): Fraction(1)})
        return MultisetValue(rows)

    # -- data transformers --------------------------------------------------------

    def _term_of_expr(self, expr: Optional[LinExpr]) -> Optional[str]:
        """The AM term equal to a numeric expression, when one exists."""
        if expr is None or expr.const != 0 or len(expr.coeffs) != 1:
            return None
        (term, coeff), = expr.coeffs.items()
        if coeff != 1:
            return None
        if T.is_hd(term):
            return T.mhd(T.word_of(term))
        if T.is_len(term) or T.is_elem(term):
            return None
        return term  # a data variable

    def assign_hd(self, value: MultisetValue, word: str, expr: Optional[LinExpr]) -> MultisetValue:
        out = self._project_columns(value, {T.mhd(word)})
        rhs = self._term_of_expr(expr)
        if rhs is not None and rhs != T.mhd(word):
            rows = list(out.rows)
            rows.append({T.mhd(word): Fraction(1), rhs: Fraction(-1)})
            out = MultisetValue(rows)
        return out

    def assign_data(self, value: MultisetValue, dvar: str, expr: Optional[LinExpr]) -> MultisetValue:
        out = self._project_columns(value, {dvar})
        rhs = self._term_of_expr(expr)
        if rhs is not None and rhs != dvar:
            rows = list(out.rows)
            rows.append({dvar: Fraction(1), rhs: Fraction(-1)})
            out = MultisetValue(rows)
        return out

    def meet_constraint(self, value: MultisetValue, constraint: Constraint) -> MultisetValue:
        """Keep only singleton equalities (``hd(n)=hd(m)``, ``hd(n)=d``, ``d=d'``)."""
        if value.is_bot or constraint.rel != EQ:
            return value
        expr = constraint.expr
        if expr.const != 0 or len(expr.coeffs) != 2:
            return value
        items = sorted(expr.coeffs.items())
        (t1, k1), (t2, k2) = items
        if k1 + k2 != 0 or abs(k1) != 1:
            return value
        m1 = self._term_of_expr(LinExpr({t1: 1}))
        m2 = self._term_of_expr(LinExpr({t2: 1}))
        if m1 is None or m2 is None:
            return value
        rows = list(value.rows)
        rows.append({m1: Fraction(1), m2: Fraction(-1)})
        return MultisetValue(rows)

    def entails_constraint(self, value: MultisetValue, constraint: Constraint) -> bool:
        if value.is_bot:
            return True
        if constraint.rel != EQ:
            return False
        expr = constraint.expr
        if expr.const != 0:
            return False
        row: Row = {}
        for term, k in expr.coeffs.items():
            m = self._term_of_expr(LinExpr({term: 1}))
            if m is None:
                return False
            row[m] = row.get(m, 0) + k
        row = {c: k for c, k in row.items() if k != 0}
        if not row:
            return True
        basis = list(value.rows)
        columns = _columns(basis + [row])
        return not _reduce_against(row, basis, columns)

    def entails_row(self, value: MultisetValue, row: Row) -> bool:
        if value.is_bot:
            return True
        basis = list(value.rows)
        columns = _columns(basis + [dict(row)])
        return not _reduce_against(dict(row), basis, columns)

    def add_word_copy_eq(self, value: MultisetValue, word: str, copy: str) -> MultisetValue:
        """paper eq. (I): eqm(n, n0): mhd(n)=mhd(n0) ∧ mtl(n)=mtl(n0)."""
        if value.is_bot:
            return value
        rows = list(value.rows)
        rows.append({T.mhd(word): Fraction(1), T.mhd(copy): Fraction(-1)})
        rows.append({T.mtl(word): Fraction(1), T.mtl(copy): Fraction(-1)})
        return MultisetValue(rows)

    def add_ms_eq(self, value: MultisetValue, word: str, copy: str) -> MultisetValue:
        """The weaker ``ms(word) = ms(copy)`` (whole-multiset equality)."""
        if value.is_bot:
            return value
        rows = list(value.rows)
        rows.append(
            {
                T.mhd(word): Fraction(1),
                T.mtl(word): Fraction(1),
                T.mhd(copy): Fraction(-1),
                T.mtl(copy): Fraction(-1),
            }
        )
        return MultisetValue(rows)

    # -- sigma_M support (paper Fig. 8) ------------------------------------------

    def membership_decompositions(self, term: str, value: MultisetValue) -> List[List[Tuple[str, int]]]:
        """Sound decompositions ``term ⊑ ⊎ rhs`` derivable from the rows.

        For each (combination of) row(s) where ``term`` can be isolated with
        coefficient -1, the positive-coefficient terms form a multiset union
        that must contain ``term``.  Returns a list of RHS descriptions
        ``[(term, multiplicity), ...]``; single rows and pairwise sums and
        differences of basis rows are explored.
        """
        if value.is_bot:
            return []
        candidates: List[Row] = [dict(r) for r in value.rows]
        base = list(value.rows)
        for i in range(len(base)):
            for j in range(len(base)):
                if i == j:
                    continue
                combo: Row = dict(base[i])
                for c, k in base[j].items():
                    combo[c] = combo.get(c, 0) + k
                combo = {c: k for c, k in combo.items() if k != 0}
                if combo:
                    candidates.append(combo)
                diff: Row = dict(base[i])
                for c, k in base[j].items():
                    diff[c] = diff.get(c, 0) - k
                diff = {c: k for c, k in diff.items() if k != 0}
                if diff:
                    candidates.append(diff)
        out: List[List[Tuple[str, int]]] = []
        seen: Set[Tuple] = set()
        for row in candidates:
            k = row.get(term, Fraction(0))
            if k == 0:
                continue
            inv = Fraction(-1) / k  # exact: never int/int
            scaled = {c: v * inv for c, v in row.items()}
            # term = sum of scaled RHS; positive entries bound term from above.
            rhs = [
                (c, int(v))
                for c, v in sorted(scaled.items())
                if c != term and v > 0 and v.denominator == 1
            ]
            if not rhs:
                continue
            key = tuple(rhs)
            if key not in seen:
                seen.add(key)
                out.append(rhs)
        return out

    # -- evaluation -----------------------------------------------------------------

    def satisfied_by(
        self,
        value: MultisetValue,
        words_env: Mapping[str, Sequence[int]],
        data_env: Mapping[str, int],
    ) -> bool:
        if value.is_bot:
            return False
        for row in value.rows:
            # Scale to integer coefficients first (RREF normalizes leading
            # coefficients to 1, leaving fractions elsewhere); the multiset
            # semantics of a row is that of its integer-scaled form.
            lcm = 1
            for coeff in row.values():
                d = coeff.denominator
                from math import gcd

                lcm = lcm * d // gcd(lcm, d)
            pos: Counter = Counter()
            neg: Counter = Counter()
            ok = True
            for term, coeff in row.items():
                bag = _eval_term(term, words_env, data_env)
                if bag is None:
                    ok = False
                    break
                k = coeff * lcm
                count = int(abs(k))
                target = pos if k > 0 else neg
                for v, c in bag.items():
                    target[v] += c * count
            if not ok:
                continue  # term outside the valuation: vacuously fine
            if pos != neg:
                return False
        return True

    def describe(self, value: MultisetValue) -> str:
        if value.is_bot:
            return "false"
        if not value.rows:
            return "true"
        parts = []
        for row in value.rows:
            parts.append(_format_row_pretty(row))
        return " & ".join(parts)


def _eval_term(
    term: str,
    words_env: Mapping[str, Sequence[int]],
    data_env: Mapping[str, int],
) -> Optional[Counter]:
    if T.is_mhd(term):
        w = T.word_of(term)
        if w not in words_env or not words_env[w]:
            return None
        return Counter([words_env[w][0]])
    if T.is_mtl(term):
        w = T.word_of(term)
        if w not in words_env:
            return None
        return Counter(words_env[w][1:])
    if term in data_env:
        return Counter([data_env[term]])
    return None


def _format_row_pretty(row: Row) -> str:
    """Render, grouping mhd(n)+mtl(n) with equal coefficients as ms(n)."""
    grouped: Dict[str, Fraction] = dict(row)
    words = {T.word_of(c) for c in row if T.is_mhd(c) or T.is_mtl(c)}
    display: Dict[str, Fraction] = {}
    for w in sorted(x for x in words if x):
        h, t = T.mhd(w), T.mtl(w)
        if grouped.get(h) is not None and grouped.get(h) == grouped.get(t):
            display[f"ms({w})"] = grouped.pop(h)
            grouped.pop(t)
    display.update(grouped)
    pos = [(c, k) for c, k in sorted(display.items()) if k > 0]
    neg = [(c, -k) for c, k in sorted(display.items()) if k < 0]
    def side(parts):
        if not parts:
            return "emptyset"
        return " + ".join(c if k == 1 else f"{k}*{c}" for c, k in parts)
    return f"{side(pos)} = {side(neg)}"
