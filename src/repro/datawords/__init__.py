"""Logical data-word (LDW) abstract domains (paper §3).

Words over the integers abstract the data sequences carried by the edges of
the heap backbone.  Two LDW domains are provided, exactly as in the paper:

- :mod:`repro.datawords.universal` -- ``AU``, universally quantified
  first-order formulas ``E ∧ ⋀_g ∀y. g(y) → U_g`` parameterized by a set of
  guard patterns (:mod:`repro.datawords.patterns`) and a numeric base domain.
- :mod:`repro.datawords.multiset` -- ``AM``, conjunctions of equalities
  between unions of multisets, encoded as linear equations.

:mod:`repro.datawords.reinterp` hosts the generic clause-reinterpretation
engine that implements the ``split#``/``concat#`` transformers (unfolding
and folding of words) uniformly for every pattern.
"""

from repro.datawords.base import LDWDomain
from repro.datawords.multiset import MultisetDomain, MultisetValue
from repro.datawords.patterns import (
    GuardInstance,
    Pattern,
    PatternSet,
    PATTERNS,
    pattern_set,
)
from repro.datawords.universal import UniversalDomain, UniversalValue

__all__ = [
    "LDWDomain",
    "MultisetDomain",
    "MultisetValue",
    "UniversalDomain",
    "UniversalValue",
    "GuardInstance",
    "Pattern",
    "PatternSet",
    "PATTERNS",
    "pattern_set",
]
