"""The logical data-words (LDW) domain interface (paper Def. 3.1).

An LDW domain abstracts sets of pairs ``(L, D)`` where ``L`` maps data-word
variables to non-empty integer sequences and ``D`` maps data variables to
integers.  Both concrete domains (:class:`~repro.datawords.universal.
UniversalDomain` and :class:`~repro.datawords.multiset.MultisetDomain`)
implement this interface, which lists exactly the operations the abstract
heap domain and the statement transformers need.

Values are immutable; all operations return fresh values.  Vocabulary
(which word variables exist) is managed by the caller (the heap backbone);
values simply constrain the terms they mention.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.numeric.linexpr import Constraint, LinExpr


class LDWDomain(ABC):
    """Abstract base class for logical data-word domains."""

    # -- lattice -----------------------------------------------------------

    @abstractmethod
    def top(self):
        """The value constraining nothing."""

    @abstractmethod
    def bottom(self):
        """The empty value."""

    @abstractmethod
    def is_bottom(self, value) -> bool:
        ...

    @abstractmethod
    def leq(self, value1, value2) -> bool:
        """Sound approximation of logical implication (paper's ⊑_W)."""

    @abstractmethod
    def join(self, value1, value2):
        ...

    @abstractmethod
    def meet(self, value1, value2):
        ...

    @abstractmethod
    def widen(self, value1, value2):
        ...

    # -- vocabulary management ----------------------------------------------

    @abstractmethod
    def rename_words(self, value, mapping: Mapping[str, str]):
        """Rename word variables throughout."""

    @abstractmethod
    def project_words(self, value, words: Iterable[str]):
        """Existentially quantify (drop) the given word variables."""

    @abstractmethod
    def forget_data(self, value, dvars: Iterable[str]):
        """Existentially quantify the given data variables."""

    @abstractmethod
    def add_singleton_word(self, value, word: str):
        """Introduce a fresh word of length 1 with unconstrained data."""

    # -- structural transformers (paper §4) ----------------------------------

    @abstractmethod
    def concat(self, value, target: str, parts: Sequence[str]):
        """``concat#``: replace ``parts`` by their concatenation ``target``.

        ``parts`` is the left-to-right list of existing word variables;
        ``target`` may equal ``parts[0]`` (the usual fold case).  All other
        parts are removed from the vocabulary.
        """

    @abstractmethod
    def split(self, value, word: str, tail: str):
        """``split#`` (case ``len(word) > 1``): ``word`` keeps the head
        letter only; ``tail`` (fresh) receives the rest."""

    @abstractmethod
    def restrict_len1(self, value, word: str):
        """``split#`` (case ``len(word) == 1``): meet with ``len(word)=1``."""

    def split_last(self, value, word: str, last: str):
        """``split#`` from the right (case ``len(word) > 1``): ``word``
        keeps everything but the last letter; ``last`` (fresh) receives
        the final letter.

        Used by backward (``prev``) materialization.  The generic
        implementation is sound but lossy: the prefix ``word`` is
        havocked (projected, i.e. any non-empty sequence) and ``last``
        introduced as an unconstrained singleton.  Domains with
        positional clauses may override it with a precise right split.
        """
        dropped = self.project_words(value, [word])
        return self.add_singleton_word(dropped, last)

    def advance(self, value, pred: str, word: str, tail: str, all_words=None):
        """Fused cursor advance: ``pred := pred · head(word)``, ``tail :=
        tail(word)`` in one step.

        The default composes ``split`` and ``concat``; domains with
        positional information (AU) override it with a single
        recomposition, which preserves anchor clauses that would die in
        the intermediate state.
        """
        words = list(all_words or [])
        stepped = self.split(value, word, tail)
        return self.concat(stepped, pred, [pred, word])

    # -- data transformers ----------------------------------------------------

    @abstractmethod
    def assign_hd(self, value, word: str, expr: Optional[LinExpr]):
        """``p->data := expr`` where p points to ``word``.

        ``expr`` is over ``hd(...)`` terms and data variables; ``None``
        havocs the head (unknown value).
        """

    @abstractmethod
    def assign_data(self, value, dvar: str, expr: Optional[LinExpr]):
        """``d := expr`` (None havocs)."""

    @abstractmethod
    def meet_constraint(self, value, constraint: Constraint):
        """Conjoin a quantifier-free constraint over hd/len/data terms."""

    @abstractmethod
    def entails_constraint(self, value, constraint: Constraint) -> bool:
        """Does the value entail the quantifier-free constraint?"""

    @abstractmethod
    def add_word_copy_eq(self, value, word: str, copy: str):
        """Conjoin word equality: ``eq≈`` in AU (paper eq. H), ``eqm`` in AM
        (paper eq. I).  Used when snapshotting actual parameters."""

    # -- concrete evaluation (testing oracle) ----------------------------------

    @abstractmethod
    def satisfied_by(
        self,
        value,
        words_env: Mapping[str, Sequence[int]],
        data_env: Mapping[str, int],
    ) -> bool:
        """Evaluate the value on a concrete valuation (soundness oracle)."""

    # -- display ----------------------------------------------------------------

    @abstractmethod
    def describe(self, value) -> str:
        """Human-readable rendering used in summaries and docs."""

    # -- conveniences (shared) ---------------------------------------------------

    def meet_constraints(self, value, constraints: Iterable[Constraint]):
        for c in constraints:
            value = self.meet_constraint(value, c)
        return value

    def join_all(self, values: List):
        if not values:
            return self.bottom()
        out = values[0]
        for v in values[1:]:
            out = self.join(out, v)
        return out

    def equivalent(self, value1, value2) -> bool:
        return self.leq(value1, value2) and self.leq(value2, value1)
