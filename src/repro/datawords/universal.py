"""The AU domain: universally quantified formulas over data words (§3.2).

An element is ``E ∧ ⋀_g ∀y. g(y) → U_g`` where ``E`` constrains the
quantifier-free terms (``hd(w)``, ``len(w)``, data variables) and each
guard pattern instance ``g`` from the domain's pattern set owns a body
``U_g`` over ``E``-terms, the guarded element terms ``w[y]`` and the
position variables ``y``.  Both ``E`` and the bodies live in the
polyhedra-lite numeric domain.

Representation notes:

- the clause map is *sparse*: a missing guard instance means body = top;
- a body equal to ``bottom`` records that the guard is provably vacuous
  under ``E`` (e.g. the word is too short) -- such clauses join and widen
  like bottom, which is the vacuity-aware join precision the analysis of
  loops requires (DESIGN.md §5, decision 2);
- the split#/concat# transformers delegate to the generic
  :mod:`repro.datawords.reinterp` engine.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.datawords import terms as T
from repro.datawords.base import LDWDomain
from repro.datawords.patterns import GuardInstance, PatternSet, pattern_set
from repro.datawords.reinterp import HEAD, Recomposition, Segment, TAIL, WHOLE, reinterpret
from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron


class UniversalValue:
    """An immutable AU element."""

    __slots__ = ("E", "clauses", "is_bot")

    def __init__(
        self,
        E: Polyhedron = None,
        clauses: Mapping[GuardInstance, Polyhedron] = None,
        bottom: bool = False,
    ):
        self.is_bot = bottom or (E is not None and E.is_bottom())
        if self.is_bot:
            self.E = Polyhedron.bottom()
            self.clauses: Dict[GuardInstance, Polyhedron] = {}
        else:
            self.E = E if E is not None else Polyhedron.top()
            self.clauses = {
                gi: body
                for gi, body in (clauses or {}).items()
                if not body.is_top()
            }

    def words(self) -> frozenset:
        out: Set[str] = set()
        for t in self.E.support():
            w = T.word_of(t)
            if w is not None:
                out.add(w)
        for gi in self.clauses:
            out |= set(gi.words)
        return frozenset(out)

    def data_vars(self) -> frozenset:
        out: Set[str] = set()
        for t in self.E.support():
            if T.word_of(t) is None and not T.is_posvar(t):
                out.add(t)
        return frozenset(out)

    def __repr__(self) -> str:
        if self.is_bot:
            return "AU(bottom)"
        parts = [repr(self.E)]
        for gi, body in sorted(self.clauses.items(), key=lambda kv: repr(kv[0])):
            parts.append(f"forall {gi!r}. {body!r}")
        return "AU(" + " ;  ".join(parts) + ")"


class UniversalDomain(LDWDomain):
    """Operations over :class:`UniversalValue`, parameterized by patterns."""

    def __init__(self, patterns: PatternSet = None):
        self.patterns = patterns if patterns is not None else pattern_set("P=", "P1")

    # -- clause access helpers ------------------------------------------------

    def body_of(self, value: UniversalValue, gi: GuardInstance) -> Polyhedron:
        """The effective body: stored, or top."""
        return value.clauses.get(gi, Polyhedron.top())

    def _vacuous(self, value: UniversalValue, gi: GuardInstance) -> bool:
        return value.E.meet(gi.guard_poly()).is_bottom()

    def _effective_body(self, value: UniversalValue, gi: GuardInstance) -> Polyhedron:
        body = value.clauses.get(gi)
        if body is not None:
            return body
        if self._vacuous(value, gi):
            return Polyhedron.bottom()
        return Polyhedron.top()

    # -- lattice ----------------------------------------------------------------

    def top(self) -> UniversalValue:
        return UniversalValue()

    def bottom(self) -> UniversalValue:
        return UniversalValue(bottom=True)

    def is_bottom(self, value: UniversalValue) -> bool:
        return value.is_bot

    def leq(self, value1: UniversalValue, value2: UniversalValue) -> bool:
        if value1.is_bot:
            return True
        if value2.is_bot:
            return False
        if not value1.E.leq(value2.E):
            return False
        for gi, body2 in value2.clauses.items():
            if body2.is_top():
                continue
            body1 = value1.clauses.get(gi, Polyhedron.top())
            context = value1.E.meet(gi.guard_poly()).meet(body1)
            if context.is_bottom():
                continue  # vacuous on the left
            if not context.entails_all(body2.constraints):
                return False
        return True

    def _prune_body(
        self, E: Polyhedron, gi: GuardInstance, body: Polyhedron
    ) -> Polyhedron:
        """Drop body constraints recoverable from E and the guard.

        Uses syntactic keys only (cheap): any use site re-meets the body
        with E and the guard, so such constraints carry no information.
        """
        if body.is_bottom() or body.is_top():
            return body
        context_keys = set()
        for c in tuple(E.constraints) + tuple(gi.guard_poly().constraints):
            context_keys.add(c.key())
            for half in c.halves():
                context_keys.add(half.key())
        kept = [c for c in body.constraints if c.key() not in context_keys]
        if len(kept) == len(body.constraints):
            return body
        return Polyhedron(kept)

    def _merge(self, value1, value2, combine, contextualize: bool) -> UniversalValue:
        E = combine(value1.E, value2.E)
        clauses: Dict[GuardInstance, Polyhedron] = {}
        for gi in set(value1.clauses) | set(value2.clauses):
            b1 = self._effective_body(value1, gi)
            b2 = self._effective_body(value2, gi)
            if contextualize:
                # A body holds together with its own E and guard; meeting
                # them in before the join is the precision the paper gets
                # from joining only isomorphic abstract heaps.
                if not b1.is_bottom():
                    b1 = value1.E.meet(gi.guard_poly()).meet(b1)
                if not b2.is_bottom():
                    b2 = value2.E.meet(gi.guard_poly()).meet(b2)
            merged = self._prune_body(E, gi, combine(b1, b2))
            if not merged.is_top():
                clauses[gi] = merged
        return UniversalValue(E, clauses)

    def join(self, value1: UniversalValue, value2: UniversalValue) -> UniversalValue:
        if value1.is_bot:
            return value2
        if value2.is_bot:
            return value1
        return self._merge(value1, value2, lambda a, b: a.join(b), True)

    def meet(self, value1: UniversalValue, value2: UniversalValue) -> UniversalValue:
        if value1.is_bot or value2.is_bot:
            return self.bottom()
        E = value1.E.meet(value2.E)
        clauses = dict(value1.clauses)
        for gi, body in value2.clauses.items():
            mine = clauses.get(gi)
            clauses[gi] = body if mine is None else mine.meet(body)
        return UniversalValue(E, clauses)

    def widen(self, value1: UniversalValue, value2: UniversalValue) -> UniversalValue:
        if value1.is_bot:
            return value2
        if value2.is_bot:
            return value1
        # No contextualization under widening: meeting E back into the
        # bodies on every round would keep changing their syntactic form
        # and threaten termination of the ascending chain.
        return self._merge(value1, value2, lambda a, b: a.widen(b), False)

    # -- vocabulary ----------------------------------------------------------------

    def rename_words(self, value: UniversalValue, mapping: Mapping[str, str]) -> UniversalValue:
        if value.is_bot:
            return value
        term_map: Dict[str, str] = {}
        for t in value.E.support():
            term_map[t] = T.rename_term(t, mapping)
        E = value.E.rename(term_map)
        clauses = {}
        for gi, body in value.clauses.items():
            body_map = {t: T.rename_term(t, mapping) for t in body.support()}
            clauses[gi.rename(dict(mapping))] = body.rename(body_map)
        return UniversalValue(E, clauses)

    def project_words(self, value: UniversalValue, words: Iterable[str]) -> UniversalValue:
        if value.is_bot:
            return value
        dropped = set(words)
        if not dropped:
            return value
        E = value.E.project(
            [t for t in value.E.support() if T.word_of(t) in dropped]
        )
        clauses = {}
        for gi, body in value.clauses.items():
            if set(gi.words) & dropped:
                continue
            remaining = body.project(
                [t for t in body.support() if T.word_of(t) in dropped]
            )
            if not remaining.is_top():
                clauses[gi] = remaining
        return UniversalValue(E, clauses)

    def forget_data(self, value: UniversalValue, dvars: Iterable[str]) -> UniversalValue:
        if value.is_bot:
            return value
        dropped = set(dvars)
        E = value.E.project([t for t in value.E.support() if t in dropped])
        clauses = {}
        for gi, body in value.clauses.items():
            remaining = body.project([t for t in body.support() if t in dropped])
            if not remaining.is_top():
                clauses[gi] = remaining
        return UniversalValue(E, clauses)

    def add_singleton_word(self, value: UniversalValue, word: str) -> UniversalValue:
        if value.is_bot:
            return value
        E = value.E.meet_constraints(
            [Constraint.eq(LinExpr.var(T.length(word)), 1)]
        )
        return UniversalValue(E, value.clauses)

    # -- structural transformers -------------------------------------------------

    def concat(
        self,
        value: UniversalValue,
        target: str,
        parts: Sequence[str],
        all_words: Iterable[str] = None,
    ) -> UniversalValue:
        if value.is_bot or (len(parts) == 1 and parts[0] == target):
            return value
        alias = {p: f"{p}@old" for p in parts}
        aliased = self.rename_words(value, alias)
        words = set(all_words) if all_words is not None else set(value.words())
        unchanged = words - set(parts)
        reco = Recomposition(
            {target: [Segment(WHOLE, alias[p]) for p in parts]}, unchanged
        )
        E, clauses = reinterpret(
            aliased.E, aliased.clauses, reco, self.patterns, value.data_vars()
        )
        clauses = {gi: self._prune_body(E, gi, b) for gi, b in clauses.items()}
        return UniversalValue(E, clauses)

    def split(
        self,
        value: UniversalValue,
        word: str,
        tail: str,
        all_words: Iterable[str] = None,
    ) -> UniversalValue:
        if value.is_bot:
            return value
        alias = {word: f"{word}@old"}
        aliased = self.rename_words(value, alias)
        aliased = UniversalValue(
            aliased.E.meet_constraints(
                [Constraint.ge(LinExpr.var(T.length(alias[word])), 2)]
            ),
            aliased.clauses,
        )
        if aliased.is_bot:
            return self.bottom()
        words = set(all_words) if all_words is not None else set(value.words())
        unchanged = words - {word}
        reco = Recomposition(
            {
                word: [Segment(HEAD, alias[word])],
                tail: [Segment(TAIL, alias[word])],
            },
            unchanged,
        )
        E, clauses = reinterpret(
            aliased.E, aliased.clauses, reco, self.patterns, value.data_vars()
        )
        clauses = {gi: self._prune_body(E, gi, b) for gi, b in clauses.items()}
        return UniversalValue(E, clauses)

    def advance(
        self,
        value: UniversalValue,
        pred: str,
        word: str,
        tail: str,
        all_words: Iterable[str] = None,
    ) -> UniversalValue:
        """Fused ``pred := pred · head(word)``, ``tail := tail(word)``.

        One recomposition instead of split-then-concat: the head-anchor
        clauses (BEF2) of ``word`` are consumed directly by the placement
        cases of ``pred``'s new clauses, which is what keeps pointwise
        equality with an untouched copy alive across a cursor advance.
        """
        if value.is_bot:
            return value
        alias = {word: f"{word}@old", pred: f"{pred}@old"}
        aliased = self.rename_words(value, alias)
        aliased = UniversalValue(
            aliased.E.meet_constraints(
                [Constraint.ge(LinExpr.var(T.length(alias[word])), 2)]
            ),
            aliased.clauses,
        )
        if aliased.is_bot:
            return self.bottom()
        words = set(all_words) if all_words is not None else set(value.words())
        unchanged = words - {word, pred}
        reco = Recomposition(
            {
                pred: [Segment(WHOLE, alias[pred]), Segment(HEAD, alias[word])],
                tail: [Segment(TAIL, alias[word])],
            },
            unchanged,
        )
        E, clauses = reinterpret(
            aliased.E, aliased.clauses, reco, self.patterns, value.data_vars()
        )
        clauses = {gi: self._prune_body(E, gi, b) for gi, b in clauses.items()}
        return UniversalValue(E, clauses)

    def restrict_len1(self, value: UniversalValue, word: str) -> UniversalValue:
        if value.is_bot:
            return value
        E = value.E.meet_constraints(
            [Constraint.eq(LinExpr.var(T.length(word)), 1)]
        )
        return UniversalValue(E, value.clauses)

    # -- data transformers -----------------------------------------------------------

    def _assign_term(
        self, value: UniversalValue, term: str, expr: Optional[LinExpr]
    ) -> UniversalValue:
        """Shared implementation of hd/data assignment.

        Clause bodies are updated *in context*: a body holds conjointly
        with E, so facts E knows about the assigned term (e.g. ``e >= m``
        just assumed by a branch) must flow into the body before the old
        value of the term is projected away -- otherwise relations like
        ``m >= x[y]`` die at every ``m = e`` in a max-scan.
        """
        if value.is_bot:
            return value
        old_E = value.E
        if expr is None:
            E = old_E.project([term])
        else:
            E = old_E.assign(term, expr)
        clauses = {}
        for gi, body in value.clauses.items():
            touched = term in body.support() or (
                expr is not None and bool(expr.support() & body.support())
            )
            relevant = term in body.support() or any(
                term in c.support() for c in old_E.constraints
            )
            if not (touched or relevant):
                clauses[gi] = body
                continue
            if body.is_bottom():
                clauses[gi] = body
                continue
            contextual = old_E.meet(body)
            if expr is None:
                updated = contextual.project([term])
            else:
                updated = contextual.assign(term, expr)
            clauses[gi] = self._prune_body(E, gi, updated)
        return UniversalValue(E, clauses)

    def assign_hd(self, value: UniversalValue, word: str, expr: Optional[LinExpr]) -> UniversalValue:
        return self._assign_term(value, T.hd(word), expr)

    def assign_data(self, value: UniversalValue, dvar: str, expr: Optional[LinExpr]) -> UniversalValue:
        return self._assign_term(value, dvar, expr)

    def meet_constraint(self, value: UniversalValue, constraint: Constraint) -> UniversalValue:
        if value.is_bot:
            return value
        return UniversalValue(
            value.E.meet_constraints([constraint]), value.clauses
        )

    def entails_constraint(self, value: UniversalValue, constraint: Constraint) -> bool:
        if value.is_bot:
            return True
        return value.E.entails(constraint)

    def meet_clause(
        self, value: UniversalValue, gi: GuardInstance, body: Polyhedron
    ) -> UniversalValue:
        """Conjoin ``∀y. g → body`` (used by assume/assert and call setup)."""
        if value.is_bot:
            return value
        clauses = dict(value.clauses)
        mine = clauses.get(gi)
        clauses[gi] = body if mine is None else mine.meet(body)
        return UniversalValue(value.E, clauses)

    def add_word_copy_eq(self, value: UniversalValue, word: str, copy: str) -> UniversalValue:
        """paper eq. (H): eq≈(word, copy)."""
        if value.is_bot:
            return value
        out = self.meet_constraints(
            value,
            [
                Constraint.eq(LinExpr.var(T.hd(word)), LinExpr.var(T.hd(copy))),
                Constraint.eq(
                    LinExpr.var(T.length(word)), LinExpr.var(T.length(copy))
                ),
            ],
        )
        for name in ("EQ2", "SUF2"):
            if name not in self.patterns:
                continue
            for w1, w2 in ((word, copy), (copy, word)):
                gi = GuardInstance(name, (w1, w2))
                groups = gi.pattern.posvars()
                y1, y2 = groups[0][0], groups[1][0]
                body = Polyhedron.of(
                    Constraint.eq(
                        LinExpr.var(T.elem(w1, y1)), LinExpr.var(T.elem(w2, y2))
                    )
                )
                out = self.meet_clause(out, gi, body)
        if "BEF2" in self.patterns:
            # With len(word) = len(copy) the BEF2 guard (y = len' - len = 0)
            # is vacuous; record bottom so later splits can refine it.
            for w1, w2 in ((word, copy), (copy, word)):
                gi = GuardInstance("BEF2", (w1, w2))
                out = self.meet_clause(out, gi, Polyhedron.bottom())
        return out

    # -- evaluation -----------------------------------------------------------------

    def satisfied_by(
        self,
        value: UniversalValue,
        words_env: Mapping[str, Sequence[int]],
        data_env: Mapping[str, int],
    ) -> bool:
        if value.is_bot:
            return False
        env = dict(data_env)
        for w, letters in words_env.items():
            if not letters:
                return False  # words are non-empty sequences
            env[T.hd(w)] = letters[0]
            env[T.length(w)] = len(letters)
        for c in value.E.constraints:
            if all(t in env for t in c.support()) and not c.holds(env):
                return False
        for gi, body in value.clauses.items():
            if any(w not in words_env for w in gi.words):
                continue
            var_word = gi.var_word()
            posvars = gi.posvars()
            ranges = []
            for v in posvars:
                w = var_word[v]
                ranges.append(range(1, len(words_env[w])))
            guard = gi.guard_poly()
            for combo in _product(ranges):
                point = dict(env)
                for v, val in zip(posvars, combo):
                    point[v] = val
                    point[T.elem(var_word[v], v)] = words_env[var_word[v]][val]
                if not all(c.holds(point) for c in guard.constraints):
                    continue
                for c in body.constraints:
                    if all(t in point for t in c.support()) and not c.holds(point):
                        return False
                if body.is_bottom():
                    return False  # a vacuity claim contradicted by a witness
        return True

    def describe(self, value: UniversalValue) -> str:
        if value.is_bot:
            return "false"
        parts = []
        if not value.E.is_top():
            parts.append(" & ".join(repr(c) for c in value.E.constraints))
        for gi, body in sorted(value.clauses.items(), key=lambda kv: repr(kv[0])):
            if body.is_bottom():
                continue
            inner = " & ".join(repr(c) for c in body.constraints)
            parts.append(f"forall {gi!r}. ({inner})")
        return " & ".join(parts) if parts else "true"


def _product(ranges: List[range]):
    if not ranges:
        yield ()
        return
    import itertools

    yield from itertools.product(*ranges)
