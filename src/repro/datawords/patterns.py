"""Guard patterns for the AU domain (paper §3.2).

A *guard pattern* constrains a vector of universally quantified position
variables: which word's tail each belongs to, a total order / difference
constraints between positions of the same word, and a linear constraint
over the positions (we also allow ``len`` terms of the guarded words, which
gives the suffix-alignment pattern needed for a closed treatment of list
traversals).

The paper's pattern names map onto this registry as::

    P=  (y1 in tl(x), y2 in tl(x'), y1 = y2)        -> EQ2  (+ SUF2 closure)
    P1  (y in tl(x))                                -> ALL1
    P2  (y1, y2 in tl(x), y1 <= y2)                 -> ORD2 (+ CROSS2 closure)
    y in tl(x), y = 1                               -> FST1
    y in tl(x), y = len(x) - 1                      -> LST1
    y1, y2 in tl(x), y2 = y1 + 1                    -> SUCC2

A :class:`GuardInstance` is a pattern applied to concrete word variables;
it knows its position variables, their word memberships, and the guard
constraint as a polyhedron (membership bounds included).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.datawords import terms as T
from repro.numeric.linexpr import Constraint, LinExpr
from repro.numeric.polyhedra import Polyhedron


@dataclass(frozen=True)
class Pattern:
    """A guard pattern schema.

    ``arity`` is the number of distinct word slots; ``vars_per_slot`` gives
    how many position variables quantify over each slot's tail;
    ``extra_guard`` builds the pattern-specific constraints (order,
    equality, alignment) given the word tuple and the position variable
    names grouped by slot.
    """

    name: str
    arity: int
    vars_per_slot: Tuple[int, ...]
    extra_guard: Callable[[Tuple[str, ...], Tuple[Tuple[str, ...], ...]], List[Constraint]]
    description: str = ""

    def posvars(self) -> Tuple[Tuple[str, ...], ...]:
        """Canonical position variable names grouped by word slot."""
        groups: List[Tuple[str, ...]] = []
        index = 1
        for count in self.vars_per_slot:
            groups.append(tuple(T.posvar(index + i) for i in range(count)))
            index += count
        return tuple(groups)

    def instantiate(self, words: Sequence[str]) -> "GuardInstance":
        if len(words) != self.arity:
            raise ValueError(f"pattern {self.name} expects {self.arity} words")
        return GuardInstance(self.name, tuple(words))


_GUARD_CACHE: Dict["GuardInstance", Polyhedron] = {}


@dataclass(frozen=True)
class GuardInstance:
    """A pattern applied to concrete word variables."""

    pattern_name: str
    words: Tuple[str, ...]

    @property
    def pattern(self) -> Pattern:
        return PATTERNS[self.pattern_name]

    def posvars(self) -> Tuple[str, ...]:
        """All position variables, flat, in canonical order."""
        return tuple(v for group in self.pattern.posvars() for v in group)

    def var_word(self) -> Dict[str, str]:
        """position variable -> the word whose tail it ranges over."""
        mapping: Dict[str, str] = {}
        for word, group in zip(self.words, self.pattern.posvars()):
            for v in group:
                mapping[v] = word
        return mapping

    def membership_bounds(self) -> List[Constraint]:
        """``1 <= y <= len(w) - 1`` for every position variable."""
        cons: List[Constraint] = []
        for v, w in self.var_word().items():
            y = LinExpr.var(v)
            cons.append(Constraint.ge(y, 1))
            cons.append(Constraint.le(y, LinExpr.var(T.length(w)) - 1))
        return cons

    def guard_poly(self) -> Polyhedron:
        """The full guard: membership bounds plus pattern constraints."""
        cached = _GUARD_CACHE.get(self)
        if cached is None:
            cons = self.membership_bounds()
            cons.extend(
                self.pattern.extra_guard(self.words, self.pattern.posvars())
            )
            cached = Polyhedron(cons)
            _GUARD_CACHE[self] = cached
        return cached

    def elem_terms(self) -> List[str]:
        """The element terms ``w[y]`` this guard makes available."""
        return [T.elem(w, v) for v, w in self.var_word().items()]

    def rename(self, mapping: Dict[str, str]) -> "GuardInstance":
        return GuardInstance(
            self.pattern_name, tuple(mapping.get(w, w) for w in self.words)
        )

    def __repr__(self) -> str:
        return f"{self.pattern_name}({', '.join(self.words)})"


def _no_extra(words, groups) -> List[Constraint]:
    return []


def _ord2(words, groups) -> List[Constraint]:
    (y1, y2) = groups[0]
    return [Constraint.le(LinExpr.var(y1), LinExpr.var(y2))]


def _succ2(words, groups) -> List[Constraint]:
    (y1, y2) = groups[0]
    return [Constraint.eq(LinExpr.var(y2), LinExpr.var(y1) + 1)]


def _eq2(words, groups) -> List[Constraint]:
    y1 = groups[0][0]
    y2 = groups[1][0]
    return [Constraint.eq(LinExpr.var(y1), LinExpr.var(y2))]


def _suf2(words, groups) -> List[Constraint]:
    # y2 - y1 = len(w2) - len(w1): w1 aligned with the suffix of w2.
    y1 = groups[0][0]
    y2 = groups[1][0]
    w1, w2 = words
    return [
        Constraint.eq(
            LinExpr.var(y2) - LinExpr.var(y1),
            LinExpr.var(T.length(w2)) - LinExpr.var(T.length(w1)),
        )
    ]


def _bef2(words, groups) -> List[Constraint]:
    # y2 = len(w2) - len(w1): the position of w2 aligned with hd(w1) when
    # w1 is a suffix of w2 (the body typically relates w2[y2] with hd(w1)).
    y2 = groups[1][0]
    w1, w2 = words
    return [
        Constraint.eq(
            LinExpr.var(y2),
            LinExpr.var(T.length(w2)) - LinExpr.var(T.length(w1)),
        )
    ]


def _fst1(words, groups) -> List[Constraint]:
    return [Constraint.eq(LinExpr.var(groups[0][0]), 1)]


def _lst1(words, groups) -> List[Constraint]:
    (w,) = words
    return [
        Constraint.eq(
            LinExpr.var(groups[0][0]), LinExpr.var(T.length(w)) - 1
        )
    ]


PATTERNS: Dict[str, Pattern] = {
    "ALL1": Pattern(
        "ALL1", 1, (1,), _no_extra, "forall y in tl(x)  [paper's P1]"
    ),
    "ORD2": Pattern(
        "ORD2", 1, (2,), _ord2, "forall y1 <= y2 in tl(x)  [paper's P2]"
    ),
    "SUCC2": Pattern(
        "SUCC2", 1, (2,), _succ2, "forall y1, y2 = y1+1 in tl(x)"
    ),
    "EQ2": Pattern(
        "EQ2", 2, (1, 1), _eq2, "forall y1 in tl(x), y2 in tl(x'), y1 = y2  [paper's P=]"
    ),
    "SUF2": Pattern(
        "SUF2", 2, (1, 1), _suf2,
        "forall y1 in tl(x), y2 in tl(x'), y2 - y1 = len(x') - len(x)",
    ),
    "CROSS2": Pattern(
        "CROSS2", 2, (1, 1), _no_extra, "forall y1 in tl(x), y2 in tl(x')"
    ),
    "BEF2": Pattern(
        "BEF2", 2, (0, 1), _bef2,
        "forall y in tl(x'), y = len(x') - len(x)  (anchor of hd(x) in x')",
    ),
    "FST1": Pattern("FST1", 1, (1,), _fst1, "forall y in tl(x), y = 1"),
    "LST1": Pattern(
        "LST1", 1, (1,), _lst1, "forall y in tl(x), y = len(x) - 1"
    ),
}


class PatternSet(frozenset):
    """A frozen set of pattern names, closed for the concat#/split# engine.

    The paper requires the pattern set to be *closed* (under projection) for
    ``concat#`` to be precise; the :func:`closure` applied at construction
    adds the helper patterns each base pattern needs (e.g. ``EQ2`` pulls in
    ``SUF2``, which tracks suffix alignment while a list is traversed).
    """

    def __new__(cls, names: Iterable[str]):
        return super().__new__(cls, closure(names))

    def instances(self, words: Sequence[str]) -> List[GuardInstance]:
        """Every guard instance of this set over a vocabulary of words."""
        word_list = sorted(words)
        out: List[GuardInstance] = []
        for name in sorted(self):
            pattern = PATTERNS[name]
            if pattern.arity == 1:
                out.extend(pattern.instantiate((w,)) for w in word_list)
            else:
                for w1 in word_list:
                    for w2 in word_list:
                        if w1 != w2:
                            out.append(pattern.instantiate((w1, w2)))
        return out

    def __repr__(self) -> str:
        return "PatternSet({" + ", ".join(sorted(self)) + "})"


_CLOSURE_RULES: Dict[str, FrozenSet[str]] = {
    "EQ2": frozenset({"SUF2", "BEF2"}),
    "ORD2": frozenset({"ALL1", "CROSS2"}),
    "SUCC2": frozenset({"FST1", "LST1"}),
    "SUF2": frozenset({"BEF2"}),
    "BEF2": frozenset(),
    "CROSS2": frozenset(),
    "ALL1": frozenset(),
    "FST1": frozenset(),
    "LST1": frozenset(),
}


def closure(names: Iterable[str]) -> FrozenSet[str]:
    """Close a set of pattern names under the helper-pattern rules."""
    todo = list(names)
    seen = set()
    while todo:
        name = todo.pop()
        if name in seen:
            continue
        if name not in PATTERNS:
            raise KeyError(f"unknown pattern {name!r}")
        seen.add(name)
        todo.extend(_CLOSURE_RULES.get(name, frozenset()))
    return frozenset(seen)


# The paper's named pattern sets (§7): P= is always included.
P_EQ = PatternSet({"EQ2"})
P_1 = PatternSet({"EQ2", "ALL1"})
P_2 = PatternSet({"EQ2", "ALL1", "ORD2"})


def pattern_set(*names: str) -> PatternSet:
    """Build a closed pattern set from the paper's names.

    Accepts both registry names (``"ALL1"``) and the paper's aliases
    (``"P="``, ``"P1"``, ``"P2"``).
    """
    aliases = {"P=": "EQ2", "P1": "ALL1", "P2": "ORD2"}
    return PatternSet(aliases.get(n, n) for n in names)
