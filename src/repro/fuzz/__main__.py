"""Fuzzing CLI: ``python -m repro.fuzz --seed N --iters K --corpus DIR``.

Two phases:

1. **Corpus replay** (when ``--corpus`` is given): every ``*.lisl`` entry
   under the corpus directory is re-checked by the oracle.  Entries are
   plain LISL source files with a ``// key: value`` header recording the
   root procedure, the failure kind/domain they once exhibited, and the
   input views to replay.  A replayed entry fails the run iff the oracle
   reports any finding on it today (regressions resurface here).
2. **Fresh fuzzing**: ``--iters`` programs are generated from ``--seed``
   and checked.  Each failure is minimized by the shrinker and, with
   ``--corpus``, saved as a new corpus entry; the run exits non-zero.

``--time-budget S`` stops fresh fuzzing after ~S seconds (used by the CI
slow lane); the seed corpus is always replayed in full.

``--check-safety`` swaps the gamma-soundness oracle for the checker
cross-validation harness (:mod:`repro.checker.crosscheck`): every
generated program is run through Tier-B ``check_safety`` and the
concrete interpreter, and any concrete null-deref/leak/cycle landing on
a *safe* verdict is a failure.  Same corpus/shrink/pool machinery.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.fuzz.oracle import Finding, Oracle, OracleConfig
from repro.fuzz.progen import GenConfig, generate_program
from repro.fuzz.shrink import shrink_finding


@dataclass
class CorpusEntry:
    root: str
    kind: str
    domain: str
    inputs: List[List]  # one views-list per recorded observation
    source: str
    path: Optional[Path] = None


def load_corpus_entry(path: Path) -> CorpusEntry:
    text = path.read_text()
    meta = {"root": "", "kind": "", "domain": ""}
    inputs: List[List] = []
    for line in text.splitlines():
        if not line.startswith("//"):
            continue
        body = line[2:].strip()
        if ":" not in body:
            continue
        key, _, value = body.partition(":")
        key = key.strip()
        value = value.strip()
        if key == "inputs":
            inputs.append(json.loads(value))
        elif key in meta:
            meta[key] = value
    if not meta["root"]:
        raise ValueError(f"{path}: corpus entry lacks a '// root:' header")
    return CorpusEntry(
        root=meta["root"],
        kind=meta["kind"],
        domain=meta["domain"],
        inputs=inputs,
        source=text,
        path=path,
    )


def save_corpus_entry(directory: Path, finding: Finding) -> Path:
    """Save a shrunk failure as a corpus entry, race-free.

    Pool workers save concurrently, so the exists-then-write idiom would
    lose entries to the check/write race.  Instead the entry is written
    to a unique temporary file and *linked* to its final name —
    ``os.link`` is atomic and fails with ``FileExistsError`` when another
    worker claimed the name first, in which case the suffix is bumped and
    the link retried.
    """
    import os

    directory.mkdir(parents=True, exist_ok=True)
    stem = f"{finding.kind}_{finding.domain}_{finding.seed}"
    header = [
        "// fuzz-corpus",
        f"// root: {finding.root}",
        f"// kind: {finding.kind}",
        f"// domain: {finding.domain}",
    ]
    if finding.inputs is not None:
        header.append(f"// inputs: {json.dumps(finding.inputs)}")
    header.append(f"// message: {finding.message.splitlines()[0][:200]}")
    content = "\n".join(header) + "\n\n" + finding.source

    tmp = directory / f".tmp-{stem}-{os.getpid()}"
    tmp.write_text(content)
    try:
        path = directory / f"{stem}.lisl"
        n = 1
        while True:
            try:
                os.link(tmp, path)
                return path
            except FileExistsError:
                path = directory / f"{stem}_{n}.lisl"
                n += 1
    finally:
        tmp.unlink()


def replay_corpus(directory: Path, oracle: Oracle) -> Tuple[int, int]:
    """Re-check every corpus entry; returns (entries, failures)."""
    entries = sorted(directory.glob("*.lisl"))
    failures = 0
    for path in entries:
        entry = load_corpus_entry(path)
        findings = oracle.check_source(entry.source, entry.root, entry.inputs)
        if findings:
            failures += 1
            print(f"CORPUS FAIL {path}:")
            for f in findings:
                print("  " + f.describe().replace("\n", "\n  "))
        else:
            print(f"corpus ok   {path}")
    return len(entries), failures


def fuzz(
    seed: int,
    iters: int,
    oracle: Oracle,
    gen_config: GenConfig,
    corpus_dir: Optional[Path],
    time_budget: Optional[float],
    shrink_checks: int,
    start: int = 0,
    quiet: bool = False,
) -> List[Finding]:
    """Check ``iters`` generated programs starting at iteration ``start``.

    Iteration ``i`` always derives the same program seed regardless of
    how the range is chunked, so a pool run over disjoint ranges checks
    exactly the same programs as one sequential run.
    """
    deadline = None if time_budget is None else time.monotonic() + time_budget
    failures: List[Finding] = []
    seen_signatures = set()

    def say(message: str) -> None:
        if not quiet:
            print(message)

    for i in range(start, start + iters):
        if deadline is not None and time.monotonic() > deadline:
            say(f"time budget reached after {i - start} iterations")
            break
        iter_seed = seed * 1_000_003 + i
        program, root = generate_program(iter_seed, gen_config)
        findings = oracle.check_program(program, root, iter_seed)
        if (i - start + 1) % 20 == 0:
            say(f".. {i - start + 1}/{iters} programs checked")
        for finding in findings:
            finding.seed = iter_seed
            say(f"FAIL (iter {i}, seed {iter_seed}):")
            say("  " + finding.describe().replace("\n", "\n  "))
            if finding.signature() not in seen_signatures:
                say("  shrinking ...")
                finding = shrink_finding(
                    finding, oracle, max_checks=shrink_checks
                )
                say("  shrunk to:")
                say("  " + finding.source.replace("\n", "\n  "))
            seen_signatures.add(finding.signature())
            failures.append(finding)
            if corpus_dir is not None:
                saved = save_corpus_entry(corpus_dir, finding)
                say(f"  saved corpus entry {saved}")
    return failures


def _make_checker(
    oracle_config: OracleConfig,
    check_safety: bool,
    check_termination: bool = False,
    check_kernels: bool = False,
):
    """The differential judge: the gamma-soundness oracle, or — under
    ``--check-safety`` / ``--check-termination`` / ``--check-kernels`` —
    a cross-validation harness.  All four share the
    ``check_program``/``check_source``/``check_views``/``skips``
    interface, so the fuzz loop, shrinker, and corpus replay are agnostic.
    """
    if check_kernels:
        from repro.fuzz.kernelcheck import KernelCheckConfig, KernelChecker

        return KernelChecker(
            KernelCheckConfig(
                domains=tuple(oracle_config.domains),
                engine_max_steps=oracle_config.engine_max_steps,
                engine_max_seconds=oracle_config.engine_max_seconds,
            )
        )
    if not (check_safety or check_termination):
        return Oracle(oracle_config)
    from repro.checker.crosscheck import CrossCheckConfig

    config = CrossCheckConfig(
        rounds=oracle_config.rounds,
        max_interp_steps=oracle_config.max_interp_steps,
        domain="au" if check_termination else oracle_config.domains[0],
        engine_max_steps=oracle_config.engine_max_steps,
        engine_max_seconds=oracle_config.engine_max_seconds,
    )
    if check_termination:
        from repro.termination.crosscheck import TerminationCrossChecker

        return TerminationCrossChecker(config)
    from repro.checker.crosscheck import CrossChecker

    return CrossChecker(config)


def _fuzz_chunk(
    seed: int,
    start: int,
    count: int,
    oracle_config: OracleConfig,
    gen_config: GenConfig,
    corpus_dir: Optional[Path],
    time_budget: Optional[float],
    shrink_checks: int,
    check_safety: bool = False,
    check_termination: bool = False,
    check_kernels: bool = False,
) -> dict:
    """Pool worker: fuzz one contiguous iteration range.

    Workers save their own shrunk corpus entries (``save_corpus_entry``
    is race-free) and return findings plus skip accounting for the
    parent to aggregate.  Signature dedup is per-chunk; duplicate
    signatures across chunks are deduplicated by the parent.
    """
    oracle = _make_checker(
        oracle_config, check_safety, check_termination, check_kernels
    )
    failures = fuzz(
        seed=seed,
        iters=count,
        oracle=oracle,
        gen_config=gen_config,
        corpus_dir=corpus_dir,
        time_budget=time_budget,
        shrink_checks=shrink_checks,
        start=start,
        quiet=True,
    )
    return {"failures": failures, "skips": dict(oracle.skips)}


def fuzz_parallel(
    seed: int,
    iters: int,
    jobs: int,
    oracle_config: OracleConfig,
    gen_config: GenConfig,
    corpus_dir: Optional[Path],
    time_budget: Optional[float],
    shrink_checks: int,
    check_safety: bool = False,
    check_termination: bool = False,
    check_kernels: bool = False,
) -> Tuple[List[Finding], dict]:
    """Fan iteration ranges out over the worker pool.

    Returns (failures, aggregated skip counters).  The same ``seed``
    checks the same programs as a sequential run; only wall-clock-budget
    stops and cross-chunk shrink dedup may differ.
    """
    from repro.parallel.pool import PoolTask, WorkerPool

    chunk = (iters + jobs - 1) // jobs
    tasks = []
    for worker in range(jobs):
        start = worker * chunk
        count = min(chunk, iters - start)
        if count <= 0:
            break
        tasks.append(
            PoolTask(
                task_id=f"fuzz[{start}:{start + count}]",
                fn=_fuzz_chunk,
                args=(
                    seed,
                    start,
                    count,
                    oracle_config,
                    gen_config,
                    corpus_dir,
                    time_budget,
                    shrink_checks,
                    check_safety,
                    check_termination,
                    check_kernels,
                ),
            )
        )
    pool = WorkerPool(jobs=jobs)
    failures: List[Finding] = []
    skips: dict = {}
    for outcome in pool.run(tasks):
        print(f"  {outcome.describe()}", flush=True)
        if outcome.status != "ok":
            # A crashed/failed chunk is itself a finding: the fuzzer or
            # oracle died. Surface it as a synthetic crash failure.
            failures.append(
                Finding(
                    kind="crash",
                    domain="-",
                    root="-",
                    message=f"fuzz chunk {outcome.task_id} {outcome.status}: "
                    f"{(outcome.error or {}).get('message', '')}",
                    source="",
                )
            )
            continue
        failures.extend(outcome.result["failures"])
        for key, value in outcome.result["skips"].items():
            skips[key] = skips.get(key, 0) + value
    for finding in failures:
        if finding.source:
            print(f"FAIL (seed {finding.seed}):")
            print("  " + finding.describe().replace("\n", "\n  "))
    return failures, skips


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential fuzzing of the list/data analysis",
    )
    ap.add_argument("--seed", type=int, default=0, help="base RNG seed")
    ap.add_argument("--iters", type=int, default=100, help="programs to generate")
    ap.add_argument(
        "--corpus",
        type=Path,
        default=None,
        help="corpus directory: replayed first, new failures saved here",
    )
    ap.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="stop fresh fuzzing after ~S seconds (corpus always replays)",
    )
    ap.add_argument(
        "--rounds", type=int, default=5, help="concrete runs per program"
    )
    ap.add_argument(
        "--max-procs", type=int, default=3, help="procedures per program"
    )
    ap.add_argument(
        "--skip-au",
        action="store_true",
        help="check only the (fast) AM domain",
    )
    ap.add_argument(
        "--dll",
        action="store_true",
        help="generate doubly-linked idioms (prev stores/loads); inputs "
        "become well-formed DLLs and outputs are audited against the "
        "concrete back-pointer invariant",
    )
    ap.add_argument(
        "--check-safety",
        action="store_true",
        help="cross-validate Tier-B checker verdicts against concrete "
        "runs instead of gamma-checking summaries",
    )
    ap.add_argument(
        "--check-termination",
        action="store_true",
        help="cross-validate termination certificates against concrete "
        "runs (a run past a derived bound refutes 'terminating')",
    )
    ap.add_argument(
        "--check-kernels",
        action="store_true",
        help="cross-validate optimized kernels against reference: "
        "summary hashes must be bit-identical in both modes",
    )
    ap.add_argument(
        "--shrink-checks",
        type=int,
        default=150,
        help="oracle evaluations the shrinker may spend per failure",
    )
    ap.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for fresh fuzzing (seeds are identical "
        "to a sequential run; corpus saves are race-free)",
    )
    args = ap.parse_args(argv)
    if sum([args.check_safety, args.check_termination,
            args.check_kernels]) > 1:
        print("error: --check-safety, --check-termination and "
              "--check-kernels are exclusive", file=sys.stderr)
        return 2

    oracle_config = OracleConfig(
        rounds=args.rounds,
        domains=("am",)
        if (args.skip_au or args.check_safety or args.check_termination)
        else ("am", "au"),
    )
    oracle = _make_checker(oracle_config, args.check_safety,
                           args.check_termination, args.check_kernels)
    gen_config = GenConfig(n_procs=args.max_procs, dll=args.dll)

    corpus_failures = 0
    if args.corpus is not None and args.corpus.is_dir():
        n_entries, corpus_failures = replay_corpus(args.corpus, oracle)
        print(f"corpus replay: {n_entries} entries, {corpus_failures} failures")

    skips = oracle.skips
    if args.jobs > 1 and args.iters > 0:
        failures, fuzz_skips = fuzz_parallel(
            seed=args.seed,
            iters=args.iters,
            jobs=args.jobs,
            oracle_config=oracle_config,
            gen_config=gen_config,
            corpus_dir=args.corpus,
            time_budget=args.time_budget,
            shrink_checks=args.shrink_checks,
            check_safety=args.check_safety,
            check_termination=args.check_termination,
            check_kernels=args.check_kernels,
        )
        skips = {
            key: skips.get(key, 0) + fuzz_skips.get(key, 0)
            for key in set(skips) | set(fuzz_skips)
        }
    else:
        failures = fuzz(
            seed=args.seed,
            iters=args.iters,
            oracle=oracle,
            gen_config=gen_config,
            corpus_dir=args.corpus,
            time_budget=args.time_budget,
            shrink_checks=args.shrink_checks,
        )
    skip_note = ", ".join(
        f"{skips[key]} {key}" for key in sorted(skips)
    ) or "none"
    print(
        f"fuzzing done: {len(failures)} failure(s), "
        f"{corpus_failures} corpus regression(s); skips: {skip_note}"
    )
    return 1 if (failures or corpus_failures) else 0


if __name__ == "__main__":
    sys.exit(main())
