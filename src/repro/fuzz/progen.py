"""Seeded, grammar-based generator of well-typed LISL programs.

Every program this module emits is guaranteed to parse, typecheck,
normalize, and build an ICFG (``tests/test_fuzz_progen.py`` checks this on
hundreds of seeds, together with the pretty-print round trip).  The
generator builds *typed* ASTs directly -- pointer/data comparisons are
classified at construction time, so ``typecheck_program`` is the identity
on its output.

Structure of a generated program:

- a handful of procedures ``p0 .. p{n-1}``; each may call the ones
  generated before it, so the call graph is a DAG of generated bodies plus
  self-recursive template procedures (length/sum/copy/filter style) that
  terminate by structural descent on an acyclic argument;
- the last procedure is the *root*: it is the one the oracle analyzes and
  executes, and its generation is biased towards calls so interprocedural
  summaries get exercised;
- loops come from two templates that guarantee progress (a cursor that
  advances down a list, or a counter that strictly decreases), so most
  concrete runs terminate within the interpreter's step budget;
- heap mutation uses structured idioms (push-front, insert-after,
  delete-first, delete-after, truncate) that preserve acyclicity, plus
  guarded data stores; occasional *unguarded* dereferences are kept so the
  analyzer's error paths see traffic (the concrete side skips such runs).

Knobs live on :class:`GenConfig`; the single entry point is
:func:`generate_program`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.lang import ast as A


@dataclass
class GenConfig:
    """Size/feature knobs for :class:`ProgramGen`."""

    n_procs: int = 3  # procedures per program (>= 1)
    max_stmts: int = 6  # top-level statements per body
    max_depth: int = 2  # nesting depth of if/while
    n_list_locals: int = 2
    n_int_locals: int = 2
    lit_lo: int = -9
    lit_hi: int = 9
    p_recursive: float = 0.3  # chance a non-root proc is a recursive template
    p_unguarded_deref: float = 0.1  # emit a deref without a NULL guard
    allow_loops: bool = True
    allow_calls: bool = True
    # Doubly-linked mode: adds prev-aware idioms (DLL push-front /
    # insert-after / delete-after keep the back-pointer invariant;
    # backward cursor moves and loops traverse it).  Off by default so
    # prev-free fuzzing is byte-identical to the pre-DLL generator.
    dll: bool = False

    def smaller(self) -> "GenConfig":
        """A strictly smaller configuration (used by the shrinker)."""
        return replace(
            self,
            n_procs=max(1, self.n_procs - 1),
            max_stmts=max(1, self.max_stmts - 1),
            max_depth=max(0, self.max_depth - 1),
        )


@dataclass
class _Scope:
    """Variables visible while generating one procedure body."""

    list_vars: List[str] = field(default_factory=list)
    int_vars: List[str] = field(default_factory=list)
    protected: set = field(default_factory=set)  # loop cursors/counters

    def writable_lists(self) -> List[str]:
        return [v for v in self.list_vars if v not in self.protected]

    def writable_ints(self) -> List[str]:
        return [v for v in self.int_vars if v not in self.protected]


class ProgramGen:
    """Generates one program per call to :meth:`generate`."""

    def __init__(self, rng: random.Random, config: Optional[GenConfig] = None):
        self.rng = rng
        self.config = config or GenConfig()

    # -- program level -------------------------------------------------------

    def generate(self) -> Tuple[A.Program, str]:
        """Returns ``(program, root_proc_name)``."""
        cfg = self.config
        procs: List[A.Procedure] = []
        for i in range(max(1, cfg.n_procs)):
            is_root = i == cfg.n_procs - 1
            if not is_root and self.rng.random() < cfg.p_recursive:
                procs.append(self._recursive_template(f"p{i}"))
            else:
                procs.append(self._iterative_proc(f"p{i}", procs, is_root))
        return A.Program(procs), procs[-1].name

    # -- signatures ----------------------------------------------------------

    def _signature(
        self, is_root: bool
    ) -> Tuple[List[A.Param], List[A.Param], List[A.Param]]:
        rng = self.rng
        n_list_in = rng.randint(1, 2) if is_root else rng.randint(0, 2)
        n_int_in = rng.randint(0, 2)
        if n_list_in + n_int_in == 0:
            n_int_in = 1
        inputs = [A.Param(f"x{j}", A.LIST) for j in range(n_list_in)]
        inputs += [A.Param(f"n{j}", A.INT) for j in range(n_int_in)]
        outputs: List[A.Param] = []
        if is_root or rng.random() < 0.85:
            if rng.random() < 0.7:
                outputs.append(A.Param("r0", A.LIST))
            if rng.random() < 0.6:
                outputs.append(A.Param("s0", A.INT))
            if not outputs:
                outputs.append(A.Param("s0", A.INT))
        locals_ = [
            A.Param(f"c{j}", A.LIST) for j in range(self.config.n_list_locals)
        ]
        locals_ += [
            A.Param(f"i{j}", A.INT) for j in range(self.config.n_int_locals)
        ]
        return inputs, outputs, locals_

    # -- iterative procedures --------------------------------------------------

    def _iterative_proc(
        self, name: str, callees: Sequence[A.Procedure], is_root: bool
    ) -> A.Procedure:
        inputs, outputs, locals_ = self._signature(is_root)
        scope = _Scope(
            list_vars=[p.name for p in inputs + outputs + locals_ if p.type == A.LIST],
            int_vars=[p.name for p in inputs + outputs + locals_ if p.type == A.INT],
        )
        body = self._stmts(
            self.rng.randint(1, self.config.max_stmts),
            self.config.max_depth,
            scope,
            callees,
            boost_calls=is_root,
        )
        # make every output observable: assign it once at the end
        for out in outputs:
            if out.type == A.LIST:
                src = self.rng.choice(scope.list_vars + ["NULL"])
                value = A.Null() if src == "NULL" else A.Var(src)
                body.append(A.Assign(target=out.name, value=value))
            else:
                body.append(A.Assign(target=out.name, value=self._int_expr(scope)))
        return A.Procedure(name, inputs, outputs, locals_, body)

    # -- statement pool ----------------------------------------------------------

    def _stmts(
        self,
        count: int,
        depth: int,
        scope: _Scope,
        callees: Sequence[A.Procedure],
        boost_calls: bool = False,
    ) -> List[A.Stmt]:
        out: List[A.Stmt] = []
        for _ in range(count):
            out.extend(self._stmt(depth, scope, callees, boost_calls))
        if not out:
            out.append(A.Skip())
        return out

    def _stmt(
        self,
        depth: int,
        scope: _Scope,
        callees: Sequence[A.Procedure],
        boost_calls: bool,
    ) -> List[A.Stmt]:
        rng = self.rng
        choices = [
            (self._gen_assign_ptr, 3),
            (self._gen_advance, 3),
            (self._gen_push_front, 3),
            (self._gen_insert_after, 2),
            (self._gen_delete_first, 2),
            (self._gen_delete_after, 1),
            (self._gen_truncate, 1),
            (self._gen_store_data, 3),
            (self._gen_read_data, 2),
            (self._gen_assign_int, 3),
        ]
        if self.config.dll:
            choices.extend(
                [
                    (self._gen_dll_push_front, 3),
                    (self._gen_dll_insert_after, 2),
                    (self._gen_dll_delete_after, 1),
                    (self._gen_retreat, 2),
                ]
            )
        if depth > 0:
            choices.append((self._gen_if, 3))
            if self.config.allow_loops:
                choices.append((self._gen_traverse_loop, 3))
                choices.append((self._gen_count_loop, 2))
                if self.config.dll:
                    choices.append((self._gen_backward_loop, 2))
        if callees and self.config.allow_calls:
            choices.append((self._gen_call, 8 if boost_calls else 3))
        total = sum(w for _, w in choices)
        pick = rng.uniform(0, total)
        for gen, w in choices:
            pick -= w
            if pick <= 0:
                stmts = gen(depth, scope, callees)
                if stmts is not None:
                    return stmts
                break
        return [A.Skip()]

    # Each _gen_* returns a list of statements or None when the scope cannot
    # support the idiom (the caller falls back to skip).

    def _gen_assign_ptr(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        targets = scope.writable_lists()
        if not targets:
            return None
        target = self.rng.choice(targets)
        if self.rng.random() < 0.3:
            return [A.Assign(target=target, value=A.Null())]
        return [A.Assign(target=target, value=A.Var(self.rng.choice(scope.list_vars)))]

    def _gen_advance(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        targets = scope.writable_lists()
        if not targets:
            return None
        target = self.rng.choice(targets)
        source = self.rng.choice(scope.list_vars)
        stmt = A.Assign(target=target, value=A.NextOf(A.Var(source)))
        if self.rng.random() < self.config.p_unguarded_deref:
            return [stmt]
        return [self._guard(source, [stmt])]

    def _gen_push_front(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        targets = scope.writable_lists()
        if len(targets) < 2:
            return None
        fresh, target = self.rng.sample(targets, 2)
        return [
            A.Assign(target=fresh, value=A.NewCell()),
            A.StoreData(target=fresh, value=self._int_expr(scope)),
            A.StoreNext(target=fresh, value=A.Var(target)),
            A.Assign(target=target, value=A.Var(fresh)),
        ]

    def _gen_insert_after(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        targets = scope.writable_lists()
        if len(targets) < 2:
            return None
        fresh, rest = self.rng.sample(targets, 2)
        anchor = self.rng.choice(scope.list_vars)
        if anchor in (fresh, rest):
            return None
        body = [
            A.Assign(target=rest, value=A.NextOf(A.Var(anchor))),
            A.Assign(target=fresh, value=A.NewCell()),
            A.StoreData(target=fresh, value=self._int_expr(scope)),
            A.StoreNext(target=fresh, value=A.Var(rest)),
            A.StoreNext(target=anchor, value=A.Var(fresh)),
        ]
        return [self._guard(anchor, body)]

    def _gen_delete_first(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        targets = scope.writable_lists()
        if not targets:
            return None
        target = self.rng.choice(targets)
        stmt = A.Assign(target=target, value=A.NextOf(A.Var(target)))
        return [self._guard(target, [stmt])]

    def _gen_delete_after(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        targets = scope.writable_lists()
        if not targets:
            return None
        rest = self.rng.choice(targets)
        anchors = [v for v in scope.list_vars if v != rest]
        if not anchors:
            return None
        anchor = self.rng.choice(anchors)
        inner = [
            A.Assign(target=rest, value=A.NextOf(A.Var(anchor))),
            A.If(
                cond=A.PtrCmp("!=", A.Var(rest), A.Null()),
                then_body=[
                    A.Assign(target=rest, value=A.NextOf(A.Var(rest))),
                    A.StoreNext(target=anchor, value=A.Var(rest)),
                ],
                else_body=[],
            ),
        ]
        return [self._guard(anchor, inner)]

    def _gen_truncate(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        anchor = self.rng.choice(scope.list_vars)
        stmt = A.StoreNext(target=anchor, value=A.Null())
        return [self._guard(anchor, [stmt])]

    def _gen_store_data(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        anchor = self.rng.choice(scope.list_vars)
        value = self._int_expr(scope, data_of=anchor)
        stmt = A.StoreData(target=anchor, value=value)
        if self.rng.random() < self.config.p_unguarded_deref:
            return [stmt]
        return [self._guard(anchor, [stmt])]

    def _gen_read_data(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        targets = scope.writable_ints()
        if not targets:
            return None
        target = self.rng.choice(targets)
        anchor = self.rng.choice(scope.list_vars)
        stmt = A.Assign(target=target, value=A.DataOf(A.Var(anchor)))
        return [self._guard(anchor, [stmt])]

    def _gen_assign_int(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        targets = scope.writable_ints()
        if not targets:
            return None
        target = self.rng.choice(targets)
        return [A.Assign(target=target, value=self._int_expr(scope))]

    def _gen_if(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        cond = self._condition(scope)
        then_body = self._stmts(
            self.rng.randint(1, 2), depth - 1, scope, callees
        )
        else_body: List[A.Stmt] = []
        if self.rng.random() < 0.5:
            else_body = self._stmts(
                self.rng.randint(0, 2), depth - 1, scope, callees
            )
            if not else_body or all(isinstance(s, A.Skip) for s in else_body):
                else_body = []
        return [A.If(cond=cond, then_body=then_body, else_body=else_body)]

    def _gen_traverse_loop(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        cursors = scope.writable_lists()
        if not cursors:
            return None
        cursor = self.rng.choice(cursors)
        source = self.rng.choice(scope.list_vars)
        scope.protected.add(cursor)
        try:
            inner = self._stmts(self.rng.randint(0, 2), depth - 1, scope, callees)
        finally:
            scope.protected.discard(cursor)
        inner = [s for s in inner if not isinstance(s, A.Skip)]
        inner.append(A.Assign(target=cursor, value=A.NextOf(A.Var(cursor))))
        return [
            A.Assign(target=cursor, value=A.Var(source)),
            A.While(cond=A.PtrCmp("!=", A.Var(cursor), A.Null()), body=inner),
        ]

    def _gen_count_loop(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        counters = scope.writable_ints()
        if not counters:
            return None
        counter = self.rng.choice(counters)
        bound = self.rng.randint(1, 4)
        scope.protected.add(counter)
        try:
            inner = self._stmts(self.rng.randint(0, 2), depth - 1, scope, callees)
        finally:
            scope.protected.discard(counter)
        inner = [s for s in inner if not isinstance(s, A.Skip)]
        inner.append(
            A.Assign(target=counter, value=A.BinOp("-", A.Var(counter), A.IntLit(1)))
        )
        return [
            A.Assign(target=counter, value=A.IntLit(bound)),
            A.While(cond=A.DataCmp(">", A.Var(counter), A.IntLit(0)), body=inner),
        ]

    # -- DLL idioms (invariant-preserving, plus backward moves) ---------------

    def _gen_dll_push_front(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        targets = scope.writable_lists()
        if len(targets) < 2:
            return None
        fresh, target = self.rng.sample(targets, 2)
        return [
            A.Assign(target=fresh, value=A.NewCell()),
            A.StoreData(target=fresh, value=self._int_expr(scope)),
            A.StoreNext(target=fresh, value=A.Var(target)),
            A.StorePrev(target=fresh, value=A.Null()),
            A.If(
                cond=A.PtrCmp("!=", A.Var(target), A.Null()),
                then_body=[A.StorePrev(target=target, value=A.Var(fresh))],
                else_body=[],
            ),
            A.Assign(target=target, value=A.Var(fresh)),
        ]

    def _gen_dll_insert_after(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        targets = scope.writable_lists()
        if len(targets) < 2:
            return None
        fresh, rest = self.rng.sample(targets, 2)
        anchor = self.rng.choice(scope.list_vars)
        if anchor in (fresh, rest):
            return None
        body = [
            A.Assign(target=rest, value=A.NextOf(A.Var(anchor))),
            A.Assign(target=fresh, value=A.NewCell()),
            A.StoreData(target=fresh, value=self._int_expr(scope)),
            A.StoreNext(target=fresh, value=A.Var(rest)),
            A.StorePrev(target=fresh, value=A.Var(anchor)),
            A.StoreNext(target=anchor, value=A.Var(fresh)),
            A.If(
                cond=A.PtrCmp("!=", A.Var(rest), A.Null()),
                then_body=[A.StorePrev(target=rest, value=A.Var(fresh))],
                else_body=[],
            ),
        ]
        return [self._guard(anchor, body)]

    def _gen_dll_delete_after(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        targets = scope.writable_lists()
        if not targets:
            return None
        rest = self.rng.choice(targets)
        anchors = [v for v in scope.list_vars if v != rest]
        if not anchors:
            return None
        anchor = self.rng.choice(anchors)
        inner = [
            A.Assign(target=rest, value=A.NextOf(A.Var(anchor))),
            A.If(
                cond=A.PtrCmp("!=", A.Var(rest), A.Null()),
                then_body=[
                    A.Assign(target=rest, value=A.NextOf(A.Var(rest))),
                    A.StoreNext(target=anchor, value=A.Var(rest)),
                    A.If(
                        cond=A.PtrCmp("!=", A.Var(rest), A.Null()),
                        then_body=[
                            A.StorePrev(target=rest, value=A.Var(anchor))
                        ],
                        else_body=[],
                    ),
                ],
                else_body=[],
            ),
        ]
        return [self._guard(anchor, inner)]

    def _gen_retreat(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        targets = scope.writable_lists()
        if not targets:
            return None
        target = self.rng.choice(targets)
        source = self.rng.choice(scope.list_vars)
        stmt = A.Assign(target=target, value=A.PrevOf(A.Var(source)))
        if self.rng.random() < self.config.p_unguarded_deref:
            return [stmt]
        return [self._guard(source, [stmt])]

    def _gen_backward_loop(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        cursors = scope.writable_lists()
        if not cursors:
            return None
        cursor = self.rng.choice(cursors)
        source = self.rng.choice(scope.list_vars)
        scope.protected.add(cursor)
        try:
            inner = self._stmts(self.rng.randint(0, 2), depth - 1, scope, callees)
        finally:
            scope.protected.discard(cursor)
        inner = [s for s in inner if not isinstance(s, A.Skip)]
        inner.append(A.Assign(target=cursor, value=A.PrevOf(A.Var(cursor))))
        return [
            A.Assign(target=cursor, value=A.Var(source)),
            A.While(cond=A.PtrCmp("!=", A.Var(cursor), A.Null()), body=inner),
        ]

    def _gen_call(self, depth, scope, callees) -> Optional[List[A.Stmt]]:
        callee = self.rng.choice(list(callees))
        args: List[A.Expr] = []
        for param in callee.inputs:
            if param.type == A.LIST:
                src = self.rng.choice(scope.list_vars + ["NULL"])
                args.append(A.Null() if src == "NULL" else A.Var(src))
            else:
                args.append(self._int_expr(scope))
        targets: List[str] = []
        pools = {
            A.LIST: list(scope.writable_lists()),
            A.INT: list(scope.writable_ints()),
        }
        drop_results = self.rng.random() < 0.15
        if not drop_results:
            for param in callee.outputs:
                pool = pools[param.type]
                if not pool:
                    drop_results = True
                    break
                tgt = self.rng.choice(pool)
                pool.remove(tgt)
                targets.append(tgt)
        if drop_results:
            targets = []
        return [
            A.Call(targets=tuple(targets), proc=callee.name, args=tuple(args))
        ]

    # -- recursive templates --------------------------------------------------------

    def _recursive_template(self, name: str) -> A.Procedure:
        kind = self.rng.choice(["length", "sum", "copy", "mapadd"])
        if kind in ("length", "sum"):
            step = (
                A.IntLit(1)
                if kind == "length"
                else A.DataOf(A.Var("x0"))
            )
            body = [
                A.If(
                    cond=A.PtrCmp("==", A.Var("x0"), A.Null()),
                    then_body=[A.Assign(target="s0", value=A.IntLit(0))],
                    else_body=[
                        A.Assign(target="c0", value=A.NextOf(A.Var("x0"))),
                        A.Call(targets=("i0",), proc=name, args=(A.Var("c0"),)),
                        A.Assign(
                            target="s0",
                            value=A.BinOp("+", A.Var("i0"), step),
                        ),
                    ],
                )
            ]
            return A.Procedure(
                name,
                [A.Param("x0", A.LIST)],
                [A.Param("s0", A.INT)],
                [A.Param("c0", A.LIST), A.Param("i0", A.INT)],
                body,
            )
        # copy / mapadd: rebuild the list, optionally shifting each datum
        delta = 0 if kind == "copy" else self.rng.randint(1, 5)
        datum: A.Expr = A.DataOf(A.Var("x0"))
        if delta:
            datum = A.BinOp("+", datum, A.IntLit(delta))
        body = [
            A.If(
                cond=A.PtrCmp("==", A.Var("x0"), A.Null()),
                then_body=[A.Assign(target="r0", value=A.Null())],
                else_body=[
                    A.Assign(target="c0", value=A.NextOf(A.Var("x0"))),
                    A.Call(targets=("c1",), proc=name, args=(A.Var("c0"),)),
                    A.Assign(target="r0", value=A.NewCell()),
                    A.StoreData(target="r0", value=datum),
                    A.StoreNext(target="r0", value=A.Var("c1")),
                ],
            )
        ]
        return A.Procedure(
            name,
            [A.Param("x0", A.LIST)],
            [A.Param("r0", A.LIST)],
            [A.Param("c0", A.LIST), A.Param("c1", A.LIST)],
            body,
        )

    # -- expressions and conditions -----------------------------------------------

    def _int_expr(self, scope: _Scope, data_of: Optional[str] = None) -> A.Expr:
        """Affine integer expression over literals and int variables.

        ``data_of`` optionally allows one ``v->data`` leaf -- only pass a
        variable that is non-NULL at the point of use.
        """
        rng = self.rng
        leaves: List[A.Expr] = [
            A.IntLit(rng.randint(self.config.lit_lo, self.config.lit_hi))
        ]
        if scope.int_vars:
            leaves.append(A.Var(rng.choice(scope.int_vars)))
        if data_of is not None:
            leaves.append(A.DataOf(A.Var(data_of)))
        expr = rng.choice(leaves)
        for _ in range(rng.randint(0, 2)):
            op = rng.choice(["+", "-", "*"])
            lit = A.IntLit(rng.randint(self.config.lit_lo, self.config.lit_hi))
            if op == "*":
                expr = A.BinOp("*", expr, A.IntLit(rng.randint(-3, 3)))
            elif rng.random() < 0.5 and scope.int_vars:
                expr = A.BinOp(op, expr, A.Var(rng.choice(scope.int_vars)))
            else:
                expr = A.BinOp(op, expr, lit)
        return expr

    def _condition(self, scope: _Scope) -> A.Cond:
        rng = self.rng
        kind = rng.random()
        if kind < 0.5 and scope.list_vars:
            left = A.Var(rng.choice(scope.list_vars))
            right: A.Expr = (
                A.Null()
                if rng.random() < 0.6
                else A.Var(rng.choice(scope.list_vars))
            )
            cond: A.Cond = A.PtrCmp(rng.choice(["==", "!="]), left, right)
        else:
            op = rng.choice(["==", "!=", "<", "<=", ">", ">="])
            cond = A.DataCmp(op, self._int_expr(scope), self._int_expr(scope))
        if rng.random() < 0.15:
            other = A.DataCmp(
                rng.choice(["<", ">"]), self._int_expr(scope), self._int_expr(scope)
            )
            cond = A.BoolOp(rng.choice(["&&", "||"]), cond, other)
        if rng.random() < 0.1:
            cond = A.NotCond(cond)
        return cond

    def _guard(self, var: str, body: List[A.Stmt]) -> A.If:
        return A.If(
            cond=A.PtrCmp("!=", A.Var(var), A.Null()),
            then_body=body,
            else_body=[],
        )


def generate_program(
    seed: int, config: Optional[GenConfig] = None
) -> Tuple[A.Program, str]:
    """Generate one well-typed program; returns ``(program, root_name)``."""
    return ProgramGen(random.Random(seed), config).generate()
