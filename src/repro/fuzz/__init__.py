"""Differential fuzzing harness (generator, oracle, shrinker).

The harness manufactures regressions for the soundness contract of the
analysis: every concrete run of a procedure must satisfy the abstract
summary computed for it (DESIGN.md §6).  Three cooperating pieces:

- :mod:`repro.fuzz.progen` -- a seeded, grammar-based generator of
  well-typed LISL programs (traversals, insertions, deletions, integer
  arithmetic, branches, loops, calls, recursion);
- :mod:`repro.fuzz.oracle` -- runs each program concretely on random
  inputs and abstractly in both the AU and AM domains, then checks
  γ-membership of the observed input/output words against the synthesized
  summaries, plus lattice laws on the domain values the run produces;
- :mod:`repro.fuzz.shrink` -- a delta-debugging shrinker that minimizes a
  failing program/input pair before it is reported or saved to the corpus.

Entry point: ``python -m repro.fuzz --seed N --iters K``.
"""

from repro.fuzz.progen import GenConfig, ProgramGen, generate_program
from repro.fuzz.oracle import Finding, Oracle, OracleConfig
from repro.fuzz.shrink import shrink_finding

__all__ = [
    "GenConfig",
    "ProgramGen",
    "generate_program",
    "Finding",
    "Oracle",
    "OracleConfig",
    "shrink_finding",
]
