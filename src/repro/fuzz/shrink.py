"""Delta-debugging shrinker for oracle findings.

Given a :class:`~repro.fuzz.oracle.Finding`, the shrinker greedily
minimizes the program/input pair while the *same failure signature*
(kind + domain) keeps reproducing:

- drop whole procedures (the root stays);
- ddmin over statement positions (chunked removal, halving chunk size);
- unwrap ``if``/``while`` statements into their bodies, drop else-branches;
- shrink the failing input views (empty lists, dropped elements, zeroed
  data, integers pulled towards 0).

Every candidate is re-judged by running the oracle end to end, so a
shrunk program is a genuine reproducer by construction.  The number of
oracle evaluations is bounded by ``max_checks`` -- shrinking trades
completeness for a predictable budget.
"""

from __future__ import annotations

import copy
from typing import Callable, List, Optional, Sequence, Tuple

from repro.fuzz.oracle import Finding, Oracle
from repro.lang import ast as A
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lang.typecheck import typecheck_program

# A statement position: (procedure index, path); the path alternates
# (attribute, index) pairs drilling through nested bodies.
_Path = Tuple[Tuple[str, int], ...]


def _body_of(holder, attr: str) -> List[A.Stmt]:
    return getattr(holder, attr)


def _stmt_paths(program: A.Program) -> List[Tuple[int, _Path]]:
    out: List[Tuple[int, _Path]] = []

    def walk(stmts: Sequence[A.Stmt], proc_i: int, prefix: _Path, attr: str):
        for i, stmt in enumerate(stmts):
            path = prefix + ((attr, i),)
            out.append((proc_i, path))
            if isinstance(stmt, A.If):
                walk(stmt.then_body, proc_i, path, "then_body")
                walk(stmt.else_body, proc_i, path, "else_body")
            elif isinstance(stmt, A.While):
                walk(stmt.body, proc_i, path, "body")

    for proc_i, proc in enumerate(program.procedures):
        walk(proc.body, proc_i, (), "body")
    return out


def _resolve(program: A.Program, proc_i: int, path: _Path):
    """Returns (owning list, index) for a statement path.

    Each path element is ``(attr, idx)``: the statement sits at ``idx`` in
    the list named ``attr`` of its parent (the procedure for the first
    element, the preceding statement for the rest).
    """
    stmts = _body_of(program.procedures[proc_i], "body")
    for (_, i), (next_attr, _) in zip(path, path[1:]):
        stmts = _body_of(stmts[i], next_attr)
    return stmts, path[-1][1]


def _remove_paths(
    program: A.Program, paths: Sequence[Tuple[int, _Path]]
) -> Optional[A.Program]:
    """A copy of ``program`` with the statements at ``paths`` removed."""
    candidate = copy.deepcopy(program)
    # remove deepest-first so sibling indices stay valid
    for proc_i, path in sorted(paths, key=lambda pp: (pp[0], pp[1]), reverse=True):
        try:
            stmts, idx = _resolve(candidate, proc_i, path)
            del stmts[idx]
        except (IndexError, AttributeError):
            return None
    return candidate


class Shrinker:
    def __init__(
        self,
        oracle: Oracle,
        root: str,
        signature: Tuple[str, str],
        max_checks: int = 200,
    ):
        self.oracle = oracle
        self.root = root
        self.signature = signature
        self.max_checks = max_checks
        self.checks = 0

    # -- predicate -------------------------------------------------------------

    def still_fails(self, program: A.Program, views_list: List[List]) -> bool:
        if self.checks >= self.max_checks:
            return False
        self.checks += 1
        try:
            findings = self.oracle.check_views(program, self.root, views_list)
        except Exception:
            return False  # candidate broke the pipeline: not a reproducer
        return any(f.signature() == self.signature for f in findings)

    # -- program reduction --------------------------------------------------------

    def shrink_program(
        self, program: A.Program, views_list: List[List]
    ) -> A.Program:
        changed = True
        while changed and self.checks < self.max_checks:
            changed = False
            program, c = self._drop_procedures(program, views_list)
            changed |= c
            program, c = self._ddmin_statements(program, views_list)
            changed |= c
            program, c = self._unwrap_blocks(program, views_list)
            changed |= c
        return program

    def _drop_procedures(self, program, views_list):
        changed = False
        i = 0
        while i < len(program.procedures):
            proc = program.procedures[i]
            if proc.name == self.root:
                i += 1
                continue
            candidate = copy.deepcopy(program)
            del candidate.procedures[i]
            if self.still_fails(candidate, views_list):
                program = candidate
                changed = True
            else:
                i += 1
        return program, changed

    def _ddmin_statements(self, program, views_list):
        changed = False
        chunk = max(1, len(_stmt_paths(program)) // 2)
        while chunk >= 1:
            paths = _stmt_paths(program)
            i = 0
            while i < len(paths):
                group = paths[i : i + chunk]
                # only remove sibling-independent groups: removing a parent
                # and its child simultaneously is fine (deepest-first), but
                # keep groups small and simple
                candidate = _remove_paths(program, group)
                if candidate is not None and self.still_fails(
                    candidate, views_list
                ):
                    program = candidate
                    changed = True
                    paths = _stmt_paths(program)
                    # restart this chunk position on the new program
                else:
                    i += chunk
                if self.checks >= self.max_checks:
                    return program, changed
            chunk //= 2
        return program, changed

    def _unwrap_blocks(self, program, views_list):
        changed = False
        progress = True
        while progress and self.checks < self.max_checks:
            progress = False
            for proc_i, path in _stmt_paths(program):
                candidate = copy.deepcopy(program)
                try:
                    stmts, idx = _resolve(candidate, proc_i, path)
                    stmt = stmts[idx]
                except (IndexError, AttributeError):
                    continue
                replacements: List[List[A.Stmt]] = []
                if isinstance(stmt, A.If):
                    if stmt.else_body:
                        replacements.append([
                            A.If(
                                cond=stmt.cond,
                                then_body=stmt.then_body,
                                else_body=[],
                            )
                        ])
                    replacements.append(list(stmt.then_body))
                    if stmt.else_body:
                        replacements.append(list(stmt.else_body))
                elif isinstance(stmt, A.While):
                    replacements.append(list(stmt.body))
                for repl in replacements:
                    cand2 = copy.deepcopy(candidate)
                    stmts2, idx2 = _resolve(cand2, proc_i, path)
                    stmts2[idx2:idx2 + 1] = copy.deepcopy(repl)
                    if self.still_fails(cand2, views_list):
                        program = cand2
                        progress = True
                        changed = True
                        break
                if progress:
                    break  # paths are stale; recompute
        return program, changed

    # -- input reduction -----------------------------------------------------------

    def shrink_views(
        self, program: A.Program, views_list: List[List]
    ) -> List[List]:
        for vi, views in enumerate(list(views_list)):
            for ai, view in enumerate(views):
                if isinstance(view, list):
                    # try the empty list, then dropping single elements
                    for candidate_view in ([],):
                        if view == candidate_view:
                            continue
                        cand = _with_view(views_list, vi, ai, candidate_view)
                        if self.still_fails(program, cand):
                            views_list = cand
                            view = candidate_view
                    i = 0
                    while i < len(view):
                        shorter = view[:i] + view[i + 1 :]
                        cand = _with_view(views_list, vi, ai, shorter)
                        if self.still_fails(program, cand):
                            views_list = cand
                            view = shorter
                        else:
                            i += 1
                    # zero the data values
                    for i, v in enumerate(view):
                        if v == 0:
                            continue
                        zeroed = view[:i] + [0] + view[i + 1 :]
                        cand = _with_view(views_list, vi, ai, zeroed)
                        if self.still_fails(program, cand):
                            views_list = cand
                            view = zeroed
                else:
                    for candidate_view in (0, view // 2 if view else 0):
                        if view == candidate_view:
                            continue
                        cand = _with_view(views_list, vi, ai, candidate_view)
                        if self.still_fails(program, cand):
                            views_list = cand
                            view = candidate_view
        return views_list


def _with_view(views_list: List[List], vi: int, ai: int, new_view) -> List[List]:
    out = [list(v) for v in views_list]
    out[vi] = list(out[vi])
    out[vi][ai] = new_view
    return out


def shrink_finding(
    finding: Finding, oracle: Optional[Oracle] = None, max_checks: int = 200
) -> Finding:
    """Minimize a finding; returns a new, smaller, still-failing Finding.

    If shrinking loses the failure (flaky finding), the original is
    returned unchanged.
    """
    oracle = oracle or Oracle()
    program = typecheck_program(parse_program(finding.source))
    views_list: List[List] = (
        [list(finding.inputs)] if finding.inputs is not None else []
    )
    shrinker = Shrinker(oracle, finding.root, finding.signature(), max_checks)
    if not shrinker.still_fails(program, views_list):
        return finding  # not reproducible as-is; report the original
    program = shrinker.shrink_program(program, views_list)
    if views_list:
        views_list = shrinker.shrink_views(program, views_list)
    final = oracle.check_views(program, finding.root, views_list)
    for f in final:
        if f.signature() == finding.signature():
            return f
    return finding  # defensive: should not happen
