"""Differential validation of the optimized kernels against reference.

The optimized hot-path kernels (``repro.kernels`` mode ``fast``: integer
simplex with memo/warm-start caches, join/minimize memoization, shared
LP models, shape-signature prefilters) promise *representation identity*:
for any program, the synthesized summaries must have canonical stable
hashes bit-identical to the pure reference kernels.  This module holds
them to that promise the same way :mod:`repro.fuzz.oracle` holds the
abstract transformers to gamma-soundness: analyze each generated program
under both modes and report any hash divergence.

Wired into the fuzz CLI as ``python -m repro.fuzz --check-kernels``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import kernels
from repro.core.api import Analyzer
from repro.core.localheap import CutpointError
from repro.engine.canon import graph_hash, heapset_hash
from repro.fuzz.oracle import Finding
from repro.lang import ast as A
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lang.typecheck import typecheck_program


@dataclass
class KernelCheckConfig:
    domains: Tuple[str, ...] = ("am", "au")
    engine_max_steps: Optional[int] = 60_000
    engine_max_seconds: Optional[float] = 30.0


class KernelChecker:
    """Fast-vs-reference identity harness (the ``--check-kernels`` oracle).

    Implements the fuzz-loop checker duck type
    (``check_program``/``check_source``/``check_views``/``skips``).
    Concrete input views are irrelevant to kernel identity and are
    accepted but unused, so corpus replay and the shrinker keep working.
    """

    def __init__(self, config: Optional[KernelCheckConfig] = None):
        self.config = config or KernelCheckConfig()
        # budget -> analysis hit its step/second budget in some mode;
        # cutpoint -> program outside the supported fragment.  Identity
        # is only judged on rows both modes completed.
        self.skips: Dict[str, int] = {"budget": 0, "cutpoint": 0}

    # -- entry points -----------------------------------------------------------

    def check_program(
        self, program: A.Program, root: str, seed: int
    ) -> List[Finding]:
        return self.check_views(program, root, views_list=(), seed=seed)

    def check_source(
        self,
        source: str,
        root: str,
        views_list: Sequence[List],
        seed: Optional[int] = None,
    ) -> List[Finding]:
        program = typecheck_program(parse_program(source))
        return self.check_views(program, root, views_list, seed=seed)

    def check_views(
        self,
        program: A.Program,
        root: str,
        views_list: Sequence[List],
        seed: Optional[int] = None,
    ) -> List[Finding]:
        source = pretty_program(program)
        findings: List[Finding] = []
        for domain in self.config.domains:
            hashes: Dict[str, object] = {}
            for mode in ("reference", "fast"):
                outcome = self._summary_hashes(program, root, domain, mode)
                if isinstance(outcome, str):  # skip / crash note
                    if outcome in self.skips:
                        self.skips[outcome] += 1
                        hashes = {}
                        break
                    findings.append(
                        Finding(
                            kind="kernel-crash",
                            domain=f"{domain}/{mode}",
                            root=root,
                            message=outcome,
                            source=source,
                            seed=seed,
                        )
                    )
                    hashes = {}
                    break
                hashes[mode] = outcome
            if hashes and hashes["reference"] != hashes["fast"]:
                findings.append(
                    Finding(
                        kind="kernel-mismatch",
                        domain=domain,
                        root=root,
                        message=(
                            "fast kernels diverge from reference: "
                            f"reference={hashes['reference']!r} "
                            f"fast={hashes['fast']!r}"
                        ),
                        source=source,
                        seed=seed,
                    )
                )
        return findings

    # -- internals --------------------------------------------------------------

    def _summary_hashes(self, program, root, domain, mode):
        """Summary hash list for one (domain, mode), or a note string."""
        with kernels.mode_ctx(mode):
            try:
                analyzer = Analyzer(
                    normalize_program(typecheck_program(program))
                )
                result = analyzer.analyze(
                    root,
                    domain=domain,
                    max_steps=self.config.engine_max_steps,
                    max_seconds=self.config.engine_max_seconds,
                )
            except CutpointError:
                return "cutpoint"
            except Exception as exc:  # pragma: no cover - surfaced as finding
                return f"{type(exc).__name__}: {exc}"
            if result.diagnostics:
                return "budget"
            return sorted(
                (graph_hash(entry.graph), heapset_hash(summary, result.domain))
                for entry, summary in result.summaries
            )
