"""Differential soundness oracle: concrete runs vs. abstract summaries.

For one program and one root procedure the oracle

1. executes the root concretely (``concrete.interp.Interpreter``) on
   randomized inputs, recording input/output *views* (integers and lists
   of integers);
2. analyzes the root with :class:`repro.Analyzer` in both the AU and AM
   domains;
3. checks γ-membership: the summary is a *disjunction* of abstract
   heaps, so every observed input/output pair must be covered by at
   least one heap whose backbone matches the observed shapes and whose
   data-word value is *satisfied* by the observed words (DESIGN.md §6);
4. checks lattice laws on the domain values the run produced: join is an
   upper bound, widen covers join, meet is a lower bound, widening
   stabilizes, and γ is monotone across join/widen on the concrete
   witnesses gathered in step 3.

Failures are returned as :class:`Finding` records carrying everything the
shrinker and the corpus need to replay them.  Runs the harness cannot
judge are *skipped*, not failed: concrete errors (NULL dereference, step
budget), infeasible paths, cyclic outputs (no word view), programs the
analysis rejects (``CutpointError``: outside the supported fragment), and
analyses that hit the engine budget (partial summaries carry no soundness
promise).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.concrete.heap import dll_violations, from_cells, to_cells, to_dll_cells
from repro.concrete.interp import (
    AssertFailure,
    AssumeFailure,
    ConcreteError,
    Interpreter,
)
from repro.core.api import Analyzer, AnalysisResult
from repro.core.localheap import CutpointError
from repro.datawords import terms as T
from repro.lang import ast as A
from repro.lang.ast import uses_prev
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lang.typecheck import typecheck_program
from repro.shape import dll as dll_rules
from repro.shape.graph import NULL


@dataclass
class OracleConfig:
    """Knobs for one oracle run."""

    rounds: int = 5  # concrete executions per program
    max_interp_steps: int = 200_000
    engine_max_steps: Optional[int] = 60_000  # per-domain analysis budget
    # Wall-clock cap per analysis: one AU step can sink minutes into
    # exact-LP fallbacks, so steps alone don't bound fuzzing latency.  A
    # capped run surfaces as diagnostics (result.ok == False): γ-checks
    # are skipped, lattice checks still run on the partial summaries.
    engine_max_seconds: Optional[float] = 60.0
    domains: Tuple[str, ...] = ("am", "au")
    check_lattice: bool = True
    max_lattice_pairs: int = 16
    widen_chain_bound: int = 40
    max_list_len: int = 4
    data_lo: int = -9
    data_hi: int = 9


@dataclass
class Finding:
    """One oracle failure, self-contained for replay and shrinking."""

    kind: str  # "gamma" | "no_shape" | "dll" | "lattice" | "crash"
    domain: str  # "am" | "au"
    root: str
    message: str
    source: str  # pretty-printed program text
    inputs: Optional[List] = None  # input views of the failing observation
    seed: Optional[int] = None

    def signature(self) -> Tuple[str, str]:
        """What must be preserved while shrinking: failure kind + domain."""
        return (self.kind, self.domain)

    def describe(self) -> str:
        lines = [f"[{self.kind}/{self.domain}] root={self.root}: {self.message}"]
        if self.inputs is not None:
            lines.append(f"  inputs: {self.inputs}")
        return "\n".join(lines)


@dataclass
class _Observation:
    views: List  # input views, aligned with cfg.inputs
    in_words: Dict[str, List[int]]
    in_data: Dict[str, int]
    out_words: Dict[str, List[int]]
    out_data: Dict[str, int]
    # DLL mode only: output name -> concrete back-pointer invariant held
    out_dll: Dict[str, bool] = field(default_factory=dict)


class Oracle:
    def __init__(self, config: Optional[OracleConfig] = None):
        self.config = config or OracleConfig()
        # skip accounting, so capped/skipped work is never silent:
        # cutpoint -> domain outside fragment, budget -> γ-check skipped
        self.skips: Dict[str, int] = {"cutpoint": 0, "budget": 0}

    # -- input generation ------------------------------------------------------

    def random_input_views(self, rng: random.Random, cfg) -> List:
        """One set of input views (ints and lists of ints) for a CFG."""
        views: List = []
        for p in cfg.inputs:
            if p.type == A.INT:
                views.append(rng.randint(self.config.data_lo, self.config.data_hi))
            else:
                views.append(
                    [
                        rng.randint(self.config.data_lo, self.config.data_hi)
                        for _ in range(rng.randint(0, self.config.max_list_len))
                    ]
                )
        return views

    # -- entry points ----------------------------------------------------------

    def check_program(
        self, program: A.Program, root: str, seed: int
    ) -> List[Finding]:
        """Fuzz one program: random inputs derived from ``seed``."""
        try:
            norm = normalize_program(typecheck_program(program))
            analyzer = Analyzer(norm)
            cfg = analyzer.icfg.cfg(root)
        except Exception as exc:  # generator guarantees this never happens
            return [
                Finding(
                    kind="crash",
                    domain="frontend",
                    root=root,
                    message=f"{type(exc).__name__}: {exc}",
                    source=pretty_program(program),
                    seed=seed,
                )
            ]
        rng = random.Random(seed)
        views_list = [
            self.random_input_views(rng, cfg) for _ in range(self.config.rounds)
        ]
        return self.check_views(program, root, views_list, seed=seed)

    def check_source(
        self,
        source: str,
        root: str,
        views_list: Sequence[List],
        seed: Optional[int] = None,
    ) -> List[Finding]:
        """Replay a corpus entry: parse source, then :meth:`check_views`."""
        program = typecheck_program(parse_program(source))
        return self.check_views(program, root, views_list, seed=seed)

    def check_views(
        self,
        program: A.Program,
        root: str,
        views_list: Sequence[List],
        seed: Optional[int] = None,
    ) -> List[Finding]:
        """Deterministic check of one program on explicit input views."""
        norm = normalize_program(typecheck_program(program))
        source = pretty_program(program)
        analyzer = Analyzer(norm)
        cfg = analyzer.icfg.cfg(root)
        interp = Interpreter(analyzer.icfg, max_steps=self.config.max_interp_steps)

        # prev-using programs get well-formed DLL inputs -- matching the
        # abstract generic entry, which assumes arguments are DLLs -- and
        # their outputs are audited against the concrete back-pointer
        # invariant (the --dll soundness oracle).
        dll = uses_prev(norm)
        observations = [
            obs
            for views in views_list
            if (obs := self._observe(interp, cfg, root, views, dll=dll)) is not None
        ]

        findings: List[Finding] = []
        for domain in self.config.domains:
            findings.extend(
                self._check_domain(
                    analyzer, cfg, root, domain, observations, source, seed
                )
            )
        return findings

    # -- concrete side -----------------------------------------------------------

    def _observe(
        self, interp, cfg, root: str, views: List, dll: bool = False
    ) -> Optional[_Observation]:
        build = to_dll_cells if dll else to_cells
        args = [
            build(list(v)) if isinstance(v, list) else v for v in views
        ]
        try:
            outputs = interp.run(root, args)
        except (ConcreteError, AssumeFailure, AssertFailure, RecursionError):
            return None  # the run itself is out of scope; not a finding
        in_words: Dict[str, List[int]] = {}
        in_data: Dict[str, int] = {}
        for p, view in zip(cfg.inputs, views):
            if p.type == A.LIST:
                in_words[T.entry_copy(p.name)] = list(view)
            else:
                # only the entry snapshot: the program may overwrite p.name
                in_data[T.entry_copy(p.name)] = view
        out_words: Dict[str, List[int]] = {}
        out_data: Dict[str, int] = {}
        out_dll: Dict[str, bool] = {}
        for p, value in zip(cfg.outputs, outputs):
            if p.type == A.LIST:
                try:
                    out_words[p.name] = from_cells(value)
                except ValueError:
                    return None  # cyclic output: no word view exists
                if dll:
                    out_dll[p.name] = not dll_violations(value)
            else:
                out_data[p.name] = value
        return _Observation(views, in_words, in_data, out_words, out_data, out_dll)

    # -- abstract side -------------------------------------------------------------

    def _check_domain(
        self,
        analyzer: Analyzer,
        cfg,
        root: str,
        domain: str,
        observations: Sequence[_Observation],
        source: str,
        seed: Optional[int],
    ) -> List[Finding]:
        config = self.config
        try:
            result = analyzer.analyze(
                root,
                domain=domain,
                max_steps=config.engine_max_steps,
                max_seconds=config.engine_max_seconds,
            )
        except CutpointError:
            self.skips["cutpoint"] += 1
            return []  # program is outside the supported fragment
        except Exception as exc:
            return [
                Finding(
                    kind="crash",
                    domain=domain,
                    root=root,
                    message=f"{type(exc).__name__}: {exc}",
                    source=source,
                    seed=seed,
                )
            ]
        findings: List[Finding] = []
        witnesses: List[Tuple[str, object, Dict, Dict]] = []
        if result.ok:  # partial summaries carry no soundness promise
            for obs in observations:
                findings.extend(
                    self._gamma_check(result, root, domain, obs, source, seed, witnesses)
                )
        else:
            self.skips["budget"] += 1
        if config.check_lattice:
            findings.extend(
                self._lattice_check(result, root, domain, source, seed, witnesses)
            )
        return findings

    def _gamma_check(
        self,
        result: AnalysisResult,
        root: str,
        domain: str,
        obs: _Observation,
        source: str,
        seed: Optional[int],
        witnesses: List,
    ) -> List[Finding]:
        """γ-membership of one observation in the summary disjunction.

        A :class:`HeapSet` is a *disjunction*: the run is covered as soon
        as one heap both matches the backbone and satisfies the words.
        Distinct disjuncts may share a backbone under our partial binding
        (a single abstract node matches words of any length) while their
        values carve up the lengths between them, so a violated-but-
        matching disjunct alone is not a bug -- only an observation no
        disjunct covers is.
        """
        bindings = dict(obs.in_words)
        bindings.update(obs.out_words)
        data_env = dict(obs.in_data)
        data_env.update(obs.out_data)
        shape_matched = False
        covered = False
        violated: List[str] = []
        dll_mismatch: List[str] = []
        for entry, summary in result.summaries:
            for heap in summary:
                words_env = _bind_words(heap.graph, bindings)
                if words_env is None:
                    continue
                shape_matched = True
                if result.domain.satisfied_by(heap.value, words_env, data_env):
                    mismatch = self._dll_mismatch(result, heap, obs)
                    if mismatch is not None:
                        dll_mismatch.append(mismatch)
                        continue
                    covered = True
                    witnesses.append(
                        (heap.graph.key(), heap.value, words_env, data_env)
                    )
                else:
                    violated.append(heap.describe(result.domain))
        if covered:
            return []
        if dll_mismatch:
            # Some disjunct covers the words but its DLL attributes make a
            # definite claim the concrete back pointers refute.
            return [
                Finding(
                    kind="dll",
                    domain=domain,
                    root=root,
                    message=(
                        f"covering disjuncts contradict the concrete back-"
                        f"pointer invariant on {obs.views} -> {obs.out_words}: "
                        + "; ".join(dll_mismatch[:3])
                    ),
                    source=source,
                    inputs=obs.views,
                    seed=seed,
                )
            ]
        if shape_matched:
            details = "; ".join(violated[:3])
            return [
                Finding(
                    kind="gamma",
                    domain=domain,
                    root=root,
                    message=(
                        f"no summary disjunct covers the run {obs.views} -> "
                        f"{obs.out_words} {obs.out_data}; matching-but-"
                        f"violated: {details}"
                    ),
                    source=source,
                    inputs=obs.views,
                    seed=seed,
                )
            ]
        return [
            Finding(
                kind="no_shape",
                domain=domain,
                root=root,
                message=(
                    f"no summary backbone matches the run "
                    f"{obs.views} -> {obs.out_words} {obs.out_data}"
                ),
                source=source,
                inputs=obs.views,
                seed=seed,
            )
        ]

    def _dll_mismatch(self, result, heap, obs: _Observation) -> Optional[str]:
        """Definite DLL claims of a covering disjunct vs. concrete truth.

        ``consistent`` promises every concretization is a well-formed DLL,
        ``broken`` that none is; either claim is refutable by the observed
        run.  ``unknown`` never conflicts.  Returns a description of the
        first conflict, or ``None`` when the disjunct is compatible.
        """
        for var, wellformed in obs.out_dll.items():
            verdict = dll_rules.classify_heap(heap, result.domain, [var])
            if verdict == dll_rules.CONSISTENT and not wellformed:
                return f"{var}: abstractly consistent, concretely broken"
            if verdict == dll_rules.BROKEN and wellformed:
                return f"{var}: abstractly broken, concretely well-formed"
        return None

    # -- lattice laws ---------------------------------------------------------------

    def _lattice_check(
        self,
        result: AnalysisResult,
        root: str,
        domain: str,
        source: str,
        seed: Optional[int],
        witnesses: List,
    ) -> List[Finding]:
        ldw = result.domain
        by_key: Dict[object, List] = {}
        for entry, summary in result.summaries:
            for heap in summary:
                by_key.setdefault(heap.graph.key(), []).append(heap.value)

        pairs: List[Tuple[object, object, object]] = []  # (key, a, b)
        for key, values in by_key.items():
            for i, a in enumerate(values):
                pairs.append((key, a, a))
                pairs.append((key, a, ldw.top()))
                pairs.append((key, a, ldw.bottom()))
                for b in values[i + 1 :]:
                    pairs.append((key, a, b))
        pairs = pairs[: self.config.max_lattice_pairs]

        def finding(law: str, detail: str) -> Finding:
            return Finding(
                kind="lattice",
                domain=domain,
                root=root,
                message=f"{law}: {detail}",
                source=source,
                seed=seed,
            )

        findings: List[Finding] = []
        for key, a, b in pairs:
            join = ldw.join(a, b)
            if not (ldw.leq(a, join) and ldw.leq(b, join)):
                findings.append(
                    finding(
                        "join-upper-bound",
                        f"join({ldw.describe(a)}, {ldw.describe(b)}) = "
                        f"{ldw.describe(join)} is not above both arguments",
                    )
                )
            widen = ldw.widen(a, b)
            if not ldw.leq(join, widen):
                findings.append(
                    finding(
                        "widen-covers-join",
                        f"widen({ldw.describe(a)}, {ldw.describe(b)}) = "
                        f"{ldw.describe(widen)} does not cover the join "
                        f"{ldw.describe(join)}",
                    )
                )
            meet = ldw.meet(a, b)
            if not (ldw.leq(meet, a) and ldw.leq(meet, b)):
                findings.append(
                    finding(
                        "meet-lower-bound",
                        f"meet({ldw.describe(a)}, {ldw.describe(b)}) = "
                        f"{ldw.describe(meet)} is not below both arguments",
                    )
                )
            # widening stabilizes: iterate against an (increasing) target
            w = a
            for _ in range(self.config.widen_chain_bound):
                nxt = ldw.widen(w, ldw.join(w, b))
                if ldw.leq(nxt, w):
                    break
                w = nxt
            else:
                findings.append(
                    finding(
                        "widen-stabilizes",
                        f"widening chain from {ldw.describe(a)} towards "
                        f"{ldw.describe(b)} did not stabilize within "
                        f"{self.config.widen_chain_bound} steps",
                    )
                )

        # γ-monotonicity on the concrete witnesses gathered by the γ-check
        for key, value, words_env, data_env in witnesses:
            for other in by_key.get(key, []):
                join = ldw.join(value, other)
                if not ldw.satisfied_by(join, words_env, data_env):
                    findings.append(
                        finding(
                            "join-gamma-monotone",
                            f"a witness of {ldw.describe(value)} violates "
                            f"join with {ldw.describe(other)}",
                        )
                    )
                widen = ldw.widen(value, other)
                if not ldw.satisfied_by(widen, words_env, data_env):
                    findings.append(
                        finding(
                            "widen-gamma-monotone",
                            f"a witness of {ldw.describe(value)} violates "
                            f"widen with {ldw.describe(other)}",
                        )
                    )
        return findings


def _bind_words(graph, bindings: Mapping[str, List[int]]) -> Optional[Dict]:
    """Match a summary backbone against concrete words.

    Returns a ``words_env`` for :meth:`satisfied_by` when every bound
    variable's shape is consistent with the graph, else ``None`` (the heap
    does not describe this run).  Only single-node chains bind their word;
    multi-node chains would need the concrete word cut at node boundaries,
    so they contribute no binding (vacuously sound).  A cyclic backbone
    never binds (concrete words are finite).
    """
    words_env: Dict[str, List[int]] = {}
    for var, node in graph.labels.items():
        if var not in bindings:
            continue
        concrete = bindings[var]
        if node == NULL:
            if concrete:
                return None  # abstract NULL vs. non-empty concrete list
            continue
        if not concrete:
            return None  # abstract cell vs. empty concrete list
        chain = []
        cur = node
        seen = set()
        while cur != NULL and cur not in seen:
            seen.add(cur)
            chain.append(cur)
            cur = graph.succ.get(cur, NULL)
        if cur != NULL:
            continue  # cyclic backbone: no finite word to bind
        if len(chain) == 1:
            prior = words_env.get(node)
            if prior is not None and prior != concrete:
                return None
            words_env[node] = list(concrete)
    return words_env
