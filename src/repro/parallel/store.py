"""Cross-run persistent summary store, shareable between worker processes.

:class:`~repro.engine.cache.SummaryCache` keeps one JSON file for a whole
cache and rewrites it wholesale on ``save()`` — fine for a single
process, unusable for a worker pool where many processes publish results
concurrently.  This store keeps **one file per cache key** under a
directory, so:

- writes are atomic and race-free: an entry is written to a unique
  temporary file in the same directory and ``os.replace``-d into place
  (readers see either the old entry or the new one, never a torn write);
- workers need no locks — the engine's cache keys are content hashes of
  ``(program, procedure, domain, patterns, k, hooks)``, so two workers
  racing on the same key are writing byte-identical payloads;
- entries self-invalidate: every entry records a *schema fingerprint*
  hashing the store layout version, the Python/pickle versions, and the
  source of the classes inside pickled payloads.  When any of those
  change, old entries silently miss (and are unlinked) instead of being
  unpickled into a wrong or crashing shape.

Payload encoding is shared with :mod:`repro.engine.cache` (base64 pickle
inside JSON), and the store exposes the same ``get``/``put``/``stats``
surface, so it can be passed directly as ``EngineOptions(cache=...)``.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import pickle
import sys
import tempfile
from typing import Any, Dict, Optional

from repro.engine.cache import CacheKey, decode_payload, encode_payload
from repro.engine.canon import stable_digest

# Bump when the on-disk entry layout (not the payload classes) changes.
SCHEMA_VERSION = 1

_fingerprint_cache: Optional[str] = None


def schema_fingerprint() -> str:
    """Fingerprint of everything a pickled payload's validity depends on.

    Payloads are pickles of ``(proc, AbstractHeap, HeapSet)`` triples
    whose values are domain objects (polyhedra, words, rationals); a
    change to any of those class definitions can make old pickles load
    into stale or undefined states.  Hashing their module sources makes
    entries written by different code versions miss instead.
    """
    global _fingerprint_cache
    if _fingerprint_cache is None:
        import repro.datawords.multiset
        import repro.datawords.universal
        import repro.numeric.polyhedra
        import repro.shape.abstract_heap
        import repro.shape.graph
        import repro.shape.heap_set

        parts = [
            SCHEMA_VERSION,
            sys.version_info[:2],
            pickle.HIGHEST_PROTOCOL,
        ]
        for module in (
            repro.shape.graph,
            repro.shape.abstract_heap,
            repro.shape.heap_set,
            repro.numeric.polyhedra,
            repro.datawords.multiset,
            repro.datawords.universal,
        ):
            source = inspect.getsource(module).encode("utf-8")
            parts.append(hashlib.blake2b(source, digest_size=8).hexdigest())
        _fingerprint_cache = stable_digest(*parts)
    return _fingerprint_cache


class PersistentSummaryStore:
    """A directory of one-file-per-key analysis payloads.

    API-compatible with :class:`SummaryCache` where the engine needs it
    (``get``/``put``/``stats``/``__len__``/``__contains__``), so a store
    can be handed to ``EngineOptions(cache=...)`` and shared by every
    worker of a pool and by later runs of the same program.
    """

    def __init__(self, directory: str, fingerprint: Optional[str] = None):
        self.directory = directory
        self.fingerprint = fingerprint or schema_fingerprint()
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.stale_discards = 0
        self.disk_errors = 0

    # -- paths -----------------------------------------------------------------

    def _path(self, key: CacheKey) -> str:
        return os.path.join(self.directory, stable_digest(key) + ".json")

    # -- lookup ----------------------------------------------------------------

    def get(self, key: CacheKey) -> Optional[Any]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self.disk_errors += 1
            self.misses += 1
            return None
        if doc.get("fingerprint") != self.fingerprint:
            self.stale_discards += 1
            self.misses += 1
            try:  # self-invalidate: a stale entry will never hit again
                os.unlink(path)
            except OSError:
                pass
            return None
        try:
            payload = decode_payload(doc["payload"])
        except Exception:
            self.disk_errors += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: CacheKey, payload: Any) -> None:
        try:
            doc = {
                "fingerprint": self.fingerprint,
                "key": repr(key),
                "payload": encode_payload(payload),
            }
        except Exception:
            self.disk_errors += 1
            return
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
            os.replace(tmp, path)  # atomic on POSIX: no torn reads
        except Exception:
            self.disk_errors += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self.stores += 1

    # -- queries ---------------------------------------------------------------

    def __contains__(self, key: CacheKey) -> bool:
        return os.path.exists(self._path(key))

    def __len__(self) -> int:
        try:
            return sum(
                1
                for name in os.listdir(self.directory)
                if name.endswith(".json") and not name.startswith(".tmp-")
            )
        except OSError:
            return 0

    def clear(self) -> None:
        for name in os.listdir(self.directory):
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass

    # -- accounting ------------------------------------------------------------

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate(), 4),
            "stores": self.stores,
            "stale_discards": self.stale_discards,
            "disk_errors": self.disk_errors,
        }
