"""Cross-run persistent summary store, shareable between worker processes.

:class:`~repro.engine.cache.SummaryCache` keeps one JSON file for a whole
cache and rewrites it wholesale on ``save()`` — fine for a single
process, unusable for a worker pool where many processes publish results
concurrently.  This store keeps **one file per cache key** under a
directory, so:

- writes are atomic and race-free: an entry is written to a unique
  temporary file in the same directory and ``os.replace``-d into place
  (readers see either the old entry or the new one, never a torn write);
- workers need no locks — the engine's cache keys are content hashes of
  ``(program, procedure, domain, patterns, k, hooks)``, so two workers
  racing on the same key are writing byte-identical payloads;
- entries self-invalidate: every entry records a *schema fingerprint*
  hashing the store layout version, the Python/pickle versions, and the
  source of the classes inside pickled payloads.  When any of those
  change, old entries silently miss (and are unlinked) instead of being
  unpickled into a wrong or crashing shape.

Payload encoding is shared with :mod:`repro.engine.cache` (base64 pickle
inside JSON), and the store exposes the same ``get``/``put``/``stats``
surface, so it can be passed directly as ``EngineOptions(cache=...)``.

**Pack files.**  One file per key does not survive millions of keys
(directory scans, inode pressure, per-file syscall overhead), so the
gateway's store tier (:mod:`repro.gateway.storetier`) periodically
*compacts* cold loose entries into immutable pack files under
``<directory>/packs/`` — one JSON object holding many entries.  Reads
here are pack-aware: a key that misses as a loose file is answered from
the newest pack that holds it.  Writes always go to loose files (packs
are immutable; GC deletes whole packs oldest-generation-first), so a
worker writing concurrently with a compaction can never be torn: the
worst case is a loose file and a pack both holding the byte-identical
content-addressed entry.

``python -m repro.parallel.store DIR --stats --gc --max-bytes N`` (also
installed as ``repro-store``) runs offline maintenance against any
existing store directory.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import pickle
import sys
import tempfile
from typing import Any, Dict, Optional

from repro.engine.cache import CacheKey, decode_payload, encode_payload
from repro.engine.canon import stable_digest

# Bump when the on-disk entry layout (not the payload classes) changes.
SCHEMA_VERSION = 1

_fingerprint_cache: Optional[str] = None


def schema_fingerprint() -> str:
    """Fingerprint of everything a pickled payload's validity depends on.

    Payloads are pickles of ``(proc, AbstractHeap, HeapSet)`` triples
    whose values are domain objects (polyhedra, words, rationals); a
    change to any of those class definitions can make old pickles load
    into stale or undefined states.  Hashing their module sources makes
    entries written by different code versions miss instead.
    """
    global _fingerprint_cache
    if _fingerprint_cache is None:
        import repro.datawords.multiset
        import repro.datawords.universal
        import repro.numeric.polyhedra
        import repro.shape.abstract_heap
        import repro.shape.graph
        import repro.shape.heap_set

        parts = [
            SCHEMA_VERSION,
            sys.version_info[:2],
            pickle.HIGHEST_PROTOCOL,
        ]
        for module in (
            repro.shape.graph,
            repro.shape.abstract_heap,
            repro.shape.heap_set,
            repro.numeric.polyhedra,
            repro.datawords.multiset,
            repro.datawords.universal,
        ):
            source = inspect.getsource(module).encode("utf-8")
            parts.append(hashlib.blake2b(source, digest_size=8).hexdigest())
        _fingerprint_cache = stable_digest(*parts)
    return _fingerprint_cache


class PersistentSummaryStore:
    """A directory of one-file-per-key analysis payloads.

    API-compatible with :class:`SummaryCache` where the engine needs it
    (``get``/``put``/``stats``/``__len__``/``__contains__``), so a store
    can be handed to ``EngineOptions(cache=...)`` and shared by every
    worker of a pool and by later runs of the same program.
    """

    PACK_DIR = "packs"

    def __init__(self, directory: str, fingerprint: Optional[str] = None):
        self.directory = directory
        self.fingerprint = fingerprint or schema_fingerprint()
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.pack_hits = 0
        self.stores = 0
        self.stale_discards = 0
        self.disk_errors = 0
        # digest -> pack path, lazily (re)built from the packs dir; the
        # loaded-pack cache keeps recently-read packs parsed in memory.
        self._pack_index: Optional[Dict[str, str]] = None
        self._pack_files: frozenset = frozenset()
        self._loaded_packs: Dict[str, Dict[str, Any]] = {}

    # -- paths -----------------------------------------------------------------

    def _path(self, key: CacheKey) -> str:
        return os.path.join(self.directory, stable_digest(key) + ".json")

    @property
    def pack_directory(self) -> str:
        return os.path.join(self.directory, self.PACK_DIR)

    # -- pack index ------------------------------------------------------------

    def _list_packs(self) -> frozenset:
        try:
            return frozenset(
                name
                for name in os.listdir(self.pack_directory)
                if name.startswith("pack-") and name.endswith(".json")
            )
        except OSError:
            return frozenset()

    def _refresh_pack_index(self) -> Dict[str, str]:
        """(Re)build digest -> pack path.  Packs are scanned newest
        generation first, so a digest present in several packs resolves
        to its freshest copy."""
        files = self._list_packs()
        if self._pack_index is not None and files == self._pack_files:
            return self._pack_index
        index: Dict[str, str] = {}
        for name in sorted(files, reverse=True):
            path = os.path.join(self.pack_directory, name)
            entries = self._load_pack(path)
            for digest in entries:
                index.setdefault(digest, path)
        self._pack_files = files
        self._pack_index = index
        self._loaded_packs = {
            path: doc
            for path, doc in self._loaded_packs.items()
            if os.path.basename(path) in files
        }
        return index

    def _load_pack(self, path: str) -> Dict[str, Any]:
        doc = self._loaded_packs.get(path)
        if doc is not None:
            return doc
        try:
            with open(path, "r", encoding="utf-8") as fh:
                loaded = json.load(fh)
            entries = loaded.get("entries") or {}
        except Exception:
            self.disk_errors += 1
            entries = {}
        self._loaded_packs[path] = entries
        return entries

    def _get_from_packs(self, digest: str) -> Optional[Any]:
        index = self._refresh_pack_index()
        path = index.get(digest)
        if path is None:
            return None
        doc = self._load_pack(path).get(digest)
        if doc is None:
            return None
        if doc.get("fingerprint") != self.fingerprint:
            self.stale_discards += 1
            return None
        try:
            payload = decode_payload(doc["payload"])
        except Exception:
            self.disk_errors += 1
            return None
        self.pack_hits += 1
        return payload

    # -- lookup ----------------------------------------------------------------

    def get(self, key: CacheKey) -> Optional[Any]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            payload = self._get_from_packs(stable_digest(key))
            if payload is None:
                self.misses += 1
            else:
                self.hits += 1
            return payload
        except Exception:
            self.disk_errors += 1
            self.misses += 1
            return None
        if doc.get("fingerprint") != self.fingerprint:
            self.stale_discards += 1
            self.misses += 1
            try:  # self-invalidate: a stale entry will never hit again
                os.unlink(path)
            except OSError:
                pass
            return None
        try:
            payload = decode_payload(doc["payload"])
        except Exception:
            self.disk_errors += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: CacheKey, payload: Any) -> None:
        try:
            doc = {
                "fingerprint": self.fingerprint,
                "key": repr(key),
                "payload": encode_payload(payload),
            }
        except Exception:
            self.disk_errors += 1
            return
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
            os.replace(tmp, path)  # atomic on POSIX: no torn reads
        except Exception:
            self.disk_errors += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self.stores += 1

    # -- queries ---------------------------------------------------------------

    def __contains__(self, key: CacheKey) -> bool:
        if os.path.exists(self._path(key)):
            return True
        return stable_digest(key) in self._refresh_pack_index()

    def loose_count(self) -> int:
        try:
            return sum(
                1
                for name in os.listdir(self.directory)
                if name.endswith(".json") and not name.startswith(".tmp-")
            )
        except OSError:
            return 0

    def packed_count(self) -> int:
        return len(self._refresh_pack_index())

    def __len__(self) -> int:
        return self.loose_count() + self.packed_count()

    def total_bytes(self) -> int:
        """On-disk footprint: loose entries plus pack files."""
        total = 0
        try:
            for name in os.listdir(self.directory):
                if name.endswith(".json") and not name.startswith(".tmp-"):
                    try:
                        total += os.path.getsize(
                            os.path.join(self.directory, name)
                        )
                    except OSError:
                        pass
        except OSError:
            return total
        for name in self._list_packs():
            try:
                total += os.path.getsize(os.path.join(self.pack_directory, name))
            except OSError:
                pass
        return total

    def clear(self) -> None:
        for name in os.listdir(self.directory):
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass
        for name in self._list_packs():
            try:
                os.unlink(os.path.join(self.pack_directory, name))
            except OSError:
                pass
        self._pack_index = None
        self._pack_files = frozenset()
        self._loaded_packs.clear()

    # -- accounting ------------------------------------------------------------

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        return {
            "entries": len(self),
            "loose": self.loose_count(),
            "packed": self.packed_count(),
            "packs": len(self._list_packs()),
            "bytes": self.total_bytes(),
            "hits": self.hits,
            "pack_hits": self.pack_hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate(), 4),
            "stores": self.stores,
            "stale_discards": self.stale_discards,
            "disk_errors": self.disk_errors,
        }


def main(argv=None) -> int:
    """``repro-store`` / ``python -m repro.parallel.store``: offline
    maintenance (stats, compaction, GC) for an existing store directory.

    Safe against a concurrently writing worker: compaction only bundles
    loose files it has fully read (content-addressed keys make a racing
    re-write byte-identical), packs are written atomically, and GC only
    unlinks whole files.
    """
    import argparse

    from repro.gateway.storetier import CompactingStore, StoreBudget

    ap = argparse.ArgumentParser(
        prog="repro-store",
        description="maintain a persistent summary store directory",
    )
    ap.add_argument("directory", help="store directory (as passed to --store)")
    ap.add_argument("--stats", action="store_true",
                    help="print entry/byte/pack accounting")
    ap.add_argument("--compact", action="store_true",
                    help="bundle loose entries into a pack file")
    ap.add_argument("--gc", action="store_true",
                    help="evict oldest generations until under --max-bytes")
    ap.add_argument("--max-bytes", type=int, default=None,
                    help="byte budget for --gc (default: keep everything)")
    ap.add_argument("--min-loose", type=int, default=1,
                    help="compact only when at least this many loose files")
    ap.add_argument("--json", action="store_true",
                    help="print accounting as JSON")
    args = ap.parse_args(argv)
    if not os.path.isdir(args.directory):
        print(f"error: {args.directory} is not a directory", file=sys.stderr)
        return 2
    budget = StoreBudget(
        max_bytes=args.max_bytes, compact_min_loose=max(1, args.min_loose)
    )
    store = CompactingStore(args.directory, budget=budget)
    report: Dict[str, Any] = {"directory": args.directory}
    if args.compact:
        report["compacted"] = store.compact()
    if args.gc:
        report["gc"] = store.gc()
    if args.stats or not (args.compact or args.gc):
        report["stats"] = store.stats()
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        for key, value in report.items():
            if isinstance(value, dict):
                print(f"{key}:")
                for k, v in value.items():
                    print(f"  {k:<16} {v}")
            else:
                print(f"{key}: {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
