"""Batch analysis: fan analysis requests out over the worker pool.

A :class:`AnalysisRequest` is a self-contained, picklable description of
one root analysis (program, procedure, domain, fold bound, budgets,
store/trace locations).  The worker entry point
:func:`run_analysis_request` rebuilds an :class:`~repro.core.api.
Analyzer` in the worker process, runs the analysis (with the shared
:class:`~repro.parallel.store.PersistentSummaryStore` as its summary
cache when configured), and returns a slim :class:`AnalysisOutput` —
summaries, their canonical hashes, diagnostics, and engine stats; never
live engine objects.

Determinism: every request is analyzed by the same sequential engine a
direct ``Analyzer.analyze`` call uses, in a fresh engine instance, so a
request's output is a pure function of the request — independent of
worker interleaving.  ``run_batch`` then orders outcomes by submission
order, so a parallel batch equals the sequential batch result-for-result
(asserted over the whole corpus in ``tests/test_parallel.py``).
"""

from __future__ import annotations

import glob
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine import EngineOptions
from repro.engine.canon import graph_hash, heapset_hash
from repro.engine.telemetry import merge_traces
from repro.parallel.pool import BUDGET, OK, PoolTask, TaskOutcome, WorkerPool

# Budget-diagnostic kinds that downgrade an "ok" worker report: the
# analysis completed with *partial* summaries.
_BUDGET_KINDS = {
    "record_iterations",
    "entry_widenings",
    "global_steps",
    "wall_clock",
}


@dataclass
class AnalysisRequest:
    """One root analysis, picklable for dispatch to a worker."""

    task_id: str
    program: Any  # a normalized repro.lang.ast.Program
    proc: str
    domain: str = "au"
    k: int = 0
    strengthened: bool = False  # AHS(AM) then AHS(AU) with strengthen_M
    max_steps: Optional[int] = None
    max_seconds: Optional[float] = None
    store_dir: Optional[str] = None
    trace_dir: Optional[str] = None
    deps: Tuple[str, ...] = ()
    # How store entries are keyed: "program" uses the whole-program
    # fingerprint (any edit invalidates everything); "cone" rewrites it to
    # the root's call-graph cone fingerprint, so entries survive edits
    # outside the cone (the incremental service's mode — see
    # repro.service.depindex.ConeKeyedStore).
    key_mode: str = "program"


@dataclass
class AnalysisOutput:
    """Worker-side result of one request (picklable, no engine objects)."""

    proc: str
    domain: str
    summaries: List[Tuple]  # [(entry AbstractHeap, summary HeapSet)]
    summary_hashes: List[Tuple[str, str]]  # canonical (entry, summary) digests
    diagnostics: List[Dict[str, Any]]
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.diagnostics


def run_analysis_request(request: AnalysisRequest) -> AnalysisOutput:
    """Worker entry point: one full (sequential) root analysis."""
    from repro.core.api import Analyzer  # deferred: workers may be spawned
    from repro.parallel.store import PersistentSummaryStore

    cache = None
    analyzer = Analyzer(request.program)
    if request.store_dir is not None:
        cache = PersistentSummaryStore(request.store_dir)
        if request.key_mode == "cone":
            from repro.service.depindex import ConeKeyedStore, DependencyIndex

            index = DependencyIndex.build(analyzer.icfg)
            cache = ConeKeyedStore(cache, index.cone_fingerprints())
        analyzer.cache = cache
    trace_path = None
    if request.trace_dir is not None:
        os.makedirs(request.trace_dir, exist_ok=True)
        trace_path = os.path.join(
            request.trace_dir, f"{request.task_id}.trace.jsonl"
        )
    opts = EngineOptions(trace_path=trace_path)
    if request.strengthened:
        result = analyzer.analyze_strengthened(
            request.proc,
            k=request.k,
            max_steps=request.max_steps,
            engine_opts=opts,
        )
    else:
        result = analyzer.analyze(
            request.proc,
            domain=request.domain,
            k=request.k,
            max_steps=request.max_steps,
            max_seconds=request.max_seconds,
            engine_opts=opts,
        )
    stats = {
        key: result.stats.get(key)
        for key in (
            "records",
            "steps",
            "from_cache",
            "records.reanalyzed",
            "time.fixpoint",
            "cpu.fixpoint",
        )
        if key in result.stats
    }
    if cache is not None:
        stats["store"] = cache.stats()
    return AnalysisOutput(
        proc=request.proc,
        domain=request.domain,
        summaries=list(result.summaries),
        summary_hashes=[
            (graph_hash(entry.graph), heapset_hash(summary, result.domain))
            for entry, summary in result.summaries
        ],
        diagnostics=[
            {
                "kind": diag.kind,
                "message": diag.message,
                "proc": diag.proc,
                "steps": diag.steps,
                "limit": diag.limit,
            }
            for diag in result.diagnostics
        ],
        stats=stats,
    )


@dataclass
class BatchReport:
    """Outcomes of one batch run, in request order."""

    outcomes: List[TaskOutcome]
    wall_time: float
    jobs: int
    trace_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return all(outcome.status == OK for outcome in self.outcomes)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for outcome in self.outcomes:
            out[outcome.status] = out.get(outcome.status, 0) + 1
        out["retried"] = sum(1 for o in self.outcomes if o.retried)
        return out

    def format_table(self) -> str:
        lines = [
            f"{'task':<24} {'status':<8} {'wall(s)':>8} {'cpu(s)':>8} "
            f"{'retry':>5}  detail"
        ]
        for outcome in self.outcomes:
            cpu = f"{outcome.cpu_time:8.2f}" if outcome.cpu_time is not None else "       -"
            detail = ""
            output = outcome.result
            if isinstance(output, AnalysisOutput):
                detail = f"{len(output.summaries)} summaries"
                if output.diagnostics:
                    detail += f", {output.diagnostics[0]['kind']}"
            elif outcome.error is not None:
                detail = outcome.error.get("message", "")[:60]
            lines.append(
                f"{outcome.task_id:<24} {outcome.status:<8} "
                f"{outcome.wall_time:8.2f} {cpu} {outcome.retries:>5}  {detail}"
            )
        counts = ", ".join(f"{k}={v}" for k, v in sorted(self.counts().items()))
        lines.append(
            f"batch: {len(self.outcomes)} task(s) in {self.wall_time:.2f}s "
            f"wall with jobs={self.jobs} ({counts})"
        )
        return "\n".join(lines)


def _classify(outcome: TaskOutcome) -> TaskOutcome:
    """Downgrade an "ok" outcome whose analysis only produced partial
    summaries because an engine budget fired (the worker reports those as
    diagnostics on the output rather than a raised exception)."""
    output = outcome.result
    if (
        outcome.status == OK
        and isinstance(output, AnalysisOutput)
        and any(d["kind"] in _BUDGET_KINDS for d in output.diagnostics)
    ):
        outcome.status = BUDGET
        outcome.error = dict(output.diagnostics[0])
    return outcome


def run_batch(
    requests: Sequence[AnalysisRequest],
    jobs: int = 1,
    retry_crashed: int = 1,
    hard_grace: float = 10.0,
    trace_path: Optional[str] = None,
    on_outcome=None,
) -> BatchReport:
    """Run analysis requests on a pool of ``jobs`` workers.

    ``jobs=0`` runs every request inline in this process (no worker
    processes) — the sequential baseline the determinism tests and the
    benchmark's sequential-vs-parallel comparison use.  ``trace_path``
    merges the per-worker JSONL telemetry traces (requests must carry a
    ``trace_dir``) into one ordered run trace after the batch finishes.
    """
    start = time.perf_counter()
    if jobs == 0:
        outcomes = []
        for request in requests:
            t0 = time.perf_counter()
            cpu0 = time.process_time()
            try:
                output = run_analysis_request(request)
                outcome = TaskOutcome(
                    task_id=request.task_id,
                    status=OK,
                    result=output,
                    wall_time=time.perf_counter() - t0,
                    cpu_time=time.process_time() - cpu0,
                )
            except Exception as exc:
                outcome = TaskOutcome(
                    task_id=request.task_id,
                    status="failed",
                    error={"type": type(exc).__name__, "message": str(exc)},
                    wall_time=time.perf_counter() - t0,
                )
            outcome = _classify(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
            outcomes.append(outcome)
    else:
        pool = WorkerPool(
            jobs=jobs, retry_crashed=retry_crashed, hard_grace=hard_grace
        )
        tasks = [
            PoolTask(
                task_id=request.task_id,
                fn=run_analysis_request,
                args=(request,),
                budget=request.max_seconds,
                deps=request.deps,
            )
            for request in requests
        ]
        outcomes = [
            _classify(outcome)
            for outcome in pool.run(tasks, on_outcome=on_outcome)
        ]

    merged = None
    if trace_path is not None:
        trace_dirs = {
            request.trace_dir
            for request in requests
            if request.trace_dir is not None
        }
        parts: List[str] = []
        for directory in sorted(trace_dirs):
            parts.extend(
                sorted(glob.glob(os.path.join(directory, "*.trace.jsonl")))
            )
        if parts:
            merge_traces(parts, trace_path)
            merged = trace_path
    return BatchReport(
        outcomes=outcomes,
        wall_time=time.perf_counter() - start,
        jobs=jobs,
        trace_path=merged,
    )


def plan_requests(
    analyzer,
    procs: Optional[Sequence[str]] = None,
    domains: Sequence[str] = ("au",),
    k: int = 0,
    strengthened: bool = False,
    max_steps: Optional[int] = None,
    max_seconds: Optional[float] = None,
    store_dir: Optional[str] = None,
    trace_dir: Optional[str] = None,
    key_mode: str = "program",
) -> List[AnalysisRequest]:
    """Shard a program's analysis into requests, callee SCCs first.

    Requests of the same call-graph SCC shard one task per (root,
    domain); a request depends on the same-domain requests of the shards
    its SCC calls into, so independent shards run concurrently and
    callees publish their store entries before callers start.
    """
    from repro.parallel.shard import plan_shards

    plan = plan_shards(analyzer.icfg, procs)
    requests: List[AnalysisRequest] = []
    planned = {shard.shard_id for shard in plan}
    for shard in plan:
        for domain in domains:
            for root in shard.roots:
                requests.append(
                    AnalysisRequest(
                        task_id=f"{root}.{domain}",
                        program=analyzer.program,
                        proc=root,
                        domain=domain,
                        k=k,
                        strengthened=strengthened and domain == "au",
                        max_steps=max_steps,
                        max_seconds=max_seconds,
                        store_dir=store_dir,
                        trace_dir=trace_dir,
                        key_mode=key_mode,
                        deps=tuple(
                            f"{dep_root}.{domain}"
                            for dep in shard.deps
                            if dep in planned
                            for dep_root in next(
                                s.roots for s in plan if s.shard_id == dep
                            )
                        ),
                    )
                )
    return requests
