"""The parallel batch-analysis subsystem.

The engine subsystem (:mod:`repro.engine`) made one analysis fast and
reusable; this package makes *many* analyses fast: the summary-based
modularity of the paper's analysis (one record per ``(procedure,
entry)``, callee summaries composed at call edges) means independent
call-graph components — and independent programs — share no fixpoint
state and can run on separate worker processes.

- :mod:`repro.parallel.shard` — shards a program's analysis along the
  SCC condensation of its call graph; shards with no inter-dependencies
  run concurrently, dependent shards run callees-first;
- :mod:`repro.parallel.pool` — a fault-isolated ``multiprocessing``
  worker pool: one process per task attempt, per-task wall budgets with
  hard kills, one bounded retry on worker death, and structured
  :class:`~repro.parallel.pool.TaskOutcome` records (ok /
  budget-exceeded / crashed / retried) joined in deterministic order;
- :mod:`repro.parallel.batch` — picklable analysis requests, the worker
  entry point, and :func:`~repro.parallel.batch.run_batch`, which the
  ``Analyzer.analyze_batch`` facade and the ``python -m repro.parallel``
  CLI drive;
- :mod:`repro.parallel.store` — a cross-run persistent summary store
  (one atomic file per key, versioned by a schema fingerprint) shared by
  every worker and by later runs.

Parallel and sequential runs produce identical summaries: each request
is analyzed by the same deterministic sequential engine in a fresh
process, so outputs are pure functions of their requests, and outcomes
are joined in submission order (see DESIGN.md §9).
"""

from repro.parallel.batch import (
    AnalysisOutput,
    AnalysisRequest,
    BatchReport,
    plan_requests,
    run_analysis_request,
    run_batch,
)
from repro.parallel.pool import PoolTask, TaskOutcome, WorkerPool
from repro.parallel.shard import Shard, ShardPlan, plan_shards
from repro.parallel.store import PersistentSummaryStore, schema_fingerprint

__all__ = [
    "AnalysisOutput",
    "AnalysisRequest",
    "BatchReport",
    "PersistentSummaryStore",
    "PoolTask",
    "Shard",
    "ShardPlan",
    "TaskOutcome",
    "WorkerPool",
    "plan_requests",
    "plan_shards",
    "run_analysis_request",
    "run_batch",
    "schema_fingerprint",
]
