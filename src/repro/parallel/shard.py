"""SCC sharding of a program's analysis.

The unit of parallel work is a *shard*: one strongly connected component
of the call graph, carrying every requested root procedure that lives in
it.  Shards inherit the condensation's dependency structure (a shard
depends on the shards of the SCCs it calls into), so a scheduler can run
independent shards concurrently and dependent shards callees-first —
when shards publish their run payloads to a shared
:class:`~repro.parallel.store.PersistentSummaryStore`, a caller shard
that repeats a callee-rooted analysis finds it already published.

Each shard's analysis is *self-contained*: analyzing a root tabulates
every callee record it needs inside its own engine run, exactly as the
sequential engine does.  That is what makes the parallel join trivially
deterministic — per-root results do not depend on which other shards ran,
or in which order, so parallel and sequential runs produce identical
summaries (see DESIGN.md §9 for the argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.engine.scheduler import tarjan_scc


@dataclass(frozen=True)
class Shard:
    """One SCC of the call graph, as a schedulable unit of analysis."""

    shard_id: str
    procs: Tuple[str, ...]  # SCC members, sorted
    roots: Tuple[str, ...]  # requested roots inside this SCC, sorted
    rank: int  # condensation rank (callees have smaller ranks)
    deps: Tuple[str, ...]  # shard_ids of the SCCs this one calls into


@dataclass
class ShardPlan:
    """Shards in deterministic bottom-up (callees-first) order."""

    shards: List[Shard] = field(default_factory=list)

    def __iter__(self):
        return iter(self.shards)

    def __len__(self) -> int:
        return len(self.shards)

    def roots(self) -> List[str]:
        return [root for shard in self.shards for root in shard.roots]

    def levels(self) -> List[List[Shard]]:
        """Kahn layering of the shard DAG: every shard of a level is
        independent of the others, so a whole level can run concurrently."""
        depth: Dict[str, int] = {}
        by_id = {shard.shard_id: shard for shard in self.shards}
        for shard in self.shards:  # deps precede in the bottom-up order
            depth[shard.shard_id] = 1 + max(
                (depth[d] for d in shard.deps if d in by_id), default=-1
            )
        out: List[List[Shard]] = []
        for shard in self.shards:
            level = depth[shard.shard_id]
            while len(out) <= level:
                out.append([])
            out[level].append(shard)
        return out

    def describe(self) -> str:
        lines = [f"shard plan: {len(self.shards)} shard(s)"]
        for level_no, level in enumerate(self.levels()):
            names = ", ".join(
                "{" + ",".join(shard.procs) + "}" for shard in level
            )
            lines.append(f"  level {level_no}: {names}")
        return "\n".join(lines)


def plan_shards(icfg, procs: Optional[Sequence[str]] = None) -> ShardPlan:
    """Shard the analysis of ``procs`` (default: every procedure).

    Returns the shards holding at least one requested root, plus their
    dependency closure restricted to other *returned* shards, in
    bottom-up order.  Mutually recursive procedures always land in the
    same shard, so the per-shard analyses never race on a shared
    fixpoint.
    """
    graph = icfg.call_graph()
    requested = set(graph) if procs is None else set(procs)
    unknown = requested - set(graph)
    if unknown:
        raise ValueError(f"unknown procedures: {sorted(unknown)}")

    components = tarjan_scc(graph)  # callees-first
    rank_of: Dict[str, int] = {}
    for rank, component in enumerate(components):
        for proc in component:
            rank_of[proc] = rank

    # Direct dependencies between SCCs.
    dep_ranks: Dict[int, Set[int]] = {rank: set() for rank in range(len(components))}
    for caller, callees in graph.items():
        for callee in callees:
            if callee not in rank_of:
                continue
            if rank_of[caller] != rank_of[callee]:
                dep_ranks[rank_of[caller]].add(rank_of[callee])

    shards: List[Shard] = []
    for rank, component in enumerate(components):
        roots = tuple(sorted(requested & set(component)))
        if not roots:
            continue
        shards.append(
            Shard(
                shard_id=f"scc{rank}",
                procs=tuple(component),
                roots=roots,
                rank=rank,
                deps=tuple(
                    f"scc{dep}"
                    for dep in sorted(dep_ranks[rank])
                    # only keep deps on shards that are part of the plan
                    if any(requested & set(components[dep]))
                ),
            )
        )
    return ShardPlan(shards)
