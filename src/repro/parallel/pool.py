"""A multiprocessing worker pool with fault isolation and task budgets.

Why not ``concurrent.futures.ProcessPoolExecutor``: a worker dying there
(OOM kill, segfault in a native extension, a fuzz-found interpreter
crash) raises ``BrokenProcessPool`` and poisons the whole executor, and
there is no per-task hard timeout.  Analysis tasks are chunky (whole
fixpoint runs, seconds each), so this pool runs **one process per task
attempt** with at most ``jobs`` alive at once:

- a worker crashing loses only its own task, which is retried once
  (``retry_crashed``) before being reported as ``crashed``;
- each task can carry a wall-clock ``budget``.  The task function is
  expected to enforce it cooperatively (the engine's
  ``EngineOptions.max_seconds`` raises ``AnalysisBudgetExceeded``, which
  the worker reports as a structured ``budget`` outcome with partial
  diagnostics); the pool additionally enforces ``budget + hard_grace``
  with SIGTERM/SIGKILL for steps that cannot observe the deadline (a
  single AU step can sink minutes into exact-LP fallbacks);
- tasks may declare dependencies (``deps``) on other task ids; a task is
  only started once its dependencies finished (in any state — tasks are
  self-contained, dependencies are scheduling hints that let callee
  shards publish summary-store entries before their callers start).

Results are joined deterministically: :meth:`WorkerPool.run` returns one
:class:`TaskOutcome` per task **in submission order**, regardless of
completion order.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.interproc import AnalysisBudgetExceeded

# Status values of a TaskOutcome.
OK = "ok"
BUDGET = "budget"  # cooperative budget hit, or hard wall-clock kill
CRASHED = "crashed"  # worker died without reporting (after retries)
FAILED = "failed"  # task raised an ordinary exception


@dataclass
class PoolTask:
    """One unit of work: a picklable callable plus scheduling metadata."""

    task_id: str
    fn: Callable
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    budget: Optional[float] = None  # wall seconds; None = unbounded
    deps: Tuple[str, ...] = ()


@dataclass
class TaskOutcome:
    """Structured per-task result record."""

    task_id: str
    status: str  # OK | BUDGET | CRASHED | FAILED
    result: Any = None
    error: Optional[Dict[str, Any]] = None
    wall_time: float = 0.0
    cpu_time: Optional[float] = None  # worker process_time; None on crash
    retries: int = 0
    worker_pid: Optional[int] = None

    @property
    def retried(self) -> bool:
        return self.retries > 0

    @property
    def ok(self) -> bool:
        return self.status == OK

    def describe(self) -> str:
        base = (
            f"{self.task_id}: {self.status} "
            f"wall={self.wall_time:.2f}s"
        )
        if self.cpu_time is not None:
            base += f" cpu={self.cpu_time:.2f}s"
        if self.retries:
            base += f" retries={self.retries}"
        if self.error is not None:
            detail = self.error.get("message") or self.error.get("kind", "")
            base += f" [{detail}]"
        return base


def _worker_main(conn, fn, args, kwargs) -> None:
    """Child entry: run the task, report (status, payload, wall, cpu)."""
    start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        result = fn(*args, **kwargs)
        message = (OK, result)
    except AnalysisBudgetExceeded as exc:
        message = (BUDGET, exc.to_dict())
    except BaseException as exc:  # report, don't let the child die silently
        message = (
            FAILED,
            {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
        )
    try:
        conn.send(
            message
            + (time.perf_counter() - start, time.process_time() - cpu_start)
        )
        conn.close()
    except Exception:  # parent gone or result unpicklable
        os._exit(81)


@dataclass
class _Running:
    task: PoolTask
    process: multiprocessing.Process
    conn: Any
    started: float
    deadline: Optional[float]
    attempt: int  # 0 = first try


class WorkerPool:
    """Run :class:`PoolTask`s on up to ``jobs`` worker processes.

    ``context`` selects the multiprocessing start method; the default
    prefers ``fork`` (no re-import cost per task, task functions need not
    be importable) and falls back to ``spawn`` elsewhere.
    """

    def __init__(
        self,
        jobs: int,
        retry_crashed: int = 1,
        hard_grace: float = 10.0,
        context: Optional[str] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.retry_crashed = retry_crashed
        self.hard_grace = hard_grace
        if context is None:
            methods = multiprocessing.get_all_start_methods()
            context = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(context)
        self.crash_retries = 0  # total crash-retries across run() calls

    # -- lifecycle of one attempt ------------------------------------------------

    def _start(self, task: PoolTask, attempt: int) -> _Running:
        recv, send = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(send, task.fn, task.args, task.kwargs),
            daemon=True,
        )
        process.start()
        send.close()  # child's end; parent keeps the read side
        started = time.monotonic()
        deadline = (
            started + task.budget + self.hard_grace
            if task.budget is not None
            else None
        )
        return _Running(task, process, recv, started, deadline, attempt)

    def _reap(self, running: _Running) -> Optional[TaskOutcome]:
        """Outcome of a started attempt, or None when it should retry."""
        task = running.task
        payload = None
        if running.conn.poll():
            try:
                payload = running.conn.recv()
            except (EOFError, OSError):
                payload = None
        running.process.join()
        running.conn.close()
        wall = time.monotonic() - running.started
        if payload is not None:
            status, body, task_wall, task_cpu = payload
            return TaskOutcome(
                task_id=task.task_id,
                status=status,
                result=body if status == OK else None,
                error=None if status == OK else body,
                wall_time=task_wall,
                cpu_time=task_cpu,
                retries=running.attempt,
                worker_pid=running.process.pid,
            )
        # Worker died without reporting: crashed.
        if running.attempt < self.retry_crashed:
            self.crash_retries += 1
            return None
        return TaskOutcome(
            task_id=task.task_id,
            status=CRASHED,
            error={
                "kind": "worker_death",
                "message": f"worker exited with code "
                f"{running.process.exitcode} before reporting",
                "exitcode": running.process.exitcode,
            },
            wall_time=wall,
            retries=running.attempt,
            worker_pid=running.process.pid,
        )

    def _kill(self, running: _Running) -> TaskOutcome:
        """Hard wall-clock kill: terminate, then SIGKILL stragglers."""
        running.process.terminate()
        running.process.join(2.0)
        if running.process.is_alive():
            running.process.kill()
            running.process.join()
        running.conn.close()
        task = running.task
        return TaskOutcome(
            task_id=task.task_id,
            status=BUDGET,
            error={
                "kind": "wall_clock_hard",
                "message": f"killed after exceeding the {task.budget:.0f}s "
                f"budget by more than {self.hard_grace:.0f}s",
                "limit": task.budget,
            },
            wall_time=time.monotonic() - running.started,
            retries=running.attempt,
            worker_pid=running.process.pid,
        )

    # -- the scheduler loop ---------------------------------------------------------

    def run(
        self,
        tasks: Sequence[PoolTask],
        on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
    ) -> List[TaskOutcome]:
        """Run all tasks; returns outcomes in submission order."""
        by_id = {task.task_id: task for task in tasks}
        if len(by_id) != len(tasks):
            raise ValueError("duplicate task ids")
        for task in tasks:
            for dep in task.deps:
                if dep not in by_id:
                    raise ValueError(
                        f"task {task.task_id!r} depends on unknown {dep!r}"
                    )

        outcomes: Dict[str, TaskOutcome] = {}
        done: set = set()
        # Ready / blocked queues, both in submission order.
        blocked: List[PoolTask] = [t for t in tasks if t.deps]
        ready: List[Tuple[PoolTask, int]] = [
            (t, 0) for t in tasks if not t.deps
        ]
        running: Dict[str, _Running] = {}

        def finish(outcome: TaskOutcome) -> None:
            outcomes[outcome.task_id] = outcome
            done.add(outcome.task_id)
            if on_outcome is not None:
                on_outcome(outcome)
            still: List[PoolTask] = []
            for task in blocked:
                if all(dep in done for dep in task.deps):
                    ready.append((task, 0))
                else:
                    still.append(task)
            blocked[:] = still

        while ready or running or blocked:
            while ready and len(running) < self.jobs:
                task, attempt = ready.pop(0)
                running[task.task_id] = self._start(task, attempt)
            if not running:
                if not ready and blocked:  # nothing can ever unblock them
                    raise ValueError(
                        "dependency cycle among tasks: "
                        + ", ".join(t.task_id for t in blocked)
                    )
                continue

            now = time.monotonic()
            expired = [
                r for r in running.values()
                if r.deadline is not None and now > r.deadline
            ]
            for r in expired:
                del running[r.task.task_id]
                finish(self._kill(r))
            if expired:
                continue

            timeout = 0.25
            deadlines = [
                r.deadline for r in running.values() if r.deadline is not None
            ]
            if deadlines:
                timeout = max(0.0, min(min(deadlines) - now, timeout))
            # Wait on the result pipes, not the process sentinels: a pipe
            # becomes readable both when a result arrives (possibly before
            # the child exits — waiting on the sentinel instead would
            # deadlock against a child blocked sending a large result)
            # and at EOF when the child dies without reporting.
            conns = {r.conn: r for r in running.values()}
            for conn in _conn_wait(list(conns), timeout=timeout):
                r = conns[conn]
                del running[r.task.task_id]
                outcome = self._reap(r)
                if outcome is None:  # crashed; retry once
                    ready.insert(0, (r.task, r.attempt + 1))
                else:
                    finish(outcome)

        return [outcomes[task.task_id] for task in tasks]
