"""Batch-analysis CLI: fan programs and procedures out over a worker pool.

Examples::

    # analyze every procedure of a program, 4 workers, both domains
    python -m repro.parallel prog.lisl --jobs 4 --domains am,au

    # the paper's Table 1 program, AM only, with a persistent store
    python -m repro.parallel --table1 --domains am --jobs 4 --store .stores/t1

    # specific procedures, per-task wall budget, merged telemetry trace
    python -m repro.parallel prog.lisl --procs quicksort,qsplit \\
        --budget 120 --trace run.trace.jsonl

Exit status is non-zero when any task crashed or failed (budget-capped
tasks report partial summaries and count as degraded, not failed).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from typing import List, Optional

from repro.core.api import Analyzer
from repro.parallel.batch import plan_requests, run_batch
from repro.parallel.shard import plan_shards


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.parallel",
        description="parallel batch analysis over call-graph SCC shards",
    )
    ap.add_argument("files", nargs="*", help="LISL program files")
    ap.add_argument(
        "--table1",
        action="store_true",
        help="analyze the paper's Table 1 benchmark program",
    )
    ap.add_argument(
        "--procs",
        type=str,
        default=None,
        help="comma-separated root procedures (default: all)",
    )
    ap.add_argument(
        "--domains",
        type=str,
        default="am",
        help="comma-separated domains to run (am, au)",
    )
    ap.add_argument("--jobs", type=int, default=1, help="worker processes")
    ap.add_argument("--k", type=int, default=0, help="fold bound k")
    ap.add_argument(
        "--budget",
        type=float,
        default=None,
        help="per-task wall-clock budget in seconds",
    )
    ap.add_argument(
        "--store",
        type=str,
        default=None,
        help="persistent summary store directory (shared across runs)",
    )
    ap.add_argument(
        "--trace",
        type=str,
        default=None,
        help="write a merged JSONL telemetry trace of all workers here",
    )
    ap.add_argument(
        "--plan",
        action="store_true",
        help="print the shard plan and exit without analyzing",
    )
    args = ap.parse_args(argv)

    analyzers: List[tuple] = []  # (label, Analyzer)
    if args.table1:
        from repro.lang.benchlib import benchmark_program

        analyzers.append(("table1", Analyzer(benchmark_program())))
    for path in args.files:
        with open(path, "r", encoding="utf-8") as fh:
            analyzers.append((path, Analyzer.from_source(fh.read())))
    if not analyzers:
        ap.error("no programs given (pass files or --table1)")

    procs = args.procs.split(",") if args.procs else None
    domains = tuple(args.domains.split(","))

    if args.plan:
        for label, analyzer in analyzers:
            print(f"== {label} ==")
            print(plan_shards(analyzer.icfg, procs).describe())
        return 0

    trace_dir = None
    if args.trace is not None:
        trace_dir = tempfile.mkdtemp(prefix="repro-trace-")

    requests = []
    for label, analyzer in analyzers:
        prog_requests = plan_requests(
            analyzer,
            procs=procs,
            domains=domains,
            k=args.k,
            max_seconds=args.budget,
            store_dir=args.store,
            trace_dir=trace_dir,
        )
        if len(analyzers) > 1:  # qualify ids across programs
            for request in prog_requests:
                request.task_id = f"{label}:{request.task_id}"
        requests.extend(prog_requests)

    report = run_batch(
        requests,
        jobs=args.jobs,
        trace_path=args.trace,
        on_outcome=lambda outcome: print(outcome.describe(), flush=True),
    )
    print()
    print(report.format_table())
    if args.store is not None:
        from repro.parallel.store import PersistentSummaryStore

        # Hit/miss counters live in the workers; what the parent can
        # report is the store size and how many tasks answered from it.
        cached = sum(
            1
            for outcome in report.outcomes
            if outcome.status == "ok"
            and outcome.result.stats.get("from_cache")
        )
        print(
            f"store: {len(PersistentSummaryStore(args.store))} entries, "
            f"{cached}/{len(report.outcomes)} task(s) answered from store"
        )
    if report.trace_path is not None:
        print(f"merged trace: {report.trace_path}")
    bad = [
        outcome
        for outcome in report.outcomes
        if outcome.status in ("crashed", "failed")
    ]
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
