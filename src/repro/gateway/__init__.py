"""Async multi-tenant analysis gateway (the serving tier).

The PR 4 daemon (:mod:`repro.service.server`) is one thread-per-
connection process with a single global bounded queue — fine for one
user, fatal under heavy multi-tenant traffic: a greedy client fills the
global queue and every other client sees ``queue_full``.  This package
is the serving-stack answer, built from four pieces:

- :mod:`repro.gateway.scheduler` — per-tenant weighted-fair admission:
  bounded per-tenant queues, start-time fair queuing across tenants,
  429-style shedding with ``retry_after_ms`` and per-request deadlines;
- :mod:`repro.gateway.sessions` — multi-tenant incremental sessions
  (each tenant keeps its own dirty-cone state) under an LRU bound;
- :mod:`repro.gateway.storetier` — a compacting, size-budgeted wrapper
  around the one-file-per-key PR 3 store (generational pack files +
  background GC) so the layout survives millions of keys;
- :mod:`repro.gateway.server` — the asyncio front end speaking the PR 4
  NDJSON protocol plus a ``metrics`` verb and an HTTP-ish ``GET
  /metrics`` endpoint in Prometheus exposition format
  (:mod:`repro.gateway.metrics`).

``repro-gateway`` (:mod:`repro.gateway.__main__`) is the recommended
entry point for serving more than one client; ``repro-serve`` remains
for single-user use.
"""

from repro.gateway.scheduler import FairScheduler, SchedulerConfig, Shed
from repro.gateway.server import AnalysisGateway, GatewayConfig
from repro.gateway.sessions import SessionManager
from repro.gateway.storetier import CompactingStore, StoreBudget

__all__ = [
    "AnalysisGateway",
    "GatewayConfig",
    "FairScheduler",
    "SchedulerConfig",
    "Shed",
    "SessionManager",
    "CompactingStore",
    "StoreBudget",
]
