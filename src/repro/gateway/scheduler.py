"""Per-tenant weighted-fair admission control for the gateway.

The daemon's single global bounded queue lets one greedy client starve
everyone: once its requests fill the queue, every tenant sees
``queue_full``.  This scheduler replaces it with:

- **bounded per-tenant queues** — a flooding tenant only ever fills its
  *own* queue and is shed with a ``retry_after_ms`` hint (a ``429``,
  not an outage for the rest);
- **start-time fair queuing (SFQ) across tenants** — each request gets
  a virtual finish tag ``vt = max(V, last_tag(tenant)) + cost/weight``
  where ``V`` is the global virtual time (the tag of the last dispatched
  request).  Dispatch always picks the smallest tag, so a light tenant's
  occasional request carries an early tag and overtakes the greedy
  tenant's backlog: its delay is bounded by (roughly) one in-flight
  request per active tenant, independent of backlog depth;
- **per-request deadlines** — an expired request is shed at dispatch
  time (``gateway.deadline``) instead of wasting a worker, and the
  remaining time is what propagates into the worker pool's hard-kill
  budget.

The scheduler is a plain synchronous data structure (the asyncio server
wraps it with a condition variable), so fairness is unit-testable
deterministically: feed it a flood plus a trickle and assert the
dispatch order.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple


@dataclass
class SchedulerConfig:
    """Admission knobs.

    ``tenant_weights`` maps tenant id -> relative share (default 1.0);
    heavier tenants accumulate virtual time more slowly and therefore
    get a proportionally larger fraction of dispatches under load.
    """

    tenant_queue_limit: int = 8
    tenant_weights: Dict[str, float] = field(default_factory=dict)
    default_weight: float = 1.0
    max_tenants: int = 1024  # hard cap on distinct resident tenant queues


class Shed(Exception):
    """A request rejected by admission control (queue full / deadline)."""

    def __init__(self, message: str, retry_after_ms: int, rule_id: str):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms
        self.rule_id = rule_id


@dataclass
class ScheduledItem:
    """One admitted request waiting for dispatch."""

    tenant: str
    payload: Any
    tag: float  # virtual finish tag (SFQ)
    seq: int  # admission order, tie-breaker for equal tags
    enqueued: float
    deadline: Optional[float] = None  # monotonic deadline; None = none

    def remaining(self, now: Optional[float] = None) -> Optional[float]:
        if self.deadline is None:
            return None
        return self.deadline - (time.monotonic() if now is None else now)


class _TenantState:
    __slots__ = ("queue", "last_tag", "served", "shed", "weight")

    def __init__(self, weight: float):
        self.queue: Deque[ScheduledItem] = deque()
        self.last_tag = 0.0
        self.served = 0
        self.shed = 0
        self.weight = weight


class FairScheduler:
    """Bounded per-tenant queues dispatched in virtual-finish-tag order."""

    def __init__(self, config: Optional[SchedulerConfig] = None):
        self.config = config or SchedulerConfig()
        self._tenants: Dict[str, _TenantState] = {}
        self._virtual_time = 0.0
        self._seq = itertools.count()
        self.total_shed = 0
        self.total_served = 0

    # -- tenant bookkeeping ----------------------------------------------------

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            if len(self._tenants) >= self.config.max_tenants:
                self._evict_idle_tenant()
            weight = self.config.tenant_weights.get(
                tenant, self.config.default_weight
            )
            state = _TenantState(max(1e-6, weight))
            self._tenants[tenant] = state
        return state

    def _evict_idle_tenant(self) -> None:
        for name, state in list(self._tenants.items()):
            if not state.queue:
                del self._tenants[name]
                return
        raise Shed(
            f"tenant table full ({self.config.max_tenants} active tenants)",
            retry_after_ms=1000,
            rule_id="queue.shed",
        )

    # -- admission ---------------------------------------------------------------

    def submit(
        self,
        tenant: str,
        payload: Any,
        deadline: Optional[float] = None,
        cost: float = 1.0,
        retry_after_ms: Optional[int] = None,
    ) -> ScheduledItem:
        """Admit one request or raise :class:`Shed`.

        ``deadline`` is an absolute ``time.monotonic()`` instant; a
        request already past it is shed immediately.  ``retry_after_ms``
        overrides the backoff hint (the server estimates it from recent
        latency); the default scales with the tenant's backlog.
        """
        now = time.monotonic()
        if deadline is not None and now >= deadline:
            raise Shed(
                f"deadline expired {now - deadline:.3f}s before admission",
                retry_after_ms=0,
                rule_id="gateway.deadline",
            )
        state = self._state(tenant)
        if len(state.queue) >= self.config.tenant_queue_limit:
            state.shed += 1
            self.total_shed += 1
            hint = retry_after_ms
            if hint is None:
                hint = int(min(60_000, 250 * len(state.queue)))
            raise Shed(
                f"tenant {tenant!r} queue full "
                f"({self.config.tenant_queue_limit} pending)",
                retry_after_ms=hint,
                rule_id="queue.shed",
            )
        tag = max(self._virtual_time, state.last_tag) + cost / state.weight
        state.last_tag = tag
        item = ScheduledItem(
            tenant=tenant,
            payload=payload,
            tag=tag,
            seq=next(self._seq),
            enqueued=now,
            deadline=deadline,
        )
        state.queue.append(item)
        return item

    # -- dispatch ----------------------------------------------------------------

    def next(self) -> Optional[ScheduledItem]:
        """Pop the item with the smallest virtual finish tag, advancing
        the global virtual time; ``None`` when every queue is empty.

        Expired items are *not* skipped here — the server sheds them
        explicitly (they must still be answered), so dispatch order
        stays a pure function of the admitted sequence.
        """
        best: Optional[Tuple[float, int, str]] = None
        for name, state in self._tenants.items():
            if not state.queue:
                continue
            head = state.queue[0]
            key = (head.tag, head.seq, name)
            if best is None or key < best:
                best = key
        if best is None:
            return None
        state = self._tenants[best[2]]
        item = state.queue.popleft()
        self._virtual_time = max(self._virtual_time, item.tag)
        state.served += 1
        self.total_served += 1
        return item

    def drain(self) -> List[ScheduledItem]:
        """Pop everything in dispatch order (shutdown path)."""
        out: List[ScheduledItem] = []
        while True:
            item = self.next()
            if item is None:
                return out
            out.append(item)

    # -- introspection -----------------------------------------------------------

    def depth(self, tenant: Optional[str] = None) -> int:
        if tenant is not None:
            state = self._tenants.get(tenant)
            return len(state.queue) if state else 0
        return sum(len(s.queue) for s in self._tenants.values())

    def tenants(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant accounting for status/metrics surfaces."""
        return {
            name: {
                "depth": len(state.queue),
                "served": state.served,
                "shed": state.shed,
                "weight": state.weight,
            }
            for name, state in sorted(self._tenants.items())
        }
