"""The asyncio multi-tenant analysis gateway.

Architecture::

    asyncio event loop (one process)
        ├─ connection tasks: read NDJSON lines (same wire protocol as
        │    the PR 4 daemon) — or answer an HTTP ``GET /metrics`` scrape
        │    ├─ control verbs (ping/status/metrics/flush/shutdown): inline
        │    └─ job verbs: admission through the per-tenant FairScheduler
        │         (bounded tenant queues; full -> ``shed`` + retry_after)
        ├─ N dispatch workers: pop the globally fairest request, run it
        │    on an executor thread (inline jobs=0, or the PR 3
        │    fault-isolated process pool), reply on the request's socket
        └─ maintenance task: store compaction + byte-budget GC

    tenant state
        ├─ sessions: (tenant, program_id) -> incremental Session, LRU
        └─ check cache: shared CheckFindingCache keyed per tenant/program

Fairness: admission stamps each request with a start-time-fair-queuing
virtual tag; dispatch always takes the smallest tag, so a light tenant's
requests overtake a flooding tenant's backlog — its latency is bounded
by in-flight work, not by the flood's queue depth.  Deadlines: a request
can carry ``deadline_ms``; whatever remains at dispatch time becomes the
worker pool's cooperative budget *and* its hard-kill budget, so a
request can never hold a worker past its deadline plus the grace.

Fault containment is inherited from the PR 3/4 layers: jobs run in
worker processes (``jobs >= 1``), so a SIGKILLed worker or a hard budget
kill is a structured error on one request while the gateway, its
sessions, and the store stay intact.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.telemetry import Telemetry
from repro.gateway import metrics as M
from repro.gateway.scheduler import FairScheduler, SchedulerConfig, Shed
from repro.gateway.sessions import SessionManager
from repro.gateway.storetier import CompactingStore, StoreBudget
from repro.service import diagnostics as D
from repro.service import protocol as P
from repro.service.checkcache import CheckFindingCache
from repro.service.jobs import (
    AssertRequest,
    CheckRequest,
    EquivalenceRequest,
    run_assert_request,
    run_check_request,
    run_equivalence_request,
)

DEFAULT_TENANT = "default"


@dataclass
class GatewayConfig:
    """Gateway knobs; ``socket_path`` (Unix) wins over host/port (TCP)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off gateway.address
    socket_path: Optional[str] = None
    workers: int = 2  # concurrent dispatches (executor threads)
    jobs: int = 0  # worker processes per job; 0 = inline (test mode)
    store_dir: Optional[str] = None  # shared persistent summary store
    max_store_bytes: Optional[int] = None  # GC budget; None = unbounded
    compact_min_loose: int = 256
    maintenance_interval: float = 5.0  # seconds between store maintenance
    max_sessions: int = 64  # LRU bound on resident tenant sessions
    tenant_queue_limit: int = 8
    tenant_weights: Dict[str, float] = field(default_factory=dict)
    default_max_seconds: Optional[float] = None
    default_deadline_s: Optional[float] = None  # None = no implicit deadline
    hard_grace: float = 10.0


@dataclass
class _GatewayJob:
    request: Dict[str, Any]
    verb: str
    tenant: str
    writer: asyncio.StreamWriter
    wlock: asyncio.Lock


class AnalysisGateway:
    """One gateway instance: scheduler, sessions, store tier, metrics."""

    def __init__(self, config: Optional[GatewayConfig] = None):
        self.config = config or GatewayConfig()
        self.telemetry = Telemetry()
        self.scheduler = FairScheduler(
            SchedulerConfig(
                tenant_queue_limit=self.config.tenant_queue_limit,
                tenant_weights=dict(self.config.tenant_weights),
            )
        )
        self._tmp = None
        store_dir = self.config.store_dir
        if store_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-gateway-")
            store_dir = self._tmp.name
        self.store_dir = store_dir
        self.store = CompactingStore(
            store_dir,
            budget=StoreBudget(
                max_bytes=self.config.max_store_bytes,
                compact_min_loose=self.config.compact_min_loose,
            ),
        )
        self.sessions = SessionManager(
            max_sessions=self.config.max_sessions,
            store_dir=store_dir,
            jobs=self.config.jobs,
            max_seconds=self.config.default_max_seconds,
        )
        self._check_cache = CheckFindingCache()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, self.config.workers),
            thread_name_prefix="repro-gateway",
        )
        self.started = time.monotonic()
        self.address: Optional[Tuple[str, Any]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._cond: Optional[asyncio.Condition] = None
        self._workers: List[asyncio.Task] = []
        self._maintenance: Optional[asyncio.Task] = None
        self._draining = False
        self._stopped = asyncio.Event()
        self.stopped = threading.Event()  # thread-visible mirror for tests

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Bind, listen, and launch dispatch workers (non-blocking)."""
        self._cond = asyncio.Condition()
        if self.config.socket_path is not None:
            path = self.config.socket_path
            try:
                os.unlink(path)
            except OSError:
                pass
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=path
            )
            self.address = ("unix", path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )
            sock = self._server.sockets[0]
            self.address = ("tcp", sock.getsockname()[:2])
        self._workers = [
            asyncio.ensure_future(self._dispatch_worker(i))
            for i in range(max(1, self.config.workers))
        ]
        self._maintenance = asyncio.ensure_future(self._maintenance_loop())

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful stop: refuse new jobs, drain admitted ones, close."""
        async with self._cond:
            self._draining = True
            self._cond.notify_all()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._workers:
            await asyncio.wait(self._workers, timeout=60.0)
            for task in self._workers:
                task.cancel()
            self._workers = []
        if self._maintenance is not None:
            self._maintenance.cancel()
            self._maintenance = None
        if self.address is not None and self.address[0] == "unix":
            try:
                os.unlink(self.address[1])
            except OSError:
                pass
        self._executor.shutdown(wait=True)
        self.sessions.close()
        self.store.maintain()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None
        self._stopped.set()
        self.stopped.set()

    # -- connections -------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        wlock = asyncio.Lock()
        try:
            line = await reader.readline()
            if not line:
                return
            if line[:4] in (b"GET ", b"HEAD"):
                await self._handle_http(line, reader, writer)
                return
            while line:
                if line.strip():
                    stop = await self._handle_line(line, writer, wlock)
                    if stop:
                        break
                line = await reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            return  # loop teardown with the peer still connected
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_http(
        self,
        first_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """The HTTP-ish surface: ``GET /metrics`` answers a Prometheus
        exposition document; anything else is a 404.  One request per
        connection (HTTP/1.0 close semantics)."""
        try:
            while True:  # drain request headers
                header = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if not header or header in (b"\r\n", b"\n"):
                    break
        except asyncio.TimeoutError:
            pass
        parts = first_line.decode("latin-1").split()
        path = parts[1] if len(parts) > 1 else "/"
        if path.split("?")[0] == "/metrics":
            self.telemetry.count("requests.metrics_http")
            writer.write(M.http_metrics_response(self.render_metrics()))
        else:
            body = b"not found; try /metrics\n"
            writer.write(
                b"HTTP/1.0 404 Not Found\r\n"
                b"Content-Type: text/plain\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
        await writer.drain()

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        wlock: asyncio.Lock,
        message: Dict[str, Any],
    ) -> None:
        try:
            async with wlock:
                writer.write(P.encode(message))
                await writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # client went away; the result is dropped

    async def _handle_line(
        self, line: bytes, writer: asyncio.StreamWriter, wlock: asyncio.Lock
    ) -> bool:
        """One NDJSON request; returns True when the connection should
        stop reading (shutdown)."""
        try:
            request = P.decode_line(line)
            verb = P.validate_request(request)
        except P.ProtocolError as exc:
            self.telemetry.count("requests.bad")
            await self._send(
                writer, wlock, P.error_response(None, exc.kind, str(exc))
            )
            return False
        self.telemetry.count(f"requests.{verb}")
        if verb in P.CONTROL_VERBS:
            await self._send(writer, wlock, await self._control(request, verb))
            return verb == "shutdown"
        await self._admit(request, verb, writer, wlock)
        return False

    # -- admission ---------------------------------------------------------------

    @staticmethod
    def tenant_of(request: Dict[str, Any]) -> str:
        tenant = request.get("tenant")
        return str(tenant) if tenant else DEFAULT_TENANT

    def _deadline_of(self, request: Dict[str, Any]) -> Optional[float]:
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is not None:
            return time.monotonic() + float(deadline_ms) / 1000.0
        if self.config.default_deadline_s is not None:
            return time.monotonic() + self.config.default_deadline_s
        return None

    def _retry_after_ms(self, tenant: str) -> int:
        """Backoff hint: time to drain this tenant's backlog at the
        recent median execution latency (clamped to [100ms, 60s])."""
        exec_p50 = self.telemetry.percentile("request.exec_s", 50.0) or 1.0
        estimate = (self.scheduler.depth(tenant) + 1) * exec_p50 * 1000.0
        return int(min(60_000.0, max(100.0, estimate)))

    async def _admit(
        self,
        request: Dict[str, Any],
        verb: str,
        writer: asyncio.StreamWriter,
        wlock: asyncio.Lock,
    ) -> None:
        tenant = self.tenant_of(request)
        if self._draining:
            self.telemetry.count("shed.draining")
            await self._send(
                writer,
                wlock,
                P.shed_response(
                    request,
                    "gateway is draining for shutdown",
                    retry_after_ms=5000,
                    verb=verb,
                    kind=P.E_SHUTTING_DOWN,
                    rule_id=D.RULE_GATEWAY_DRAINING,
                ),
            )
            return
        job = _GatewayJob(
            request=request, verb=verb, tenant=tenant,
            writer=writer, wlock=wlock,
        )
        try:
            async with self._cond:
                self.scheduler.submit(
                    tenant,
                    job,
                    deadline=self._deadline_of(request),
                    retry_after_ms=self._retry_after_ms(tenant),
                )
                self._cond.notify()
        except Shed as shed:
            reason = (
                "deadline"
                if shed.rule_id == D.RULE_GATEWAY_DEADLINE
                else "queue"
            )
            self.telemetry.count(f"shed.{reason}")
            self.telemetry.count(f"shed.tenant.{tenant}")
            await self._send(
                writer,
                wlock,
                P.shed_response(
                    request,
                    str(shed),
                    retry_after_ms=shed.retry_after_ms,
                    verb=verb,
                    kind=(
                        P.E_DEADLINE
                        if shed.rule_id == D.RULE_GATEWAY_DEADLINE
                        else P.E_SHED
                    ),
                    rule_id=shed.rule_id,
                ),
            )
            return
        self.telemetry.gauge("queue.depth", self.scheduler.depth())

    # -- dispatch ----------------------------------------------------------------

    async def _dispatch_worker(self, worker_id: int) -> None:
        loop = asyncio.get_event_loop()
        while True:
            async with self._cond:
                while not self._draining and self.scheduler.depth() == 0:
                    await self._cond.wait()
                item = self.scheduler.next()
                if item is None:
                    if self._draining:
                        return
                    continue
            job: _GatewayJob = item.payload
            now = time.monotonic()
            queue_wait = now - item.enqueued
            remaining = item.remaining(now)
            if remaining is not None and remaining <= 0:
                self.telemetry.count("shed.deadline")
                await self._send(
                    job.writer,
                    job.wlock,
                    P.shed_response(
                        job.request,
                        f"deadline expired {-remaining:.3f}s before dispatch",
                        retry_after_ms=0,
                        verb=job.verb,
                        kind=P.E_DEADLINE,
                        rule_id=D.RULE_GATEWAY_DEADLINE,
                    ),
                )
                continue
            start = time.monotonic()
            try:
                message = await loop.run_in_executor(
                    self._executor, self._execute, job, remaining
                )
            except Exception as exc:  # never let a job kill the worker
                self.telemetry.count("requests.internal_error")
                message = P.error_response(
                    job.request,
                    P.E_INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                    job.verb,
                )
            exec_s = time.monotonic() - start
            telemetry = message.setdefault("telemetry", {})
            telemetry["queue_wait_s"] = round(queue_wait, 6)
            telemetry["exec_s"] = round(exec_s, 6)
            telemetry["tenant"] = job.tenant
            self.telemetry.observe("request.queue_wait_s", queue_wait)
            self.telemetry.observe("request.exec_s", exec_s)
            self.telemetry.count(f"served.tenant.{job.tenant}")
            self.telemetry.gauge("queue.depth", self.scheduler.depth())
            await self._send(job.writer, job.wlock, message)

    # -- job execution (executor threads) ----------------------------------------

    def _effective_budget(
        self, request: Dict[str, Any], remaining: Optional[float]
    ) -> Optional[float]:
        """min(request max_seconds, remaining deadline, config default)."""
        budget = request.get("max_seconds", self.config.default_max_seconds)
        if remaining is not None:
            budget = remaining if budget is None else min(budget, remaining)
        return budget

    def _parse(self, source: str):
        from repro.lang.normalize import normalize_program
        from repro.lang.parser import parse_program
        from repro.lang.typecheck import typecheck_program

        return normalize_program(typecheck_program(parse_program(source)))

    def _execute(
        self, job: _GatewayJob, remaining: Optional[float]
    ) -> Dict[str, Any]:
        request, verb = job.request, job.verb
        try:
            program = self._parse(request["source"])
        except Exception as exc:
            self.telemetry.count("requests.parse_error")
            return P.error_response(
                request, P.E_BAD_REQUEST, f"source does not parse: {exc}", verb
            )
        budget = self._effective_budget(request, remaining)
        if verb == "analyze":
            return self._execute_analyze(job, program, budget)
        if verb == "check":
            return self._execute_check(job, program, budget)
        if verb == "assert":
            payload = AssertRequest(
                program=program,
                procs=tuple(request.get("procs") or ()),
                domain=request.get("domain", "au"),
                k=int(request.get("k", 0)),
                max_seconds=budget,
            )
            return self._run_pool_task(
                request, verb, run_assert_request, payload, budget
            )
        if verb == "equivalence":
            payload = EquivalenceRequest(
                program=program,
                proc1=request["proc1"],
                proc2=request["proc2"],
                max_seconds=budget,
            )
            return self._run_pool_task(
                request, verb, run_equivalence_request, payload, budget
            )
        raise P.ProtocolError(f"unhandled job verb {verb!r}")

    def _execute_analyze(
        self, job: _GatewayJob, program, budget: Optional[float]
    ) -> Dict[str, Any]:
        request = job.request
        program_id = str(request.get("program_id", "default"))
        session, lock, _, evicted = self.sessions.acquire(
            job.tenant, program_id, program
        )
        if evicted:
            self.telemetry.count("sessions.evicted")
        with lock:
            delta = SessionManager.update_if_changed(session, program)
            report = session.analyze(
                procs=request.get("procs"),
                domains=tuple(request.get("domains") or ("am",)),
                k=int(request.get("k", 0)),
                max_seconds=budget,
            )
        self.telemetry.gauge("sessions.resident", len(self.sessions))
        records: List[D.DiagnosticRecord] = []
        for task_id, error in sorted(report.errors.items()):
            records.append(
                D.from_task_error(
                    error["status"],
                    error.get("error"),
                    proc=task_id.rsplit(".", 1)[0],
                )
            )
        for task_id, output in sorted(report.outputs.items()):
            if task_id in report.errors:
                continue  # already encoded from the task-level error
            records.extend(
                D.from_engine_diagnostics(output.diagnostics, proc=output.proc)
            )
        self.telemetry.gauge(
            "analyze.dirty_cone", len(report.incremental["dirty_cone"])
        )
        self.telemetry.count("analyze.tasks", len(report.analyzed))
        self.telemetry.count("analyze.reused", len(report.reused))
        result = {
            "tenant": job.tenant,
            "program_id": program_id,
            "summary_hashes": report.summary_hashes(),
            "incremental": report.incremental,
            "diagnostics": D.run_envelope(records),
            "ok": report.ok,
        }
        if delta is not None:
            result["delta"] = {
                "changed": sorted(delta.changed),
                "dirty": sorted(delta.dirty),
                "clean": sorted(delta.clean),
                "added": sorted(delta.added),
                "removed": sorted(delta.removed),
            }
        telemetry = {
            "wall_s": round(report.wall_time, 6),
            "reused": len(report.reused),
            "analyzed": len(report.analyzed),
            "dirty_cone": len(report.incremental["dirty_cone"]),
        }
        if report.ok:
            return P.response(request, "analyze", result, telemetry)
        statuses = {err["status"] for err in report.errors.values()}
        kind = statuses.pop() if len(statuses) == 1 else P.E_INTERNAL
        out = P.error_response(
            request,
            kind,
            "; ".join(
                f"{tid}: {err['status']}"
                for tid, err in sorted(report.errors.items())
            ),
            "analyze",
            diagnostics=D.run_envelope(records),
        )
        out["result"] = result
        out["telemetry"] = telemetry
        return out

    def _execute_check(
        self, job: _GatewayJob, program, budget: Optional[float]
    ) -> Dict[str, Any]:
        """The ``check`` verb with warm per-proc reuse; findings are
        cached per ``tenant/program_id`` via the shared
        :class:`CheckFindingCache` (identical invalidation keys to the
        single-process daemon).  A ``query`` field switches to the
        demand path (one obligation, backward-cone analysis, cached
        answer -- see :mod:`repro.service.queries`)."""
        request = job.request
        program_id = str(request.get("program_id", "default"))
        cache_id = f"{job.tenant}/{program_id}"
        if request.get("query") is not None:
            from repro.service.jobs import run_query_request
            from repro.service.queries import execute_query

            return execute_query(
                self._check_cache,
                self.telemetry,
                request,
                program,
                budget,
                lambda payload: self._run_pool_task(
                    request, "check", run_query_request, payload, budget,
                    raw_result=True,
                ),
                cache_id=cache_id,
                extra={"tenant": job.tenant},
            )
        tier = str(request.get("tier", "all"))
        if tier not in ("lint", "safety", "termination", "all"):
            return P.error_response(
                request, P.E_BAD_REQUEST, f"unknown tier {tier!r}", "check"
            )
        domain = str(request.get("domain", "am"))
        k = int(request.get("k", 0))
        from repro.lang.cfg import build_icfg
        from repro.service.depindex import DependencyIndex

        icfg = build_icfg(program)
        index = DependencyIndex.build(icfg)
        requested = list(request.get("procs") or sorted(index.bodies))
        unknown = [p for p in requested if p not in index.bodies]
        if unknown:
            return P.error_response(
                request,
                P.E_BAD_REQUEST,
                f"unknown procedure(s): {', '.join(sorted(unknown))}",
                "check",
            )
        want_lint = tier in ("lint", "all")
        want_safety = tier in ("safety", "all")
        want_termination = tier == "termination"
        keys = CheckFindingCache.keys_for(program, icfg, index)
        dirty = self._check_cache.partition(
            cache_id, (tier, domain, k), requested, keys,
            want_lint, want_safety, want_termination,
        )
        reused = [p for p in requested if p not in set(dirty)]
        fresh: Dict[str, Any] = {"lint": {}, "safety": {}, "termination": {},
                                 "proc_status": {}, "termination_status": {},
                                 "stats": {}}
        telemetry: Dict[str, Any] = {"isolation": "warm"}
        if dirty:
            payload = CheckRequest(
                program=program,
                procs=tuple(dirty),
                tier=tier,
                domain=domain,
                k=k,
                max_seconds=budget,
            )
            if self.config.jobs == 0:
                fresh = run_check_request(payload)
                telemetry["isolation"] = "inline"
            else:
                out = self._run_pool_task(
                    request, "check", run_check_request, payload, budget,
                    raw_result=True,
                )
                if isinstance(out, dict) and out.get("ok") is False:
                    return out  # structured pool-level error
                fresh = out
                telemetry["isolation"] = "pool"
        records, proc_status = self._check_cache.merge_and_answer(
            cache_id, requested, dirty, keys, fresh,
            want_lint, want_safety, want_termination,
        )
        for record in records:
            self.telemetry.count(f"checker.rule.{record['ruleId']}")
        self.telemetry.count("check.procs_checked", len(dirty))
        self.telemetry.count("check.procs_reused", len(reused))
        stats = dict(fresh.get("stats") or {})
        stats["checked"] = sorted(dirty)
        stats["reused"] = sorted(reused)
        ok = not any(
            r["verdict"]
            in (D.WARN, D.UNSAFE, D.POSSIBLY_NONTERMINATING, D.ERROR)
            for r in records
        )
        result = {
            "tenant": job.tenant,
            "program_id": program_id,
            "tier": tier,
            "domain": domain,
            "ok": ok,
            "checked": sorted(dirty),
            "reused": sorted(reused),
            "proc_status": proc_status,
            "diagnostics": D.records_envelope(records, stats),
        }
        telemetry.update(checked=len(dirty), reused=len(reused))
        return P.response(request, "check", result, telemetry)

    def _run_pool_task(
        self,
        request: Dict[str, Any],
        verb: str,
        fn,
        payload,
        budget: Optional[float],
        raw_result: bool = False,
    ):
        """One fault-isolated job on the PR 3 pool (``jobs >= 1``) or
        inline (``jobs == 0``).  The request deadline's remaining time is
        the pool budget, so the hard SIGTERM/SIGKILL backstop fires at
        ``deadline + hard_grace`` at the latest."""
        if self.config.jobs == 0:
            result = fn(payload)
            if raw_result:
                return result
            return P.response(request, verb, result, {"isolation": "inline"})
        from repro.parallel.pool import OK, PoolTask, WorkerPool

        pool = WorkerPool(jobs=1, hard_grace=self.config.hard_grace)
        (outcome,) = pool.run(
            [
                PoolTask(
                    task_id=verb,
                    fn=fn,
                    args=(payload,),
                    budget=budget,
                )
            ]
        )
        telemetry = {
            "isolation": "pool",
            "wall_s": round(outcome.wall_time, 6),
            "retries": outcome.retries,
        }
        if outcome.status == OK:
            if raw_result:
                return outcome.result
            return P.response(request, verb, outcome.result, telemetry)
        self.telemetry.count(f"requests.{verb}.{outcome.status}")
        record = D.from_task_error(outcome.status, outcome.error)
        out = P.error_response(
            request,
            outcome.status,
            (outcome.error or {}).get("message", f"task {outcome.status}"),
            verb,
            diagnostics=D.run_envelope([record]),
        )
        out["telemetry"] = telemetry
        return out

    # -- control verbs -----------------------------------------------------------

    def render_metrics(self) -> str:
        """The Prometheus exposition document for this gateway."""
        self.telemetry.gauge("queue.depth", self.scheduler.depth())
        self.telemetry.gauge("sessions.resident", len(self.sessions))
        self.telemetry.gauge("store.bytes", self.store.total_bytes())
        return M.render_prometheus(
            self.telemetry, extra=M.tenant_rows(self.scheduler.tenants())
        )

    async def _control(
        self, request: Dict[str, Any], verb: str
    ) -> Dict[str, Any]:
        if verb == "ping":
            return P.response(
                request, verb, {"protocol": P.PROTOCOL_VERSION, "tier": "gateway"}
            )
        if verb == "metrics":
            return P.response(request, verb, {"text": self.render_metrics()})
        if verb == "status":
            return P.response(
                request,
                verb,
                {
                    "protocol": P.PROTOCOL_VERSION,
                    "tier": "gateway",
                    "uptime_s": round(time.monotonic() - self.started, 3),
                    "queue_depth": self.scheduler.depth(),
                    "tenant_queue_limit": self.config.tenant_queue_limit,
                    "workers": self.config.workers,
                    "jobs": self.config.jobs,
                    "tenants": self.scheduler.tenants(),
                    "sessions": self.sessions.describe(),
                    "sessions_resident": len(self.sessions),
                    "sessions_evicted": self.sessions.evictions,
                    "store": self.store.stats(),
                    "telemetry": self.telemetry.report(),
                },
            )
        if verb == "flush":
            tenant = request.get("tenant")
            dropped = self.sessions.flush(str(tenant) if tenant else None)
            if tenant:
                # Drop this tenant's finding caches (ids are tenant/prefixed).
                program_id = request.get("program_id")
                if program_id is not None:
                    dropped += self._check_cache.flush(f"{tenant}/{program_id}")
                else:
                    dropped += self._check_cache.flush(None)
            else:
                dropped += self._check_cache.flush(None)
            return P.response(request, verb, {"dropped": dropped})
        if verb == "shutdown":
            asyncio.ensure_future(self.stop())
            return P.response(request, verb, {"stopping": True})
        raise P.ProtocolError(f"unhandled control verb {verb!r}")

    # -- maintenance -------------------------------------------------------------

    async def _maintenance_loop(self) -> None:
        """Background store compaction + GC, off the request path."""
        loop = asyncio.get_event_loop()
        interval = max(0.25, self.config.maintenance_interval)
        while not self._draining:
            try:
                await asyncio.sleep(interval)
                report = await loop.run_in_executor(None, self.store.maintain)
                if report["compacted"]:
                    self.telemetry.count(
                        "store.compacted_entries", report["compacted"]
                    )
                if report["gc_files"]:
                    self.telemetry.count("store.gc_files", report["gc_files"])
                    self.telemetry.count("store.gc_bytes", report["gc_bytes"])
            except asyncio.CancelledError:
                return
            except Exception:
                self.telemetry.count("store.maintenance_errors")


class GatewayThread:
    """Run a gateway on a background thread's event loop.

    The canonical embedding for tests and benchmarks::

        gw = GatewayThread(GatewayConfig(jobs=0)).start()
        kind, (host, port) = gw.address
        ... ServiceClient.connect_tcp(host, port) ...
        gw.stop()
    """

    def __init__(self, config: Optional[GatewayConfig] = None):
        self.gateway = AnalysisGateway(config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    def start(self) -> "GatewayThread":
        def run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.gateway.start())
            self._ready.set()
            try:
                loop.run_forever()
            finally:
                pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-gateway-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(30.0):
            raise RuntimeError("gateway failed to start within 30s")
        return self

    @property
    def address(self):
        return self.gateway.address

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is None:
            return
        if not self.gateway.stopped.is_set():
            future = asyncio.run_coroutine_threadsafe(
                self.gateway.stop(), self._loop
            )
            try:
                future.result(timeout=timeout)
            except Exception:
                pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
