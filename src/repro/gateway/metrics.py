"""Prometheus exposition of the gateway's (and daemon's) telemetry.

:func:`render_prometheus` turns a :class:`repro.engine.telemetry.
Telemetry` instance into `text exposition format 0.0.4
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_:

- counters -> ``repro_<name>_total`` (``counter``);
- gauges -> ``repro_<name>`` (``gauge``);
- sample windows -> ``repro_<name>{quantile="0.5"|"0.9"|"0.99"}`` plus
  ``_count``/``_sum`` (``summary``, windowed quantiles);
- optional labelled series (per-tenant served/shed/depth) passed as
  ``extra`` rows.

Telemetry names are dotted (``requests.analyze``); Prometheus names are
``[a-zA-Z_:][a-zA-Z0-9_:]*``, so dots become underscores.  Where a
dotted name encodes a label-like tail (``requests.analyze``,
``checker.rule.safety.leak``) the tail is emitted as a label instead,
keeping the metric family enumerable::

    repro_requests_total{verb="analyze"} 12
    repro_checker_rule_total{rule="safety.leak"} 3
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.engine.telemetry import Telemetry

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

QUANTILES = (("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0))

# Counter families whose dotted tail becomes a label value.
_LABELLED_FAMILIES: Tuple[Tuple[str, str, str], ...] = (
    # (dotted prefix, metric family, label name)
    ("checker.rule.", "repro_checker_rule_total", "rule"),
    # query.warm / query.cold -> repro_query_total{mode="warm"|"cold"};
    # the query.latency_ms window renders as a summary separately.
    ("query.", "repro_query_total", "mode"),
    ("requests.", "repro_requests_total", "verb"),
    ("shed.", "repro_shed_total", "reason"),
)


def _sanitize(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch in "_:" else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_prometheus(
    telemetry: Telemetry,
    extra: Optional[Iterable[str]] = None,
) -> str:
    """The full exposition document, deterministic line order."""
    lines: List[str] = []
    families_seen: Dict[str, str] = {}

    def family(name: str, kind: str, help_text: str) -> None:
        if name in families_seen:
            return
        families_seen[name] = kind
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    # Counters: labelled families first, the rest as flat counters.
    flat: Dict[str, int] = {}
    labelled: Dict[Tuple[str, str], List[Tuple[str, int]]] = {}
    for name, value in sorted(telemetry.counters.items()):
        for prefix, metric, label in _LABELLED_FAMILIES:
            if name.startswith(prefix):
                labelled.setdefault((metric, label), []).append(
                    (name[len(prefix):], value)
                )
                break
        else:
            flat[f"repro_{_sanitize(name)}_total"] = value
    for (metric, label), rows in sorted(labelled.items()):
        family(metric, "counter", f"telemetry counter family '{label}'")
        for tail, value in rows:
            lines.append(
                f'{metric}{{{label}="{_escape_label(tail)}"}} {value}'
            )
    for metric, value in sorted(flat.items()):
        family(metric, "counter", "telemetry counter")
        lines.append(f"{metric} {value}")

    # Gauges.
    for name, value in sorted(telemetry.gauges.items()):
        metric = f"repro_{_sanitize(name)}"
        family(metric, "gauge", "telemetry gauge")
        lines.append(f"{metric} {value}")

    # Phase timers: cumulative seconds, counter semantics.
    for name, value in sorted(telemetry.timers.items()):
        metric = f"repro_phase_seconds_total"
        family(metric, "counter", "cumulative wall seconds per phase")
        lines.append(f'{metric}{{phase="{_escape_label(name)}"}} {round(value, 6)}')

    # Sample windows as summaries with windowed quantiles.
    for name in sorted(telemetry.samples):
        metric = f"repro_{_sanitize(name)}"
        family(metric, "summary", "windowed latency summary")
        for tag, q in QUANTILES:
            value = telemetry.percentile(name, q)
            if value is not None:
                lines.append(f'{metric}{{quantile="{tag}"}} {round(value, 6)}')
        lines.append(f"{metric}_count {telemetry.sample_count(name)}")
        lines.append(f"{metric}_sum {round(telemetry.sample_sum(name), 6)}")

    if extra:
        lines.extend(extra)
    return "\n".join(lines) + "\n"


def tenant_rows(tenants: Dict[str, Dict[str, Any]]) -> List[str]:
    """Per-tenant scheduler accounting as labelled exposition rows."""
    lines: List[str] = []
    if not tenants:
        return lines
    lines.append("# HELP repro_tenant_requests_total requests served per tenant")
    lines.append("# TYPE repro_tenant_requests_total counter")
    for name, row in sorted(tenants.items()):
        lines.append(
            f'repro_tenant_requests_total{{tenant="{_escape_label(name)}"}} '
            f'{row.get("served", 0)}'
        )
    lines.append("# HELP repro_tenant_shed_total requests shed per tenant")
    lines.append("# TYPE repro_tenant_shed_total counter")
    for name, row in sorted(tenants.items()):
        lines.append(
            f'repro_tenant_shed_total{{tenant="{_escape_label(name)}"}} '
            f'{row.get("shed", 0)}'
        )
    lines.append("# HELP repro_tenant_queue_depth pending requests per tenant")
    lines.append("# TYPE repro_tenant_queue_depth gauge")
    for name, row in sorted(tenants.items()):
        lines.append(
            f'repro_tenant_queue_depth{{tenant="{_escape_label(name)}"}} '
            f'{row.get("depth", 0)}'
        )
    return lines


def http_metrics_response(body: str) -> bytes:
    """A minimal HTTP/1.0 response wrapping the exposition text, so
    ``curl http://host:port/metrics`` (or a Prometheus scraper pointed at
    the gateway's NDJSON port) just works."""
    payload = body.encode("utf-8")
    head = (
        "HTTP/1.0 200 OK\r\n"
        f"Content-Type: {CONTENT_TYPE}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + payload
