"""Multi-tenant incremental sessions under an LRU residency bound.

Each tenant keeps its own :class:`repro.service.session.Session` per
program id — its private dirty-cone state, retained outputs, and
generation counter — so one tenant's edits never invalidate another's
warm results.  Sessions are resident-bounded: with millions of users a
gateway cannot hold every tenant's retained outputs forever, so the
least-recently-used session is closed when ``max_sessions`` is hit.
Eviction is cheap to recover from by construction: the persistent
summary store is shared and cone-keyed, so a re-created session's first
analyze re-hits the store instead of recomputing.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.service.session import Session

SessionKey = Tuple[str, str]  # (tenant, program_id)


class SessionManager:
    """LRU-bounded ``(tenant, program_id) -> Session`` map.

    Thread-safe: the gateway's dispatch workers run in an executor, so
    lookups and evictions race.  Each resident entry also carries a
    per-session lock — two in-flight requests for the same session must
    serialize (Session is single-writer), while different sessions
    proceed in parallel.
    """

    def __init__(
        self,
        max_sessions: int = 64,
        store_dir: Optional[str] = None,
        jobs: int = 0,
        max_seconds: Optional[float] = None,
    ):
        self.max_sessions = max(1, max_sessions)
        self.store_dir = store_dir
        self.jobs = jobs
        self.max_seconds = max_seconds
        self._lock = threading.Lock()
        self._sessions: "OrderedDict[SessionKey, Tuple[Session, threading.Lock]]" = (
            OrderedDict()
        )
        self.evictions = 0

    # -- lookup ------------------------------------------------------------------

    def acquire(
        self, tenant: str, program_id: str, program
    ) -> Tuple[Session, threading.Lock, Optional[Any], bool]:
        """The session for ``(tenant, program_id)``, created or updated
        to ``program``; returns ``(session, session_lock, dirty-cone
        delta or None, evicted_any)``.

        The delta is computed under the session lock by the caller-side
        helper :meth:`update_if_changed` — this method only resolves
        residency (LRU touch, create, evict).
        """
        key = (tenant, program_id)
        evicted = False
        with self._lock:
            entry = self._sessions.get(key)
            if entry is not None:
                self._sessions.move_to_end(key)
                return entry[0], entry[1], None, False
            while len(self._sessions) >= self.max_sessions:
                _, (old, old_lock) = self._sessions.popitem(last=False)
                # Close under the session lock: an in-flight request on
                # the evicted session finishes before the store handle
                # (a TemporaryDirectory for private stores) goes away.
                with old_lock:
                    old.close()
                self.evictions += 1
                evicted = True
            session = Session(
                program,
                store_dir=self.store_dir,
                jobs=self.jobs,
                max_seconds=self.max_seconds,
            )
            lock = threading.Lock()
            self._sessions[key] = (session, lock)
        return session, lock, None, evicted

    @staticmethod
    def update_if_changed(session: Session, program) -> Optional[Any]:
        """Update ``session`` to ``program`` when the ICFG changed;
        returns the dirty-cone delta or ``None``.  Call while holding
        the session lock."""
        from repro.engine.canon import icfg_fingerprint
        from repro.lang.cfg import build_icfg

        if icfg_fingerprint(session.analyzer.icfg) == icfg_fingerprint(
            build_icfg(program)
        ):
            return None
        return session.update(program)

    # -- maintenance -------------------------------------------------------------

    def flush(self, tenant: Optional[str] = None) -> int:
        """Drop retained outputs of one tenant's sessions (or all);
        returns the dropped-entry count.  Sessions stay resident."""
        dropped = 0
        with self._lock:
            entries = [
                entry
                for key, entry in self._sessions.items()
                if tenant is None or key[0] == tenant
            ]
        for session, lock in entries:
            with lock:
                dropped += session.flush()
        return dropped

    def close(self) -> None:
        with self._lock:
            entries = list(self._sessions.values())
            self._sessions.clear()
        for session, lock in entries:
            with lock:
                session.close()

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def describe(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            return {
                f"{tenant}/{program_id}": {
                    "procs": len(session.index.bodies),
                    "generation": session.generation,
                    "retained": len(session._outputs),
                }
                for (tenant, program_id), (session, _) in self._sessions.items()
            }
