"""Gateway CLI: ``python -m repro.gateway <command>`` (also ``repro-gateway``).

Commands::

    serve     start the multi-tenant gateway
    submit    submit one program as a tenant (analyze / check / asserts)
    status    print gateway status (tenants, sessions, store, queue)
    metrics   print the Prometheus exposition text
    flush     drop a tenant's retained session outputs
    shutdown  drain and stop the gateway

Examples::

    # gateway with 4 dispatch workers, isolated jobs, a 64 MiB store
    python -m repro.gateway serve --tcp 127.0.0.1:7341 --workers 4 --jobs 1 \\
        --store .stores/gw --max-store-bytes 67108864 --weight paid=4

    # two tenants share the gateway; each keeps its own warm session
    python -m repro.gateway submit prog.lisl --tenant alice --addr 127.0.0.1:7341
    python -m repro.gateway submit prog.lisl --tenant bob --deadline-ms 2000

    # scrape (same text as `curl http://127.0.0.1:7341/metrics`)
    python -m repro.gateway metrics --addr 127.0.0.1:7341
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Dict, List, Optional

from repro.gateway.server import AnalysisGateway, GatewayConfig
from repro.service.client import ServiceClient, ServiceError, parse_address


def _add_addr(ap: argparse.ArgumentParser) -> None:
    ap.add_argument(
        "--addr",
        type=str,
        default="127.0.0.1:7341",
        help="gateway address: host:port or a Unix socket path",
    )


def _connect(args) -> ServiceClient:
    return ServiceClient.connect(parse_address(args.addr))


def _parse_weights(specs: List[str]) -> Dict[str, float]:
    weights: Dict[str, float] = {}
    for spec in specs:
        name, sep, value = spec.partition("=")
        if not sep:
            raise SystemExit(f"--weight wants tenant=weight, got {spec!r}")
        weights[name] = float(value)
    return weights


def cmd_serve(args) -> int:
    address = parse_address(args.tcp) if args.tcp else None
    config = GatewayConfig(
        host=address[0] if isinstance(address, tuple) else "127.0.0.1",
        port=address[1] if isinstance(address, tuple) else 0,
        socket_path=args.unix,
        workers=args.workers,
        jobs=args.jobs,
        store_dir=args.store,
        max_store_bytes=args.max_store_bytes,
        max_sessions=args.max_sessions,
        tenant_queue_limit=args.tenant_queue_limit,
        tenant_weights=_parse_weights(args.weight),
        default_max_seconds=args.budget,
        default_deadline_s=args.deadline,
    )
    gateway = AnalysisGateway(config)

    async def run() -> None:
        await gateway.start()
        kind, where = gateway.address
        print(f"repro gateway listening on {kind}:{where}", flush=True)
        await gateway.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    print("repro gateway stopped", flush=True)
    return 0


def cmd_submit(args) -> int:
    with open(args.file, "r", encoding="utf-8") as fh:
        source = fh.read()
    common = dict(
        tenant=args.tenant,
        deadline_ms=args.deadline_ms,
        max_seconds=args.budget,
    )
    with _connect(args) as client:
        if args.check:
            response = client.check(
                source,
                tier=args.tier,
                program_id=args.program_id or args.file,
                **common,
            )
        elif args.check_asserts:
            response = client.check_asserts(source, **common)
        else:
            response = client.analyze(
                source,
                domains=tuple(args.domains.split(",")),
                k=args.k,
                program_id=args.program_id or args.file,
                **common,
            )
    print(json.dumps(response, indent=2, default=repr))
    if not response.get("ok"):
        error = response.get("error", {})
        if error.get("retry_after_ms") is not None:
            print(
                f"shed [{error.get('kind')}]: retry after "
                f"{error['retry_after_ms']} ms",
                file=sys.stderr,
            )
        return 1
    return 0


def cmd_status(args) -> int:
    with _connect(args) as client:
        response = client.status()
    print(json.dumps(response.get("result", response), indent=2, default=repr))
    return 0 if response.get("ok") else 1


def cmd_metrics(args) -> int:
    with _connect(args) as client:
        sys.stdout.write(client.metrics())
    return 0


def cmd_flush(args) -> int:
    with _connect(args) as client:
        response = client.flush(args.program_id, tenant=args.tenant)
    print(json.dumps(response, indent=2, default=repr))
    return 0 if response.get("ok") else 1


def cmd_shutdown(args) -> int:
    with _connect(args) as client:
        response = client.shutdown()
    print(json.dumps(response, indent=2, default=repr))
    return 0 if response.get("ok") else 1


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-gateway",
        description="async multi-tenant analysis gateway",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="start the gateway")
    serve.add_argument("--tcp", type=str, default="127.0.0.1:7341",
                       help="TCP listen address host:port")
    serve.add_argument("--unix", type=str, default=None,
                       help="Unix socket path (wins over --tcp)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent dispatch workers")
    serve.add_argument("--jobs", type=int, default=1,
                       help="pool worker processes per job (0 = inline)")
    serve.add_argument("--store", type=str, default=None,
                       help="shared persistent summary store directory")
    serve.add_argument("--max-store-bytes", type=int, default=None,
                       help="store byte budget (GC evicts above this)")
    serve.add_argument("--max-sessions", type=int, default=64,
                       help="LRU bound on resident tenant sessions")
    serve.add_argument("--tenant-queue-limit", type=int, default=8,
                       help="pending requests per tenant before shedding")
    serve.add_argument("--weight", action="append", default=[],
                       metavar="TENANT=W",
                       help="tenant weight (repeatable; default 1.0)")
    serve.add_argument("--budget", type=float, default=None,
                       help="default per-request wall budget (seconds)")
    serve.add_argument("--deadline", type=float, default=None,
                       help="default per-request deadline (seconds)")
    serve.set_defaults(fn=cmd_serve)

    submit = sub.add_parser("submit", help="submit a program as a tenant")
    submit.add_argument("file", help="LISL program file")
    _add_addr(submit)
    submit.add_argument("--tenant", type=str, default=None,
                        help="tenant id (default: the gateway default)")
    submit.add_argument("--deadline-ms", type=int, default=None,
                        help="request deadline in milliseconds")
    submit.add_argument("--budget", type=float, default=None,
                        help="per-request wall budget (seconds)")
    submit.add_argument("--domains", type=str, default="am",
                        help="comma-separated domains (am, au)")
    submit.add_argument("--k", type=int, default=0, help="fold bound k")
    submit.add_argument("--program-id", type=str, default=None,
                        help="session id (default: the file path)")
    submit.add_argument("--check", action="store_true",
                        help="run the two-tier lint/safety checker")
    submit.add_argument("--check-asserts", action="store_true",
                        help="run assertion checking instead of summaries")
    submit.add_argument("--tier", choices=("lint", "safety", "all"),
                        default="all", help="checker tier(s) for --check")
    submit.set_defaults(fn=cmd_submit)

    for name, fn in (("status", cmd_status), ("metrics", cmd_metrics),
                     ("shutdown", cmd_shutdown)):
        cp = sub.add_parser(name, help=f"{name} the gateway")
        _add_addr(cp)
        cp.set_defaults(fn=fn)

    flush = sub.add_parser("flush", help="drop retained session outputs")
    _add_addr(flush)
    flush.add_argument("--tenant", type=str, default=None)
    flush.add_argument("--program-id", type=str, default=None)
    flush.set_defaults(fn=cmd_flush)

    args = ap.parse_args(argv)
    try:
        return args.fn(args)
    except ServiceError as exc:
        print(f"gateway error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
