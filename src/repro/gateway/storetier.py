"""Size-budgeted store tier: generational compaction + GC for the
one-file-per-key summary store.

:class:`repro.parallel.store.PersistentSummaryStore` writes one JSON
file per content-hash key.  That layout is ideal for lock-free
concurrent writers, but it does not survive millions of keys: directory
scans and inode pressure grow linearly, and there is no size bound at
all.  :class:`CompactingStore` keeps the same ``get``/``put`` surface
(so it can be handed to ``EngineOptions(cache=...)``) and adds:

- **generational compaction** — when enough *loose* files accumulate
  (the young generation), they are bundled into one immutable *pack
  file* under ``packs/`` (the old generation) and the loose files are
  unlinked.  Reads stay correct throughout: the base store's read path
  is pack-aware and a key always exists as a loose file or in a pack
  (the pack is published **before** the loose files go away);
- **byte-budget GC** — when the store exceeds ``max_bytes``, whole
  oldest-generation packs are deleted first (coldest entries — every
  compaction cycle re-packs whatever got re-written since), then the
  oldest loose files.  Evicting an entry is always safe: the store is a
  cache of deterministic analysis results, so a later miss recomputes
  the byte-identical payload;
- **concurrent-writer safety** — compaction never rewrites or locks
  anything a worker touches: workers only ever *create* loose files
  (atomic ``os.replace``), packs are immutable once published, and the
  content-addressed keys mean a worker racing a compaction writes a
  byte-identical loose copy at worst.

Maintenance runs inline every ``check_interval`` puts (cheap: one
directory scan) or on demand via :meth:`maintain`, which is what the
gateway's background task and the ``repro-store`` CLI call.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.engine.canon import stable_digest
from repro.parallel.store import PersistentSummaryStore


@dataclass
class StoreBudget:
    """Compaction and GC policy knobs."""

    max_bytes: Optional[int] = None  # None = unbounded (no GC)
    compact_min_loose: int = 256  # compact when this many loose files
    check_interval: int = 64  # puts between inline maintenance checks


class CompactingStore:
    """A :class:`PersistentSummaryStore` with packs, budgets, and GC."""

    def __init__(
        self,
        directory: str,
        budget: Optional[StoreBudget] = None,
        fingerprint: Optional[str] = None,
    ):
        self.budget = budget or StoreBudget()
        self.inner = PersistentSummaryStore(directory, fingerprint=fingerprint)
        self.compactions = 0
        self.compacted_entries = 0
        self.gc_runs = 0
        self.gc_evicted_files = 0
        self.gc_evicted_bytes = 0
        self._puts_since_check = 0

    # -- cache surface (EngineOptions-compatible) --------------------------------

    def get(self, key) -> Optional[Any]:
        return self.inner.get(key)

    def put(self, key, payload: Any) -> None:
        self.inner.put(key, payload)
        self._puts_since_check += 1
        if self._puts_since_check >= max(1, self.budget.check_interval):
            self._puts_since_check = 0
            self.maintain()

    def __contains__(self, key) -> bool:
        return key in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def clear(self) -> None:
        self.inner.clear()

    # -- maintenance -------------------------------------------------------------

    def maintain(self) -> Dict[str, int]:
        """One maintenance step: compact if the young generation is big
        enough, then GC if over budget.  Idempotent and cheap when
        there is nothing to do."""
        out = {"compacted": 0, "gc_files": 0, "gc_bytes": 0}
        if self.inner.loose_count() >= self.budget.compact_min_loose:
            out["compacted"] = self.compact()
        if (
            self.budget.max_bytes is not None
            and self.inner.total_bytes() > self.budget.max_bytes
        ):
            gc = self.gc()
            out["gc_files"] = gc["evicted_files"]
            out["gc_bytes"] = gc["evicted_bytes"]
        return out

    def compact(self) -> int:
        """Bundle the current loose files into one new pack; returns the
        number of entries packed.

        Publication order is the safety argument: the pack is fully
        written and ``os.replace``-d into ``packs/`` *before* any loose
        file is unlinked, so a concurrent reader always finds every key
        in at least one place, and a concurrent writer's fresh loose
        file (same content-addressed bytes) simply wins the next read.
        """
        directory = self.inner.directory
        entries: Dict[str, Any] = {}
        packed_files = []
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            return 0
        for name in names:
            if not name.endswith(".json") or name.startswith(".tmp-"):
                continue
            path = os.path.join(directory, name)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    doc = json.load(fh)
            except Exception:
                continue  # torn/corrupt loose file: leave it alone
            if doc.get("fingerprint") != self.inner.fingerprint:
                try:  # stale generation: drop instead of packing
                    os.unlink(path)
                except OSError:
                    pass
                continue
            entries[name[: -len(".json")]] = doc
            packed_files.append(path)
        if not entries:
            return 0
        pack_dir = self.inner.pack_directory
        os.makedirs(pack_dir, exist_ok=True)
        seq = self._next_generation()
        content_tag = stable_digest(sorted(entries))[:8]
        pack_name = f"pack-{seq:08d}-{content_tag}.json"
        fd, tmp = tempfile.mkstemp(dir=pack_dir, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(
                    {
                        "schema": "repro-pack/1",
                        "generation": seq,
                        "created": time.time(),
                        "fingerprint": self.inner.fingerprint,
                        "entries": entries,
                    },
                    fh,
                )
            os.replace(tmp, os.path.join(pack_dir, pack_name))
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return 0
        for path in packed_files:
            try:
                os.unlink(path)
            except OSError:
                pass
        self.compactions += 1
        self.compacted_entries += len(entries)
        return len(entries)

    def _next_generation(self) -> int:
        latest = 0
        try:
            for name in os.listdir(self.inner.pack_directory):
                if name.startswith("pack-") and name.endswith(".json"):
                    try:
                        latest = max(latest, int(name.split("-")[1]))
                    except (IndexError, ValueError):
                        pass
        except OSError:
            pass
        return latest + 1

    def gc(self, max_bytes: Optional[int] = None) -> Dict[str, int]:
        """Evict until the store fits ``max_bytes`` (default: the
        configured budget).  Oldest pack generations go first, then the
        oldest loose files by mtime."""
        limit = self.budget.max_bytes if max_bytes is None else max_bytes
        evicted_files = 0
        evicted_bytes = 0
        if limit is None:
            return {"evicted_files": 0, "evicted_bytes": 0,
                    "bytes": self.inner.total_bytes()}
        pack_dir = self.inner.pack_directory

        def victims():
            # Pack files, oldest generation first...
            try:
                packs = sorted(
                    name
                    for name in os.listdir(pack_dir)
                    if name.startswith("pack-") and name.endswith(".json")
                )
            except OSError:
                packs = []
            for name in packs:
                yield os.path.join(pack_dir, name)
            # ...then loose files, oldest mtime first.
            try:
                loose = [
                    os.path.join(self.inner.directory, name)
                    for name in os.listdir(self.inner.directory)
                    if name.endswith(".json") and not name.startswith(".tmp-")
                ]
            except OSError:
                loose = []

            def mtime(path):
                try:
                    return os.path.getmtime(path)
                except OSError:
                    return 0.0
            for path in sorted(loose, key=mtime):
                yield path

        total = self.inner.total_bytes()
        for path in victims():
            if total <= limit:
                break
            try:
                size = os.path.getsize(path)
                os.unlink(path)
            except OSError:
                continue
            total -= size
            evicted_files += 1
            evicted_bytes += size
        self.gc_runs += 1
        self.gc_evicted_files += evicted_files
        self.gc_evicted_bytes += evicted_bytes
        return {
            "evicted_files": evicted_files,
            "evicted_bytes": evicted_bytes,
            "bytes": total,
        }

    # -- accounting --------------------------------------------------------------

    def total_bytes(self) -> int:
        return self.inner.total_bytes()

    def stats(self) -> Dict[str, Any]:
        out = self.inner.stats()
        out.update(
            max_bytes=self.budget.max_bytes,
            compactions=self.compactions,
            compacted_entries=self.compacted_entries,
            gc_runs=self.gc_runs,
            gc_evicted_files=self.gc_evicted_files,
            gc_evicted_bytes=self.gc_evicted_bytes,
        )
        return out
