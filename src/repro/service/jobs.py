"""Picklable job payloads the daemon dispatches onto the worker pool.

``analyze`` jobs reuse :func:`repro.parallel.batch.run_analysis_request`
through the incremental :class:`~repro.service.session.Session`; this
module adds the two verdict-producing jobs — assertion checking and
procedure equivalence — as self-contained request dataclasses plus
worker entry points that return plain JSON-ready dicts (diagnostic
records per :mod:`repro.service.diagnostics`, never live engine
objects).  Running them in pool workers gives the daemon the same fault
isolation analyze jobs get: a crash or hard budget kill loses one
request, not the server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class AssertRequest:
    """Check the spec assertions of (some procedures of) a program."""

    program: Any  # normalized repro.lang.ast.Program
    procs: Tuple[str, ...] = ()  # () = every procedure with an assert edge
    domain: str = "au"
    k: int = 0
    max_seconds: Optional[float] = None


@dataclass
class CheckRequest:
    """Run the two-tier checker over (some procedures of) a program.

    ``procs`` is the dirty subset on warm daemon runs — the server
    answers clean procedures from its per-program finding cache and only
    dispatches the rest here.
    """

    program: Any  # normalized repro.lang.ast.Program
    procs: Tuple[str, ...] = ()  # () = every procedure
    tier: str = "all"  # "lint" | "safety" | "termination" | "all"
    domain: str = "am"
    k: int = 0
    max_seconds: Optional[float] = None


@dataclass
class QueryRequest:
    """Answer one program-point obligation on demand (``check`` verb
    with a ``query`` field): analyzed through
    :class:`repro.core.strategy.DemandStrategy`, so only the queried
    procedure's backward call cone is ever tabulated."""

    program: Any  # normalized repro.lang.ast.Program
    proc: str = ""
    line: Optional[int] = None  # None = the whole procedure
    rule: Optional[str] = None  # None = every Tier-B safety rule
    domain: str = "am"
    k: int = 0
    max_seconds: Optional[float] = None


@dataclass
class EquivalenceRequest:
    """Prove two sorting-like procedures equivalent (paper §6.4)."""

    program: Any
    proc1: str = ""
    proc2: str = ""
    max_seconds: Optional[float] = None


def _procs_with_asserts(icfg) -> List[str]:
    from repro.lang.cfg import OpAssert

    out = []
    for name in sorted(icfg.cfgs):
        cfg = icfg.cfg(name)
        if any(isinstance(edge.op, OpAssert) for edge in cfg.edges):
            out.append(name)
    return out


def run_assert_request(request: AssertRequest) -> Dict[str, Any]:
    """Worker entry point: assertion verdicts as diagnostic records."""
    from repro.core.api import Analyzer
    from repro.core.assertions import AssertionChecker
    from repro.service import diagnostics as D

    analyzer = Analyzer(request.program)
    procs = list(request.procs) or _procs_with_asserts(analyzer.icfg)
    records: List[D.DiagnosticRecord] = []
    stats: Dict[str, Any] = {"procs": procs, "domain": request.domain}
    for proc in procs:
        checker = AssertionChecker()
        result = analyzer.analyze(
            proc,
            domain=request.domain,
            k=request.k,
            assume_handler=checker,
            max_seconds=request.max_seconds,
        )
        records.extend(checker.diagnostics())
        records.extend(
            D.from_engine_diagnostics(result.diagnostics, proc=proc)
        )
    return {
        "results": [record.to_json() for record in records],
        "stats": stats,
    }


def run_check_request(request: CheckRequest) -> Dict[str, Any]:
    """Worker entry point: per-procedure checker findings, tier-split.

    Findings come back grouped ``{"lint": {proc: [records]}, "safety":
    {proc: [records]}, "termination": {proc: [records]}}`` so the server
    can cache the tiers under their respective invalidation keys (Tier
    A: body hash; Tier B and termination: cone fingerprint).
    """
    import time

    from repro.core.api import Analyzer
    from repro.checker.findings import sort_findings
    from repro.checker.lints import lint_cfg
    from repro.checker.safety import SafetyOptions, check_safety

    analyzer = Analyzer(request.program)
    procs = list(request.procs) or sorted(analyzer.icfg.cfgs)
    proc_lines = {p.name: p.line for p in request.program.procedures}
    out: Dict[str, Any] = {
        "lint": {},
        "safety": {},
        "termination": {},
        "proc_status": {},
        "termination_status": {},
        "stats": {"procs": procs, "tier": request.tier,
                  "domain": request.domain},
    }
    if request.tier in ("lint", "all"):
        started = time.perf_counter()
        for proc in procs:
            findings = lint_cfg(
                analyzer.icfg.cfg(proc), proc_line=proc_lines.get(proc, 0)
            )
            out["lint"][proc] = [f.to_json() for f in sort_findings(findings)]
        out["stats"]["lint_seconds"] = round(time.perf_counter() - started, 6)
    if request.tier in ("safety", "all"):
        report = check_safety(
            analyzer,
            SafetyOptions(
                domain=request.domain,
                k=request.k,
                procs=tuple(procs),
                max_seconds=request.max_seconds,
            ),
        )
        by_proc: Dict[str, List] = {proc: [] for proc in procs}
        for finding in report.findings():
            by_proc.setdefault(finding.procedure, []).append(finding)
        out["safety"] = {
            proc: [f.to_json() for f in sort_findings(findings)]
            for proc, findings in by_proc.items()
        }
        out["proc_status"] = dict(report.proc_status)
        out["stats"]["safety_seconds"] = round(report.seconds, 6)
        out["stats"]["safety_verdicts"] = report.counts()
    if request.tier == "termination":
        from repro.termination.driver import TerminationOptions, check_termination

        report = check_termination(
            analyzer,
            TerminationOptions(
                k=request.k,
                procs=list(procs),
                max_seconds=request.max_seconds,
            ),
        )
        by_proc: Dict[str, List] = {proc: [] for proc in procs}
        for finding in report.findings(include_safe=True):
            by_proc.setdefault(finding.procedure, []).append(finding)
        out["termination"] = {
            proc: [f.to_json() for f in sort_findings(findings)]
            for proc, findings in by_proc.items()
        }
        out["termination_status"] = dict(report.proc_status)
        out["stats"]["termination_seconds"] = round(report.seconds, 6)
        out["stats"]["termination_verdicts"] = report.counts()
    return out


def run_query_request(request: QueryRequest) -> Dict[str, Any]:
    """Worker entry point: one demand-query answer as plain JSON
    (verdict, findings, cone accounting -- see
    :meth:`repro.checker.safety.QueryAnswer.to_json`)."""
    from repro.core.api import Analyzer
    from repro.checker.safety import Query, SafetyOptions, answer_query

    analyzer = Analyzer(request.program)
    answer = answer_query(
        analyzer,
        Query(proc=request.proc, line=request.line, rule=request.rule),
        SafetyOptions(
            domain=request.domain,
            k=request.k,
            max_seconds=request.max_seconds,
        ),
    )
    return answer.to_json()


def run_equivalence_request(request: EquivalenceRequest) -> Dict[str, Any]:
    """Worker entry point: one equivalence verdict as a diagnostic record."""
    from repro.core.api import Analyzer
    from repro.core.equivalence import check_equivalence
    from repro.engine import EngineOptions
    from repro.service import diagnostics as D

    analyzer = Analyzer(request.program)
    opts = EngineOptions(max_seconds=request.max_seconds)
    result = check_equivalence(
        analyzer, request.proc1, request.proc2, engine_opts=opts
    )
    record = D.from_equivalence(result)
    return {
        "results": [record.to_json()],
        "stats": result.stats or {},
    }
