"""Picklable job payloads the daemon dispatches onto the worker pool.

``analyze`` jobs reuse :func:`repro.parallel.batch.run_analysis_request`
through the incremental :class:`~repro.service.session.Session`; this
module adds the two verdict-producing jobs — assertion checking and
procedure equivalence — as self-contained request dataclasses plus
worker entry points that return plain JSON-ready dicts (diagnostic
records per :mod:`repro.service.diagnostics`, never live engine
objects).  Running them in pool workers gives the daemon the same fault
isolation analyze jobs get: a crash or hard budget kill loses one
request, not the server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class AssertRequest:
    """Check the spec assertions of (some procedures of) a program."""

    program: Any  # normalized repro.lang.ast.Program
    procs: Tuple[str, ...] = ()  # () = every procedure with an assert edge
    domain: str = "au"
    k: int = 0
    max_seconds: Optional[float] = None


@dataclass
class EquivalenceRequest:
    """Prove two sorting-like procedures equivalent (paper §6.4)."""

    program: Any
    proc1: str = ""
    proc2: str = ""
    max_seconds: Optional[float] = None


def _procs_with_asserts(icfg) -> List[str]:
    from repro.lang.cfg import OpAssert

    out = []
    for name in sorted(icfg.cfgs):
        cfg = icfg.cfg(name)
        if any(isinstance(edge.op, OpAssert) for edge in cfg.edges):
            out.append(name)
    return out


def run_assert_request(request: AssertRequest) -> Dict[str, Any]:
    """Worker entry point: assertion verdicts as diagnostic records."""
    from repro.core.api import Analyzer
    from repro.core.assertions import AssertionChecker
    from repro.service import diagnostics as D

    analyzer = Analyzer(request.program)
    procs = list(request.procs) or _procs_with_asserts(analyzer.icfg)
    records: List[D.DiagnosticRecord] = []
    stats: Dict[str, Any] = {"procs": procs, "domain": request.domain}
    for proc in procs:
        checker = AssertionChecker()
        result = analyzer.analyze(
            proc,
            domain=request.domain,
            k=request.k,
            assume_handler=checker,
            max_seconds=request.max_seconds,
        )
        records.extend(checker.diagnostics())
        records.extend(
            D.from_engine_diagnostics(result.diagnostics, proc=proc)
        )
    return {
        "results": [record.to_json() for record in records],
        "stats": stats,
    }


def run_equivalence_request(request: EquivalenceRequest) -> Dict[str, Any]:
    """Worker entry point: one equivalence verdict as a diagnostic record."""
    from repro.core.api import Analyzer
    from repro.core.equivalence import check_equivalence
    from repro.engine import EngineOptions
    from repro.service import diagnostics as D

    analyzer = Analyzer(request.program)
    opts = EngineOptions(max_seconds=request.max_seconds)
    result = check_equivalence(
        analyzer, request.proc1, request.proc2, engine_opts=opts
    )
    record = D.from_equivalence(result)
    return {
        "results": [record.to_json()],
        "stats": result.stats or {},
    }
