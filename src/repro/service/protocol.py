"""Wire protocol of the analysis service: newline-delimited JSON.

One request per line, one response per line, UTF-8, stdlib only.  A
request is a JSON object with a ``verb`` and an optional client ``id``
(echoed back verbatim so clients can pipeline).  Responses always carry
``ok`` plus either the verb's payload or a structured ``error``:

.. code-block:: text

    -> {"id": 1, "verb": "analyze", "source": "proc f() ...", "domains": ["am"]}
    <- {"id": 1, "ok": true, "verb": "analyze", "result": {...}, "telemetry": {...}}
    -> {"id": 2, "verb": "nope"}
    <- {"id": 2, "ok": false, "error": {"kind": "bad_request", "message": ...}}

Grammar (see DESIGN.md §10 for the full field tables)::

    request   := line( { "verb": VERB, "id"?: any, ...fields } )
    VERB      := "analyze" | "assert" | "equivalence" | "check"
               | "status" | "flush" | "shutdown" | "ping"
    response  := line( { "ok": bool, "id"?: any, "verb": VERB,
                         "result"?: object, "telemetry"?: object,
                         "error"?: { "kind": str, "message": str } } )

The ``check`` verb optionally carries a ``query`` field — a
``"PROC:LINE[:RULE]"`` string or a ``{"proc", "line", "rule"}`` object —
switching it to a single demand-driven obligation answered via
backward-cone analysis (see :mod:`repro.service.queries`).

Oversized lines (> ``MAX_LINE_BYTES``) and malformed JSON yield a
``bad_request`` error response rather than a dropped connection.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

PROTOCOL_VERSION = 1

# Job verbs go through the bounded queue; control verbs answer inline.
JOB_VERBS = ("analyze", "assert", "equivalence", "check")
CONTROL_VERBS = ("status", "flush", "shutdown", "ping", "metrics")
VERBS = JOB_VERBS + CONTROL_VERBS

MAX_LINE_BYTES = 8 * 1024 * 1024  # one request line; programs are small

# Error kinds.
E_BAD_REQUEST = "bad_request"
E_QUEUE_FULL = "queue_full"
E_SHED = "shed"  # per-tenant admission control (429-style, retryable)
E_DEADLINE = "deadline"  # request deadline expired before dispatch
E_SHUTTING_DOWN = "shutting_down"
E_INTERNAL = "internal"


class ProtocolError(Exception):
    """A malformed or oversized request line."""

    def __init__(self, message: str, kind: str = E_BAD_REQUEST):
        super().__init__(message)
        self.kind = kind


def encode(message: Dict[str, Any]) -> bytes:
    """One protocol line: compact JSON plus the terminating newline."""
    return (json.dumps(message, separators=(",", ":"), default=repr) + "\n").encode(
        "utf-8"
    )


def decode_line(line: bytes) -> Dict[str, Any]:
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed request line: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    return message


def validate_request(message: Dict[str, Any]) -> str:
    """Returns the verb; raises :class:`ProtocolError` otherwise."""
    verb = message.get("verb")
    if not isinstance(verb, str) or verb not in VERBS:
        raise ProtocolError(
            f"unknown verb {verb!r}; expected one of {', '.join(VERBS)}"
        )
    if verb in ("analyze", "assert", "check") and not isinstance(
        message.get("source"), str
    ):
        raise ProtocolError(f"verb {verb!r} requires a string 'source'")
    if verb == "check" and message.get("query") is not None:
        query = message["query"]
        if isinstance(query, dict):
            if not isinstance(query.get("proc"), str) or not query["proc"]:
                raise ProtocolError(
                    "check 'query' object requires a non-empty string 'proc'"
                )
            if query.get("line") is not None and not isinstance(
                query["line"], int
            ):
                raise ProtocolError(
                    "check 'query' line must be an integer or null"
                )
            if query.get("rule") is not None and not isinstance(
                query["rule"], str
            ):
                raise ProtocolError(
                    "check 'query' rule must be a string or null"
                )
        elif not isinstance(query, str):
            raise ProtocolError(
                "check 'query' must be a 'PROC:LINE[:RULE]' string or an "
                "object with 'proc'/'line'/'rule'"
            )
    if verb == "equivalence":
        if not isinstance(message.get("source"), str):
            raise ProtocolError("verb 'equivalence' requires a string 'source'")
        for fld in ("proc1", "proc2"):
            if not isinstance(message.get(fld), str):
                raise ProtocolError(f"verb 'equivalence' requires a string {fld!r}")
    return verb


def response(
    request: Optional[Dict[str, Any]],
    verb: str,
    result: Optional[Dict[str, Any]] = None,
    telemetry: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    out: Dict[str, Any] = {"ok": True, "verb": verb}
    if request is not None and "id" in request:
        out["id"] = request["id"]
    if result is not None:
        out["result"] = result
    if telemetry is not None:
        out["telemetry"] = telemetry
    return out


def error_response(
    request: Optional[Dict[str, Any]],
    kind: str,
    message: str,
    verb: Optional[str] = None,
    diagnostics: Optional[Dict[str, Any]] = None,
    retry_after_ms: Optional[int] = None,
) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "ok": False,
        "error": {"kind": kind, "message": message},
    }
    if retry_after_ms is not None:
        out["error"]["retry_after_ms"] = int(retry_after_ms)
    if verb is not None:
        out["verb"] = verb
    if request is not None and "id" in request:
        out["id"] = request["id"]
    if diagnostics is not None:
        out["diagnostics"] = diagnostics
    return out


def shed_response(
    request: Optional[Dict[str, Any]],
    message: str,
    retry_after_ms: int,
    verb: Optional[str] = None,
    kind: str = E_SHED,
    rule_id: Optional[str] = None,
) -> Dict[str, Any]:
    """A 429-style load-shedding rejection, uniform across tiers.

    Both the single-process daemon (global ``queue_full``) and the
    gateway (per-tenant ``shed`` / ``deadline``) answer with this shape:
    a retryable error kind, a ``retry_after_ms`` hint, and a diagnostics
    record under the shared ``queue.shed`` rule id (or the gateway's
    ``gateway.*`` family), so one client retry loop handles every tier.
    """
    from repro.service import diagnostics as D

    record = D.DiagnosticRecord(
        rule_id=rule_id or D.RULE_QUEUE_SHED,
        verdict=D.ERROR,
        message=message,
        witness={"retry_after_ms": int(retry_after_ms)},
    )
    return error_response(
        request,
        kind,
        message,
        verb,
        diagnostics=D.run_envelope([record]),
        retry_after_ms=retry_after_ms,
    )
