"""Service CLI: ``python -m repro.service <command>`` (also ``repro-serve``).

Commands::

    serve     start the daemon
    submit    submit one program for (incremental) analysis / assertions
    watch     re-submit a file whenever its mtime changes
    status    print daemon status
    flush     drop retained session outputs
    shutdown  graceful daemon shutdown

Examples::

    # start a daemon with a persistent store, 2 pool workers
    python -m repro.service serve --tcp 127.0.0.1:7341 --store .stores/svc --jobs 2

    # submit; the second submit after an edit re-analyzes only the dirty cone
    python -m repro.service submit prog.lisl --addr 127.0.0.1:7341 --domains am,au
    python -m repro.service watch prog.lisl --addr 127.0.0.1:7341

    # assertion verdicts as structured diagnostics
    python -m repro.service submit prog.lisl --addr 127.0.0.1:7341 --check-asserts

    # one program-point obligation on demand (backward-cone analysis;
    # warm answers come from the server's cone-keyed query cache)
    python -m repro.service submit prog.lisl --addr 127.0.0.1:7341 \
        --check --query reverse:12:safety.null-deref
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.service.client import ServiceClient, ServiceError, parse_address
from repro.service.server import AnalysisServer, ServerConfig


def _add_addr(ap: argparse.ArgumentParser) -> None:
    ap.add_argument(
        "--addr",
        type=str,
        default="127.0.0.1:7341",
        help="daemon address: host:port or a Unix socket path",
    )


def _connect(args) -> ServiceClient:
    return ServiceClient.connect(parse_address(args.addr))


def _print_response(response, as_json: bool) -> int:
    if as_json:
        print(json.dumps(response, indent=2, default=repr))
        return 0 if response.get("ok") else 1
    if not response.get("ok"):
        error = response.get("error", {})
        print(f"error [{error.get('kind')}]: {error.get('message')}")
        _print_diagnostics(response.get("diagnostics"))
        return 1
    result = response.get("result", {})
    if response.get("verb") == "analyze":
        inc = result.get("incremental", {})
        print(
            f"analyze: {inc.get('roots', 0)} root task(s) — "
            f"{inc.get('analyzed', 0)} analyzed, {inc.get('reused', 0)} reused "
            f"(SCC shards {inc.get('sccs_analyzed', 0)}/{inc.get('sccs_total', 0)}, "
            f"generation {inc.get('generation', 0)})"
        )
        if inc.get("dirty_cone"):
            print(f"  dirty cone: {', '.join(inc['dirty_cone'])}")
        for task_id in sorted(result.get("summary_hashes", {})):
            hashes = result["summary_hashes"][task_id]
            print(f"  {task_id}: {len(hashes)} summarie(s)")
        _print_diagnostics(result.get("diagnostics"))
    elif response.get("verb") == "check":
        if "query" in result:
            answer = result["query"]
            print(
                f"query {answer['query']['proc']}: verdict "
                f"{answer.get('verdict') or 'no-obligation'} "
                f"({result.get('mode')}, cone {answer.get('cone_size')}/"
                f"{answer.get('proc_count')} procs)"
            )
        else:
            print(
                f"check: {len(result.get('checked', []))} proc(s) checked, "
                f"{len(result.get('reused', []))} reused from cache "
                f"({'clean' if result.get('ok') else 'findings'})"
            )
        _print_diagnostics(result.get("diagnostics"))
    elif response.get("verb") in ("status", "flush", "shutdown"):
        print(json.dumps(result, indent=2, default=repr))
    else:
        _print_diagnostics(result)
    telemetry = response.get("telemetry", {})
    if telemetry:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(telemetry.items()))
        print(f"telemetry: {parts}")
    return 0


def _print_diagnostics(envelope) -> None:
    from repro.service.diagnostics import envelope_records

    if not envelope:
        return
    for record in envelope_records(envelope):
        where = record.get("procedure", "?")
        if record.get("line") is not None:
            where += f":{record['line']}"
        print(
            f"  [{record['verdict']}] {record['ruleId']} {where}: "
            f"{record['message']}"
        )


def cmd_serve(args) -> int:
    address = parse_address(args.tcp) if args.tcp else None
    config = ServerConfig(
        host=address[0] if isinstance(address, tuple) else "127.0.0.1",
        port=address[1] if isinstance(address, tuple) else 0,
        socket_path=args.unix,
        jobs=args.jobs,
        store_dir=args.store,
        queue_limit=args.queue_limit,
        default_max_seconds=args.budget,
    )
    server = AnalysisServer(config)
    server.start()
    kind, where = server.address
    print(f"repro service listening on {kind}:{where}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    print("repro service stopped", flush=True)
    return 0


def _submit_once(client: ServiceClient, args, source: str) -> int:
    if getattr(args, "check", False):
        response = client.check(
            source,
            procs=args.procs.split(",") if args.procs else None,
            tier=args.tier,
            domain=args.domains.split(",")[0],
            k=args.k,
            program_id=args.program_id,
            max_seconds=args.budget,
            query=args.query,
        )
        return _print_response(response, args.json)
    if args.check_asserts:
        response = client.check_asserts(
            source,
            procs=args.procs.split(",") if args.procs else None,
            domain=args.domains.split(",")[0],
            max_seconds=args.budget,
        )
    else:
        response = client.analyze(
            source,
            procs=args.procs.split(",") if args.procs else None,
            domains=tuple(args.domains.split(",")),
            k=args.k,
            program_id=args.program_id,
            max_seconds=args.budget,
        )
    return _print_response(response, args.json)


def cmd_submit(args) -> int:
    with open(args.file, "r", encoding="utf-8") as fh:
        source = fh.read()
    with _connect(args) as client:
        return _submit_once(client, args, source)


def cmd_watch(args) -> int:
    last_mtime = None
    print(f"watching {args.file} (interval {args.interval}s; ctrl-c stops)")
    try:
        with _connect(args) as client:
            while True:
                try:
                    mtime = os.stat(args.file).st_mtime
                except OSError:
                    time.sleep(args.interval)
                    continue
                if mtime != last_mtime:
                    last_mtime = mtime
                    with open(args.file, "r", encoding="utf-8") as fh:
                        source = fh.read()
                    stamp = time.strftime("%H:%M:%S")
                    print(f"-- {stamp} submit {args.file}")
                    _submit_once(client, args, source)
                time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_status(args) -> int:
    with _connect(args) as client:
        return _print_response(client.status(), args.json)


def cmd_flush(args) -> int:
    with _connect(args) as client:
        return _print_response(client.flush(args.program_id), args.json)


def cmd_shutdown(args) -> int:
    with _connect(args) as client:
        return _print_response(client.shutdown(), args.json)


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="incremental analysis service (daemon + client)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="start the daemon")
    serve.add_argument("--tcp", type=str, default="127.0.0.1:7341",
                       help="TCP listen address host:port")
    serve.add_argument("--unix", type=str, default=None,
                       help="Unix socket path (wins over --tcp)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="pool worker processes per job (0 = inline)")
    serve.add_argument("--store", type=str, default=None,
                       help="persistent summary store directory")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="bounded request queue size")
    serve.add_argument("--budget", type=float, default=None,
                       help="default per-request wall budget (seconds)")
    serve.set_defaults(fn=cmd_serve)

    for name, fn, takes_file in (
        ("submit", cmd_submit, True),
        ("watch", cmd_watch, True),
    ):
        cp = sub.add_parser(name, help=f"{name} a program")
        cp.add_argument("file", help="LISL program file")
        _add_addr(cp)
        cp.add_argument("--procs", type=str, default=None,
                        help="comma-separated root procedures (default: all)")
        cp.add_argument("--domains", type=str, default="am",
                        help="comma-separated domains (am, au)")
        cp.add_argument("--k", type=int, default=0, help="fold bound k")
        cp.add_argument("--program-id", type=str, default=None,
                        help="session id (default: the file path)")
        cp.add_argument("--budget", type=float, default=None,
                        help="per-request wall budget (seconds)")
        cp.add_argument("--check-asserts", action="store_true",
                        help="run assertion checking instead of summaries")
        cp.add_argument("--check", action="store_true",
                        help="run the two-tier lint/safety checker")
        cp.add_argument("--tier", choices=("lint", "safety", "all"),
                        default="all", help="checker tier(s) for --check")
        cp.add_argument("--query", type=str, default=None,
                        metavar="PROC:LINE[:RULE]",
                        help="with --check: answer one program-point "
                             "obligation on demand (line 0 = whole "
                             "procedure)")
        cp.add_argument("--json", action="store_true",
                        help="print the raw JSON response")
        if name == "watch":
            cp.add_argument("--interval", type=float, default=1.0,
                            help="mtime poll interval (seconds)")
        cp.set_defaults(fn=fn)

    for name, fn in (("status", cmd_status), ("flush", cmd_flush),
                     ("shutdown", cmd_shutdown)):
        cp = sub.add_parser(name, help=f"{name} the daemon")
        _add_addr(cp)
        cp.add_argument("--json", action="store_true")
        if name == "flush":
            cp.add_argument("--program-id", type=str, default=None)
        cp.set_defaults(fn=fn)

    args = ap.parse_args(argv)
    if getattr(args, "program_id", None) is None and hasattr(args, "file"):
        args.program_id = args.file
    try:
        return args.fn(args)
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
