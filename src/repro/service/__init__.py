"""The incremental analysis service subsystem.

PR 3 made many analyses cheap to *run* (the parallel pool and the
cross-run persistent store); this package makes them cheap to *re-run*:
a resident daemon keeps a dependency-tracked picture of each submitted
program warm, so an edit re-analyzes exactly the call-graph cone above
the changed SCCs and answers everything else from retained results.

- :mod:`repro.service.depindex` — content-hash dependency index: body
  hashes per procedure, cone fingerprints per SCC, dirty-cone diffing,
  and the cone-keyed rewrite of persistent-store keys;
- :mod:`repro.service.session` — :class:`Session`, the incremental
  driver (also reachable as ``Analyzer.open_session()``): cold runs
  populate the store, warm runs dispatch only the dirty cone and are
  asserted hash-identical to cold runs;
- :mod:`repro.service.protocol` / :mod:`~repro.service.server` /
  :mod:`~repro.service.client` — newline-delimited JSON over a TCP or
  Unix socket; a bounded request queue feeding a dispatcher that runs
  jobs on the fault-isolated worker pool; ``status``/``flush``/
  ``shutdown`` control verbs and per-request telemetry;
- :mod:`repro.service.jobs` — picklable assert/equivalence job payloads
  and their pool worker entry points;
- :mod:`repro.service.diagnostics` — the SARIF-like diagnostics schema
  shared by assertion checking, budget reports, equivalence verdicts and
  service-level failures;
- ``python -m repro.service`` (``repro-serve``) — the ``serve`` /
  ``submit`` / ``watch`` / ``status`` / ``flush`` / ``shutdown`` CLI.
"""

from repro.service.client import ServiceClient, ServiceError, parse_address
from repro.service.depindex import ConeKeyedStore, DependencyIndex, DirtyCone, body_hash
from repro.service.diagnostics import DiagnosticRecord, run_envelope
from repro.service.server import AnalysisServer, ServerConfig
from repro.service.session import Session, SessionReport

__all__ = [
    "AnalysisServer",
    "ConeKeyedStore",
    "DependencyIndex",
    "DiagnosticRecord",
    "DirtyCone",
    "ServerConfig",
    "ServiceClient",
    "ServiceError",
    "Session",
    "SessionReport",
    "body_hash",
    "parse_address",
    "run_envelope",
]
