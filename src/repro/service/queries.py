"""Demand-query execution shared by the daemon and the gateway.

A ``check`` request carrying a ``query`` field asks for one program
point's verdict instead of a whole-program sweep:

.. code-block:: text

    -> {"verb": "check", "source": "...", "query": "reverse:12"}
    -> {"verb": "check", "source": "...",
        "query": {"proc": "reverse", "line": 12, "rule": "safety.leak"}}
    <- {"ok": true, "verb": "check",
        "result": {"query": {"verdict": ..., "cone": [...], ...},
                   "mode": "warm" | "cold", ...}}

Execution is demand-driven end to end: the analysis runs through
:class:`repro.core.strategy.DemandStrategy` (only the queried
procedure's backward call cone is tabulated) and the finished answer is
cached in the shared :class:`~repro.service.checkcache.CheckFindingCache`
under the procedure's cone-fingerprint key — the same invalidation
boundary Tier-B findings trust — so a warm query never runs a fixpoint
at all.  Both serving tiers call :func:`execute_query` with a
front-end-specific ``runner`` (inline or pool-isolated), which keeps
the cache, telemetry (``query.warm``/``query.cold`` counters plus the
``query.latency_ms`` window rendered as a Prometheus summary) and
response shape identical across them.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.service import diagnostics as D
from repro.service import protocol as P
from repro.service.checkcache import CheckFindingCache
from repro.service.jobs import QueryRequest


def parse_query_field(value: Any):
    """Normalize the wire ``query`` field (string spec or object) to a
    :class:`repro.checker.safety.Query`; raises ValueError."""
    from repro.checker.safety import Query

    if isinstance(value, str):
        return Query.parse(value)
    if isinstance(value, dict):
        proc = value.get("proc")
        if not isinstance(proc, str) or not proc:
            raise ValueError("query object requires a non-empty string 'proc'")
        line = value.get("line")
        if line is not None and not isinstance(line, int):
            raise ValueError("query 'line' must be an integer or null")
        rule = value.get("rule")
        if rule is not None and not isinstance(rule, str):
            raise ValueError("query 'rule' must be a string or null")
        return Query(
            proc=proc,
            line=line if line else None,
            rule=rule or None,
        )
    raise ValueError(
        "query must be a 'PROC:LINE[:RULE]' string or an object with "
        "'proc'/'line'/'rule'"
    )


def execute_query(
    check_cache: CheckFindingCache,
    telemetry,
    request: Dict[str, Any],
    program,
    budget: Optional[float],
    runner: Callable[[QueryRequest], Dict[str, Any]],
    cache_id: Optional[str] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Answer a ``check`` request's ``query`` field.

    ``runner`` executes one :class:`QueryRequest` and returns either the
    raw answer JSON or a structured protocol error response (a dict with
    ``ok: false``), which is passed through unchanged.  ``extra`` is
    merged into the result (the gateway adds its ``tenant``).
    """
    from repro.checker.findings import SAFETY_RULE_IDS
    from repro.lang.cfg import build_icfg
    from repro.service.depindex import DependencyIndex

    started = time.perf_counter()
    try:
        query = parse_query_field(request.get("query"))
    except ValueError as exc:
        return P.error_response(request, P.E_BAD_REQUEST, str(exc), "check")
    domain = str(request.get("domain", "am"))
    k = int(request.get("k", 0))
    program_id = str(request.get("program_id", "default"))
    cache_id = cache_id if cache_id is not None else program_id

    icfg = build_icfg(program)
    if query.proc not in icfg.cfgs:
        return P.error_response(
            request,
            P.E_BAD_REQUEST,
            f"unknown procedure {query.proc!r}",
            "check",
        )
    if query.rule is not None and query.rule not in SAFETY_RULE_IDS:
        return P.error_response(
            request,
            P.E_BAD_REQUEST,
            f"unknown safety rule {query.rule!r}",
            "check",
        )
    index = DependencyIndex.build(icfg)
    keys = CheckFindingCache.keys_for(program, icfg, index)
    cone_key = keys[query.proc][1]
    query_key = (query.proc, query.line, query.rule, domain, k)

    answer = check_cache.query_get(cache_id, query_key, cone_key)
    mode = "warm" if answer is not None else "cold"
    if answer is None:
        payload = QueryRequest(
            program=program,
            proc=query.proc,
            line=query.line,
            rule=query.rule,
            domain=domain,
            k=k,
            max_seconds=budget,
        )
        out = runner(payload)
        if isinstance(out, dict) and out.get("ok") is False:
            return out  # structured pool-level error, pass through
        answer = out
        check_cache.query_put(cache_id, query_key, cone_key, answer)

    latency_ms = (time.perf_counter() - started) * 1000.0
    telemetry.count(f"query.{mode}")
    telemetry.observe("query.latency_ms", latency_ms)

    records = list(answer.get("findings") or [])
    for record in records:
        telemetry.count(f"checker.rule.{record['ruleId']}")
    ok = not any(
        r["verdict"] in (D.WARN, D.UNSAFE, D.POSSIBLY_NONTERMINATING, D.ERROR)
        for r in records
    )
    stats = {
        "mode": mode,
        "cone_size": answer.get("cone_size"),
        "proc_count": answer.get("proc_count"),
    }
    result = {
        "program_id": program_id,
        "domain": domain,
        "ok": ok,
        "query": answer,
        "mode": mode,
        "diagnostics": D.records_envelope(records, stats),
    }
    if extra:
        result.update(extra)
    wire_telemetry = {
        "mode": mode,
        "latency_ms": round(latency_ms, 3),
        "cone_size": answer.get("cone_size"),
        "proc_count": answer.get("proc_count"),
    }
    return P.response(request, "check", result, wire_telemetry)
