"""Incremental analysis sessions: re-analyze only the dirty cone.

A :class:`Session` wraps one evolving program.  The first
:meth:`Session.analyze` is a cold run (every requested root analyzed,
publishing cone-keyed entries to the persistent store); after
:meth:`Session.update` with an edited program, the next ``analyze``
re-dispatches only the roots whose cone fingerprint changed (the *dirty
cone* of :mod:`repro.service.depindex`), answering every clean root from
the session's retained outputs.

Correctness invariant (asserted corpus-wide in ``tests/test_service.py``):
a warm re-analysis produces summary hashes **identical** to a cold run of
the edited program.  The argument is the PR 3 determinism argument plus
cone purity: each root's output is a pure function of its cone, retained
outputs are only reused when the cone fingerprint is unchanged, and dirty
roots are re-analyzed by the same sequential engine a cold run uses.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.parallel.batch import AnalysisOutput, plan_requests, run_batch
from repro.parallel.pool import OK
from repro.service.depindex import DependencyIndex, DirtyCone


@dataclass
class SessionReport:
    """One (possibly incremental) analysis pass over the session program.

    ``outputs`` maps ``"proc.domain"`` task ids to
    :class:`~repro.parallel.batch.AnalysisOutput`; ``reused`` names the
    task ids answered from the session without dispatching work.
    ``incremental`` carries the dirty-cone accounting for telemetry.
    """

    outputs: Dict[str, AnalysisOutput]
    reused: List[str]
    analyzed: List[str]
    errors: Dict[str, Dict[str, Any]]  # task_id -> structured error
    incremental: Dict[str, Any]
    wall_time: float

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary_hashes(self) -> Dict[str, List[Tuple[str, str]]]:
        return {
            task_id: output.summary_hashes
            for task_id, output in self.outputs.items()
        }


class Session:
    """Dependency-tracked incremental analysis of one evolving program.

    ``store_dir=None`` creates a private temporary store that lives as
    long as the session; pass a directory to share warm state across
    sessions and daemon restarts.  ``jobs=0`` analyzes inline (no worker
    processes) — the deterministic baseline; ``jobs>=1`` dispatches dirty
    shards onto the fault-isolated :mod:`repro.parallel.pool`.
    """

    def __init__(
        self,
        program,
        store_dir: Optional[str] = None,
        jobs: int = 0,
        max_seconds: Optional[float] = None,
    ):
        from repro.core.api import Analyzer

        self._tmp = None
        if store_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-session-")
            store_dir = self._tmp.name
        self.store_dir = store_dir
        self.jobs = jobs
        self.max_seconds = max_seconds
        self.analyzer = Analyzer(program)
        self.index = DependencyIndex.build(self.analyzer.icfg)
        self.generation = 0
        self.last_delta: Optional[DirtyCone] = None
        # (task_id) -> (cone fingerprint at analysis time, output)
        self._outputs: Dict[str, Tuple[str, AnalysisOutput]] = {}

    @property
    def program(self):
        return self.analyzer.program

    # -- program evolution -------------------------------------------------------

    def update(self, program) -> DirtyCone:
        """Replace the session program; returns the dirty cone vs the old
        one.  Retained outputs are *not* discarded here — reuse is decided
        per-root at ``analyze`` time by comparing cone fingerprints, so a
        reverted edit re-hits both the retained outputs and the store."""
        from repro.core.api import Analyzer

        new_analyzer = Analyzer(program)
        new_index = DependencyIndex.build(new_analyzer.icfg)
        delta = self.index.diff(new_index)
        self.analyzer = new_analyzer
        self.index = new_index
        self.generation += 1
        self.last_delta = delta
        return delta

    def update_source(self, source: str) -> DirtyCone:
        from repro.lang.normalize import normalize_program
        from repro.lang.parser import parse_program
        from repro.lang.typecheck import typecheck_program

        return self.update(
            normalize_program(typecheck_program(parse_program(source)))
        )

    # -- analysis ----------------------------------------------------------------

    def analyze(
        self,
        procs: Optional[Sequence[str]] = None,
        domains: Sequence[str] = ("am",),
        k: int = 0,
        jobs: Optional[int] = None,
        max_seconds: Optional[float] = None,
        max_steps: Optional[int] = None,
    ) -> SessionReport:
        """Analyze the requested roots, reusing everything clean.

        A root+domain task is *reused* when the session holds an output
        for it whose recorded cone fingerprint equals the root's current
        one.  Everything else is planned callees-first and dispatched
        (cone-keyed store, so even freshly-dispatched clean-cone roots of
        a new session hit the store instead of recomputing)."""
        start = time.perf_counter()
        jobs = self.jobs if jobs is None else jobs
        max_seconds = self.max_seconds if max_seconds is None else max_seconds
        requests = plan_requests(
            self.analyzer,
            procs=procs,
            domains=tuple(domains),
            k=k,
            max_steps=max_steps,
            max_seconds=max_seconds,
            store_dir=self.store_dir,
            key_mode="cone",
        )
        outputs: Dict[str, AnalysisOutput] = {}
        errors: Dict[str, Dict[str, Any]] = {}
        reused: List[str] = []
        dispatch = []
        for request in requests:
            cone = self.index.cone_fingerprint(request.proc)
            held = self._outputs.get(request.task_id)
            if held is not None and held[0] == cone:
                outputs[request.task_id] = held[1]
                reused.append(request.task_id)
            else:
                dispatch.append(request)
        # Drop dependency edges onto reused tasks: they are not in this
        # batch, and the pool rejects unknown dependency ids.
        dispatched_ids = {request.task_id for request in dispatch}
        for request in dispatch:
            request.deps = tuple(
                dep for dep in request.deps if dep in dispatched_ids
            )
        report = None
        if dispatch:
            report = run_batch(dispatch, jobs=jobs)
            for outcome in report.outcomes:
                output = outcome.result
                if outcome.status == OK and isinstance(output, AnalysisOutput):
                    outputs[outcome.task_id] = output
                    cone = self.index.cone_fingerprint(output.proc)
                    self._outputs[outcome.task_id] = (cone, output)
                else:
                    errors[outcome.task_id] = {
                        "status": outcome.status,
                        "error": outcome.error,
                        "retries": outcome.retries,
                    }
                    # A budget-capped output still carries its partial
                    # summaries/diagnostics; surface but never retain it.
                    if isinstance(output, AnalysisOutput):
                        outputs[outcome.task_id] = output
        analyzed = [request.task_id for request in dispatch]
        sccs_total = {
            self.index.scc_of(request.proc) for request in requests
        }
        sccs_analyzed = {
            self.index.scc_of(request.proc) for request in dispatch
        }
        incremental = {
            "generation": self.generation,
            "roots": len(requests),
            "reused": len(reused),
            "analyzed": len(analyzed),
            "sccs_total": len(sccs_total),
            "sccs_analyzed": len(sccs_analyzed),
            "dirty_cone": sorted(
                {request.proc for request in dispatch}
            ),
            "store_dir": self.store_dir,
        }
        if self.last_delta is not None:
            incremental["edited"] = sorted(self.last_delta.changed)
        return SessionReport(
            outputs=outputs,
            reused=reused,
            analyzed=analyzed,
            errors=errors,
            incremental=incremental,
            wall_time=time.perf_counter() - start,
        )

    # -- maintenance -------------------------------------------------------------

    def flush(self) -> int:
        """Drop retained outputs (the persistent store is left intact);
        returns the number of dropped entries."""
        dropped = len(self._outputs)
        self._outputs.clear()
        return dropped

    def close(self) -> None:
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
