"""Warm per-procedure checker-finding cache, shared by both serving tiers.

The ``check`` verb caches findings per procedure under keys that track
exactly what each tier's findings depend on (PR 5/6 semantics):

- Tier-A lints are a pure function of one procedure's body, so they are
  cached under its body hash — *folded* with a line/declaration
  signature, because the normalized-CFG hashes deliberately ignore
  source lines and never-referenced locals while lint findings carry
  lines and the unused-local lint is about declarations;
- Tier-B safety and termination verdicts depend on the whole call cone
  (the engine analyzes callees transitively), so they are cached under
  the cone fingerprint — the same key the incremental analyzer trusts —
  plus the same line signature.

This class holds the key computation, the dirty/reused partition, and
the merge-and-answer bookkeeping.  It was factored out of the PR 4/5
thread server so the asyncio gateway reuses the identical invalidation
logic (one implementation, two front ends); it is thread-safe because
both front ends touch it from worker threads.
"""

from __future__ import annotations

import copy
import threading
from typing import Any, Dict, List, Optional, Tuple


class CheckFindingCache:
    """``program_id`` -> per-procedure cached findings, keyed per tier."""

    def __init__(self):
        self._lock = threading.Lock()
        # program_id -> {"config": (tier, domain, k),
        #                "procs": {proc: {"lint": (key, [records]),
        #                                 "safety": (key, [records], status),
        #                                 "termination": (key, [records], status)}},
        #                "queries": {(proc, line, rule, domain, k):
        #                            (cone key, answer JSON)}}
        self._caches: Dict[str, Dict[str, Any]] = {}

    @staticmethod
    def keys_for(program, icfg, index) -> Dict[str, Tuple[str, str]]:
        """proc -> (Tier-A key, Tier-B key) for cached checker findings."""
        from repro.engine.canon import stable_digest

        proc_lines = {p.name: p.line for p in program.procedures}
        keys: Dict[str, Tuple[str, str]] = {}
        for proc in index.bodies:
            cfg = icfg.cfg(proc)
            signature = (
                proc_lines.get(proc, 0),
                tuple(
                    (p.name, p.type, p.line)
                    for p in list(cfg.inputs) + list(cfg.outputs)
                    + list(cfg.locals)
                ),
                tuple(e.line for e in cfg.edges),
            )
            keys[proc] = (
                stable_digest(index.bodies[proc], signature),
                stable_digest(index.cone_fingerprint(proc), signature),
            )
        return keys

    def partition(
        self,
        program_id: str,
        config: Tuple[str, str, int],
        requested: List[str],
        keys: Dict[str, Tuple[str, str]],
        want_lint: bool,
        want_safety: bool,
        want_termination: bool,
    ) -> List[str]:
        """The dirty subset of ``requested`` (procedures whose cached
        findings are missing or keyed differently).  A config change
        (tier/domain/k) invalidates the whole program's cache."""
        with self._lock:
            cache = self._caches.setdefault(program_id, {})
            if cache.get("config") != config:
                cache.clear()
                cache["config"] = config
                cache["procs"] = {}
            cached: Dict[str, Dict[str, Any]] = cache["procs"]
            dirty: List[str] = []
            for proc in requested:
                entry = cached.get(proc, {})
                lint_ok = (not want_lint) or (
                    "lint" in entry and entry["lint"][0] == keys[proc][0]
                )
                safety_ok = (not want_safety) or (
                    "safety" in entry and entry["safety"][0] == keys[proc][1]
                )
                # Termination verdicts depend on the whole call cone
                # (callee summaries feed the recursion/loop checks), so
                # they share Tier B's cone-fingerprint key.
                termination_ok = (not want_termination) or (
                    "termination" in entry
                    and entry["termination"][0] == keys[proc][1]
                )
                if not (lint_ok and safety_ok and termination_ok):
                    dirty.append(proc)
        return dirty

    def merge_and_answer(
        self,
        program_id: str,
        requested: List[str],
        dirty: List[str],
        keys: Dict[str, Tuple[str, str]],
        fresh: Dict[str, Any],
        want_lint: bool,
        want_safety: bool,
        want_termination: bool,
    ) -> Tuple[List[Dict[str, Any]], Dict[str, str]]:
        """Fold ``fresh`` results into the cache, then answer every
        requested procedure from it; returns (sorted records,
        proc_status)."""
        records: List[Dict[str, Any]] = []
        proc_status: Dict[str, str] = {}
        with self._lock:
            cached = self._caches[program_id]["procs"]
            for proc in dirty:
                entry = cached.setdefault(proc, {})
                if want_lint:
                    entry["lint"] = (
                        keys[proc][0], fresh["lint"].get(proc, [])
                    )
                if want_safety:
                    entry["safety"] = (
                        keys[proc][1],
                        fresh["safety"].get(proc, []),
                        fresh["proc_status"].get(proc, "ok"),
                    )
                if want_termination:
                    entry["termination"] = (
                        keys[proc][1],
                        fresh["termination"].get(proc, []),
                        fresh["termination_status"].get(proc, "ok"),
                    )
            for proc in requested:
                entry = cached.get(proc, {})
                if want_lint and "lint" in entry:
                    records.extend(entry["lint"][1])
                if want_safety and "safety" in entry:
                    records.extend(entry["safety"][1])
                    if entry["safety"][2] != "ok":
                        proc_status[proc] = entry["safety"][2]
                if want_termination and "termination" in entry:
                    records.extend(entry["termination"][1])
                    if entry["termination"][2] != "ok":
                        proc_status[proc] = entry["termination"][2]
        records.sort(
            key=lambda r: (
                r.get("procedure") or "",
                r.get("line") or 0,
                r.get("ruleId") or "",
                r.get("verdict") or "",
                r.get("message") or "",
            )
        )
        return records, proc_status

    # -- demand-query answers --------------------------------------------------
    #
    # A query answer for (proc, line, rule, domain, k) is a pure function
    # of the proc's backward call cone, so it is cached under the same
    # cone-fingerprint key Tier-B findings use.  The query cache is keyed
    # independently of the check verb's (tier, domain, k) config -- a
    # query carries its own domain/k in its key -- but ``partition``'s
    # config-change clear wipes it along with everything else (it is only
    # a cache).

    def query_get(
        self,
        program_id: str,
        query_key: Tuple,
        cone_key: str,
    ) -> Optional[Dict[str, Any]]:
        """The cached answer, or None when missing or cone-stale."""
        with self._lock:
            cache = self._caches.get(program_id) or {}
            entry = (cache.get("queries") or {}).get(query_key)
            if entry is None or entry[0] != cone_key:
                return None
            return copy.deepcopy(entry[1])

    def query_put(
        self,
        program_id: str,
        query_key: Tuple,
        cone_key: str,
        answer: Dict[str, Any],
    ) -> None:
        with self._lock:
            cache = self._caches.setdefault(program_id, {})
            cache.setdefault("queries", {})[query_key] = (
                cone_key,
                copy.deepcopy(answer),
            )

    def flush(self, program_id: Any = None) -> int:
        """Drop cached findings and query answers (one program or all);
        returns the count of dropped entries."""

        def _size(cache: Dict[str, Any]) -> int:
            return len(cache.get("procs") or {}) + len(cache.get("queries") or {})

        dropped = 0
        with self._lock:
            if program_id is None:
                for cache in self._caches.values():
                    dropped += _size(cache)
                self._caches.clear()
            elif program_id in self._caches:
                dropped += _size(self._caches.pop(program_id))
        return dropped
