"""Structured, SARIF-like diagnostics for analysis verdicts.

One record shape for every verdict the toolchain can produce — assertion
checks (:mod:`repro.core.assertions`), engine budget diagnostics,
equivalence results, and service-level failures (worker crashes, queue
rejections) — so clients consume a single JSON schema:

.. code-block:: json

    {"ruleId": "assertion", "level": "error", "verdict": "fail",
     "procedure": "f", "line": 4, "message": "assert r > n + 1",
     "witness": {"formula": "r > n + 1", "heap_count": 2}}

Rule ids are **stable**: they name the check class, never run-specific
data, so dashboards and CI assertions can key on them.  The envelope
(:func:`run_envelope`) groups records with tool/version metadata, loosely
following the SARIF ``runs[].results[]`` layout without claiming the full
standard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

# Stable rule ids (the check class, not the outcome).
RULE_ASSERTION = "assertion"
RULE_BUDGET = "budget"  # suffixed with the budget kind: "budget.wall_clock"
RULE_EQUIVALENCE = "equivalence"
RULE_WORKER_CRASH = "worker.crashed"
RULE_WORKER_FAILED = "worker.failed"
# Admission-control rejection, shared by the single-process daemon
# (global bounded queue) and the multi-tenant gateway (per-tenant
# queues): clients key retry logic on one rule id for both tiers.  The
# record's witness carries a ``retry_after_ms`` hint.
RULE_QUEUE_SHED = "queue.shed"
RULE_QUEUE_REJECTED = RULE_QUEUE_SHED  # pre-gateway alias, kept importable
# Gateway-tier verdicts.
RULE_GATEWAY_DEADLINE = "gateway.deadline"  # request deadline expired
RULE_GATEWAY_SESSION_EVICTED = "gateway.session-evicted"  # LRU bound hit
RULE_GATEWAY_DRAINING = "gateway.draining"  # refused during shutdown
# Frontend failures (parse / typecheck), shared with the checker CLI so a
# type error is one more diagnostics record instead of a bare traceback.
RULE_PARSE_ERROR = "frontend.parse-error"
RULE_TYPE_ERROR = "frontend.type-error"

# Frozen inventory of the service/gateway-tier rule ids (the checker has
# its own in repro.checker.findings.ALL_RULE_IDS); the ``budget.`` family
# is suffixed by kind at runtime, so it appears here as its prefix.
SERVICE_RULE_IDS = (
    RULE_ASSERTION,
    RULE_BUDGET,
    RULE_EQUIVALENCE,
    RULE_WORKER_CRASH,
    RULE_WORKER_FAILED,
    RULE_QUEUE_SHED,
    RULE_GATEWAY_DEADLINE,
    RULE_GATEWAY_SESSION_EVICTED,
    RULE_GATEWAY_DRAINING,
    RULE_PARSE_ERROR,
    RULE_TYPE_ERROR,
)

# Verdicts.
PASS = "pass"
FAIL = "fail"
ERROR = "error"  # the check itself could not complete
INCONCLUSIVE = "inconclusive"  # partial results (budget hit)
# Checker verdicts (repro.checker): Tier-A lints warn; Tier-B safety
# obligations are three-valued.
WARN = "warn"
SAFE = "safe"
UNSAFE = "unsafe"
UNKNOWN = "unknown"
# Termination verdicts (repro.termination): a proof, positive evidence of
# a non-decreasing loop/recursion measure, or an honest "unknown".
TERMINATING = "terminating"
POSSIBLY_NONTERMINATING = "possibly-nonterminating"

_LEVEL_OF = {
    PASS: "note",
    FAIL: "error",
    ERROR: "error",
    INCONCLUSIVE: "warning",
    WARN: "warning",
    SAFE: "note",
    UNSAFE: "error",
    UNKNOWN: "warning",
    TERMINATING: "note",
    POSSIBLY_NONTERMINATING: "error",
}

SCHEMA = "repro-diagnostics/1"


@dataclass
class DiagnosticRecord:
    """One verdict, SARIF-result-shaped."""

    rule_id: str
    verdict: str  # PASS | FAIL | ERROR | INCONCLUSIVE
    message: str
    procedure: Optional[str] = None
    line: Optional[int] = None
    witness: Dict[str, Any] = field(default_factory=dict)

    @property
    def level(self) -> str:
        return _LEVEL_OF.get(self.verdict, "warning")

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "ruleId": self.rule_id,
            "level": self.level,
            "verdict": self.verdict,
            "message": self.message,
        }
        if self.procedure is not None:
            out["procedure"] = self.procedure
        if self.line is not None:
            out["line"] = self.line
        if self.witness:
            out["witness"] = self.witness
        return out


def from_assertions(outcomes) -> List[DiagnosticRecord]:
    """Encode :class:`~repro.core.assertions.AssertionOutcome` records.

    The engine re-evaluates an assert edge on every record iteration, so
    the checker's outcome list repeats per source assertion; records are
    aggregated by ``(procedure, line, formula)`` with a *fail-any*
    verdict (an assertion that failed on any visited abstract state is
    not verified).  Order is stable: by procedure, then line, then
    formula text.
    """
    grouped: Dict[tuple, Dict[str, Any]] = {}
    for outcome in outcomes:
        key = (outcome.proc or "", outcome.line or 0, outcome.formula)
        slot = grouped.setdefault(
            key, {"verified": True, "checks": 0, "heaps": 0}
        )
        slot["verified"] = slot["verified"] and outcome.verified
        slot["checks"] += 1
        slot["heaps"] = max(slot["heaps"], outcome.heap_count)
    records = []
    for (proc, line, formula) in sorted(grouped):
        slot = grouped[(proc, line, formula)]
        verdict = PASS if slot["verified"] else FAIL
        records.append(
            DiagnosticRecord(
                rule_id=RULE_ASSERTION,
                verdict=verdict,
                message=f"assert {formula}",
                procedure=proc or None,
                line=line or None,
                witness={
                    "formula": formula,
                    "checks": slot["checks"],
                    "heap_count": slot["heaps"],
                },
            )
        )
    return records


def from_engine_diagnostics(diagnostics, proc: Optional[str] = None) -> List[DiagnosticRecord]:
    """Encode engine budget diagnostics (dicts or ``Diagnostic`` objects)."""
    records = []
    for diag in diagnostics:
        if isinstance(diag, dict):
            kind = diag.get("kind", "unknown")
            message = diag.get("message", "")
            dproc = diag.get("proc") or proc
            limit = diag.get("limit")
            steps = diag.get("steps")
        else:
            kind, message = diag.kind, diag.message
            dproc = diag.proc or proc
            limit, steps = diag.limit, diag.steps
        records.append(
            DiagnosticRecord(
                rule_id=f"{RULE_BUDGET}.{kind}",
                verdict=INCONCLUSIVE,
                message=message,
                procedure=dproc,
                witness={k: v for k, v in (("limit", limit), ("steps", steps)) if v is not None},
            )
        )
    return records


def from_equivalence(result) -> DiagnosticRecord:
    """Encode an :class:`~repro.core.equivalence.EquivalenceResult`."""
    verdict = PASS if result.equivalent else FAIL
    return DiagnosticRecord(
        rule_id=RULE_EQUIVALENCE,
        verdict=verdict,
        message=(
            f"{result.proc1} and {result.proc2} "
            + ("proved equivalent" if result.equivalent else "not proved equivalent")
            + f": {result.detail}"
        ),
        procedure=result.proc1,
        witness={"proc1": result.proc1, "proc2": result.proc2, "detail": result.detail},
    )


def from_task_error(status: str, error: Optional[Dict[str, Any]], proc: Optional[str] = None) -> DiagnosticRecord:
    """Encode a pool-level failure (crashed / failed / hard-killed task)."""
    error = error or {}
    if status == "crashed":
        rule = RULE_WORKER_CRASH
    elif status == "budget":
        rule = f"{RULE_BUDGET}.{error.get('kind', 'wall_clock')}"
        return DiagnosticRecord(
            rule_id=rule,
            verdict=INCONCLUSIVE,
            message=error.get("message", "budget exceeded"),
            procedure=proc,
            witness={k: error[k] for k in ("limit", "steps") if error.get(k) is not None},
        )
    else:
        rule = RULE_WORKER_FAILED
    return DiagnosticRecord(
        rule_id=rule,
        verdict=ERROR,
        message=error.get("message", f"task {status}"),
        procedure=proc,
        witness={k: v for k, v in error.items() if k not in ("message", "traceback")},
    )


def from_frontend_error(exc, path: Optional[str] = None) -> DiagnosticRecord:
    """Encode a parse/typecheck failure as a diagnostics record.

    Both :class:`repro.lang.parser.ParseError` and
    :class:`repro.lang.typecheck.TypeError_` carry a source ``line``;
    the record's rule id distinguishes the phase.
    """
    from repro.lang.parser import ParseError

    rule = RULE_PARSE_ERROR if isinstance(exc, ParseError) else RULE_TYPE_ERROR
    line = getattr(exc, "line", None) or None
    witness: Dict[str, Any] = {"phase": "parse" if rule == RULE_PARSE_ERROR else "typecheck"}
    if path:
        witness["path"] = path
    return DiagnosticRecord(
        rule_id=rule,
        verdict=ERROR,
        message=getattr(exc, "message", None) or str(exc),
        line=line,
        witness=witness,
    )


def run_envelope(
    records: Iterable[DiagnosticRecord],
    stats: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The SARIF-like envelope: one run, tool metadata, verdict counts."""
    return records_envelope([r.to_json() for r in records], stats)


def records_envelope(
    results: List[Dict[str, Any]],
    stats: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """:func:`run_envelope` over already-serialized result records
    (the daemon's finding cache stores JSON records, not live objects)."""
    counts: Dict[str, int] = {}
    for result in results:
        counts[result["verdict"]] = counts.get(result["verdict"], 0) + 1
    run: Dict[str, Any] = {
        "tool": {"name": "repro", "rules_schema": SCHEMA},
        "results": results,
        "counts": counts,
    }
    if stats:
        run["stats"] = stats
    return {"schema": SCHEMA, "runs": [run]}


def envelope_records(envelope: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Flatten an envelope back to its result records (client helper).

    Accepts either a full envelope (``{"runs": [{"results": ...}]}``) or
    a bare single-run result (``{"results": ...}``), which is what the
    assert/equivalence jobs return.
    """
    out: List[Dict[str, Any]] = []
    for run in envelope.get("runs", [envelope]):
        out.extend(run.get("results", []))
    return out
