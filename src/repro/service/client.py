"""Client for the analysis daemon: one socket, NDJSON request/response.

.. code-block:: python

    from repro.service.client import ServiceClient

    with ServiceClient.connect_tcp("127.0.0.1", 7341) as client:
        response = client.analyze(source, domains=["am"])
        print(response["result"]["incremental"])

Requests are synchronous: :meth:`ServiceClient.request` sends one line
and blocks for the matching reply (the server answers in order per
connection).  Transport problems raise :class:`ServiceError`; protocol
errors come back as ``ok=false`` responses, which the convenience
wrappers return as-is (callers inspect ``response["ok"]``).
"""

from __future__ import annotations

import itertools
import json
import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.service import protocol as P

Address = Union[str, Tuple[str, int]]  # unix path | (host, port)


class ServiceError(Exception):
    """Transport-level failure talking to the daemon."""


def parse_address(spec: str) -> Address:
    """``host:port`` → TCP tuple; anything else is a Unix socket path."""
    if ":" in spec and not spec.startswith("/") and not spec.startswith("."):
        host, _, port = spec.rpartition(":")
        try:
            return (host or "127.0.0.1", int(port))
        except ValueError:
            pass
    return spec


class ServiceClient:
    """One connection to a running analysis daemon."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._fh = sock.makefile("rb")
        self._ids = itertools.count(1)

    # -- constructors ------------------------------------------------------------

    @staticmethod
    def connect(address: Address, timeout: Optional[float] = 30.0) -> "ServiceClient":
        if isinstance(address, tuple):
            sock = socket.create_connection(address, timeout=timeout)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(address)
        return ServiceClient(sock)

    @staticmethod
    def connect_tcp(host: str, port: int, timeout: Optional[float] = 30.0) -> "ServiceClient":
        return ServiceClient.connect((host, port), timeout=timeout)

    @staticmethod
    def wait_for_server(
        address: Address, timeout: float = 10.0, interval: float = 0.1
    ) -> "ServiceClient":
        """Retry connecting until the daemon answers a ping (CI helper)."""
        deadline = time.monotonic() + timeout
        last: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                client = ServiceClient.connect(address, timeout=timeout)
                client.ping()
                return client
            except (OSError, ServiceError) as exc:
                last = exc
                time.sleep(interval)
        raise ServiceError(f"no server at {address!r} after {timeout}s: {last}")

    # -- request/response --------------------------------------------------------

    def request(self, verb: str, **fields: Any) -> Dict[str, Any]:
        message = {"verb": verb, "id": next(self._ids)}
        message.update(fields)
        try:
            self._sock.sendall(P.encode(message))
            line = self._fh.readline(P.MAX_LINE_BYTES + 1)
        except OSError as exc:
            raise ServiceError(f"transport failure: {exc}")
        if not line:
            raise ServiceError("server closed the connection")
        try:
            return json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"unparseable response: {exc}")

    # -- verbs -------------------------------------------------------------------

    @staticmethod
    def _tenant_fields(
        fields: Dict[str, Any],
        tenant: Optional[str],
        deadline_ms: Optional[int],
    ) -> Dict[str, Any]:
        """Gateway-tier extras; the single-process daemon ignores both."""
        if tenant is not None:
            fields["tenant"] = tenant
        if deadline_ms is not None:
            fields["deadline_ms"] = int(deadline_ms)
        return fields

    def ping(self) -> Dict[str, Any]:
        response = self.request("ping")
        if not response.get("ok"):
            raise ServiceError(f"ping failed: {response}")
        return response

    def analyze(
        self,
        source: str,
        procs: Optional[Sequence[str]] = None,
        domains: Sequence[str] = ("am",),
        k: int = 0,
        program_id: str = "default",
        max_seconds: Optional[float] = None,
        tenant: Optional[str] = None,
        deadline_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        fields: Dict[str, Any] = {
            "source": source,
            "domains": list(domains),
            "k": k,
            "program_id": program_id,
        }
        if procs is not None:
            fields["procs"] = list(procs)
        if max_seconds is not None:
            fields["max_seconds"] = max_seconds
        self._tenant_fields(fields, tenant, deadline_ms)
        return self.request("analyze", **fields)

    def check_asserts(
        self,
        source: str,
        procs: Optional[Sequence[str]] = None,
        domain: str = "au",
        max_seconds: Optional[float] = None,
        tenant: Optional[str] = None,
        deadline_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        fields: Dict[str, Any] = {"source": source, "domain": domain}
        if procs is not None:
            fields["procs"] = list(procs)
        if max_seconds is not None:
            fields["max_seconds"] = max_seconds
        self._tenant_fields(fields, tenant, deadline_ms)
        return self.request("assert", **fields)

    def check(
        self,
        source: str,
        procs: Optional[Sequence[str]] = None,
        tier: str = "all",
        domain: str = "am",
        k: int = 0,
        program_id: str = "default",
        max_seconds: Optional[float] = None,
        tenant: Optional[str] = None,
        deadline_ms: Optional[int] = None,
        query: Optional[Any] = None,
    ) -> Dict[str, Any]:
        """Run the two-tier checker; warm runs reuse per-proc findings.

        ``query`` switches to the demand path: a ``"PROC:LINE[:RULE]"``
        string (line 0 = whole procedure) or a ``{"proc", "line",
        "rule"}`` object answers that one obligation via backward-cone
        analysis, with the answer cached server-side under the
        procedure's cone-fingerprint key (warm queries skip analysis
        entirely)."""
        fields: Dict[str, Any] = {
            "source": source,
            "tier": tier,
            "domain": domain,
            "k": k,
            "program_id": program_id,
        }
        if procs is not None:
            fields["procs"] = list(procs)
        if max_seconds is not None:
            fields["max_seconds"] = max_seconds
        if query is not None:
            fields["query"] = query
        self._tenant_fields(fields, tenant, deadline_ms)
        return self.request("check", **fields)

    def equivalence(
        self,
        source: str,
        proc1: str,
        proc2: str,
        max_seconds: Optional[float] = None,
    ) -> Dict[str, Any]:
        fields: Dict[str, Any] = {
            "source": source, "proc1": proc1, "proc2": proc2
        }
        if max_seconds is not None:
            fields["max_seconds"] = max_seconds
        return self.request("equivalence", **fields)

    def status(self) -> Dict[str, Any]:
        return self.request("status")

    def metrics(self) -> str:
        """The server's Prometheus exposition text (daemon or gateway)."""
        response = self.request("metrics")
        if not response.get("ok"):
            raise ServiceError(f"metrics failed: {response}")
        return response["result"]["text"]

    def flush(
        self,
        program_id: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        fields: Dict[str, Any] = {}
        if program_id is not None:
            fields["program_id"] = program_id
        if tenant is not None:
            fields["tenant"] = tenant
        return self.request("flush", **fields)

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        try:
            self._fh.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
