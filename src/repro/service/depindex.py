"""Content-hash dependency index with SCC-granular invalidation.

The summary-based analysis of the paper is naturally incremental: a root
procedure's analysis run is a pure function of the procedures *reachable*
from it in the call graph (its **cone**) — nothing else.  This module
makes that dependency structure explicit and hashable:

- every procedure gets a **body hash**: a stable digest of its normalized
  CFG (statement alphabet of §2, widening points included), so textual
  noise that normalizes away does not invalidate anything;
- every procedure gets a **cone fingerprint**: a digest of the body
  hashes of its reachable set (itself included).  Editing procedure ``p``
  changes exactly the cone fingerprints of the procedures that can reach
  ``p`` — the *dirty cone* — and provably nothing below or beside it;
- cones are computed per call-graph SCC (mutually recursive procedures
  share a cone), so invalidation is SCC-granular, matching the shard
  unit of :mod:`repro.parallel.shard`.

:class:`ConeKeyedStore` applies the fingerprints to the PR 3 persistent
store: the engine keys a root run by the *whole-program* fingerprint
(``icfg_fingerprint``), which any edit invalidates wholesale.  Rewriting
that component to the root's cone fingerprint keeps every clean cone's
entry valid across edits, while dirty cones miss — which is exactly the
minimal re-analysis set.  Soundness of the rewrite: the cached payload
(the run's full record table) depends only on the root's cone, which the
cone fingerprint captures in full.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.engine.canon import stable_digest
from repro.engine.scheduler import tarjan_scc


def body_hash(cfg) -> str:
    """Stable digest of one procedure's normalized body (its CFG)."""
    return stable_digest(cfg.proc_name, str(cfg), tuple(sorted(cfg.widen_points)))


@dataclass(frozen=True)
class DirtyCone:
    """The diff of two dependency indexes over the same procedure space.

    ``changed`` are procedures whose own body hash differs; ``dirty`` is
    the upward closure (everything whose cone fingerprint changed —
    i.e. everything that can reach a changed procedure); ``clean`` is the
    rest, whose summaries remain byte-valid.
    """

    changed: FrozenSet[str]
    dirty: FrozenSet[str]
    clean: FrozenSet[str]
    added: FrozenSet[str]
    removed: FrozenSet[str]

    @property
    def size(self) -> int:
        return len(self.dirty)

    def describe(self) -> str:
        return (
            f"dirty cone: {len(self.dirty)}/{len(self.dirty) + len(self.clean)}"
            f" proc(s) (edited: {', '.join(sorted(self.changed)) or 'none'})"
        )


class DependencyIndex:
    """Per-procedure body hashes, SCC structure, and cone fingerprints."""

    def __init__(
        self,
        bodies: Dict[str, str],
        call_graph: Dict[str, Set[str]],
    ):
        self.bodies = dict(bodies)
        self.call_graph = {p: set(cs) for p, cs in call_graph.items()}
        self._cones: Dict[str, str] = {}
        self._scc_of: Dict[str, int] = {}
        self._sccs: List[Tuple[str, ...]] = []
        self._compute()

    @staticmethod
    def build(icfg) -> "DependencyIndex":
        bodies = {name: body_hash(icfg.cfg(name)) for name in icfg.cfgs}
        return DependencyIndex(bodies, icfg.call_graph())

    # -- cone fingerprints -------------------------------------------------------

    def _compute(self) -> None:
        """Reachable sets per SCC (members plus dependency-SCC closure),
        then one cone fingerprint per procedure."""
        components = tarjan_scc(self.call_graph)  # callees-first
        reach: List[Set[str]] = []
        scc_of: Dict[str, int] = {}
        for rank, component in enumerate(components):
            for proc in component:
                scc_of[proc] = rank
        for rank, component in enumerate(components):
            cone: Set[str] = set(component)
            for proc in component:
                for callee in self.call_graph.get(proc, ()):
                    dep = scc_of.get(callee)
                    if dep is not None and dep != rank:
                        cone |= reach[dep]
            reach.append(cone)
        self._sccs = [tuple(sorted(c)) for c in components]
        self._scc_of = scc_of
        for proc, rank in scc_of.items():
            self._cones[proc] = stable_digest(
                tuple(sorted((q, self.bodies[q]) for q in reach[rank]))
            )

    def cone_fingerprint(self, proc: str) -> str:
        return self._cones[proc]

    def cone_fingerprints(self) -> Dict[str, str]:
        return dict(self._cones)

    def scc_of(self, proc: str) -> Tuple[str, ...]:
        return self._sccs[self._scc_of[proc]]

    def scc_count(self) -> int:
        return len(self._sccs)

    # -- diffing -----------------------------------------------------------------

    def diff(self, new: "DependencyIndex") -> DirtyCone:
        """The dirty cone of replacing this index's program with ``new``'s.

        Added procedures are dirty by definition (no prior summary);
        removed procedures appear only in ``removed``.  A procedure whose
        body is unchanged but whose cone fingerprint differs (a callee
        changed underneath it) is dirty but not ``changed``.
        """
        old_procs = set(self.bodies)
        new_procs = set(new.bodies)
        shared = old_procs & new_procs
        changed = frozenset(
            p for p in shared if self.bodies[p] != new.bodies[p]
        )
        dirty = frozenset(
            p
            for p in shared
            if self._cones[p] != new._cones[p]
        ) | frozenset(new_procs - old_procs)
        return DirtyCone(
            changed=changed,
            dirty=dirty,
            clean=frozenset(shared - dirty),
            added=frozenset(new_procs - old_procs),
            removed=frozenset(old_procs - new_procs),
        )

    def describe(self) -> str:
        lines = [f"dependency index: {len(self.bodies)} proc(s), {len(self._sccs)} SCC(s)"]
        for scc in self._sccs:
            cone = self._cones[scc[0]][:12]
            lines.append(f"  {{{','.join(scc)}}} cone={cone}")
        return "\n".join(lines)


class ConeKeyedStore:
    """Wrap a summary store, rewriting engine cache keys to cone keys.

    The engine's run-level cache key is ``(program_fp, root, domain, k,
    hook_tag, assume_tag)``.  This wrapper replaces ``program_fp`` with
    the root's cone fingerprint before delegating, so entries survive
    edits outside the root's cone.  Everything else (atomicity, schema
    fingerprints, accounting) is the wrapped store's.
    """

    def __init__(self, store, cone_fingerprints: Dict[str, str]):
        self.store = store
        self.cones = cone_fingerprints

    def _rewrite(self, key):
        if isinstance(key, tuple) and len(key) >= 2 and key[1] in self.cones:
            return (self.cones[key[1]],) + tuple(key[1:])
        return key

    def get(self, key) -> Optional[Any]:
        return self.store.get(self._rewrite(key))

    def put(self, key, payload) -> None:
        self.store.put(self._rewrite(key), payload)

    def __contains__(self, key) -> bool:
        return self._rewrite(key) in self.store

    def __len__(self) -> int:
        return len(self.store)

    def stats(self) -> Dict[str, Any]:
        return self.store.stats()
