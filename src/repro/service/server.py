"""The long-running analysis daemon.

Architecture (stdlib only)::

    listener (accept loop, one thread)
        └─ connection threads: read NDJSON lines
             ├─ control verbs (status/flush/shutdown/ping): answered inline
             └─ job verbs (analyze/assert/equivalence): bounded queue
                   └─ dispatcher thread: executes one job at a time
                        ├─ analyze  -> incremental Session -> parallel pool
                        └─ assert / equivalence -> one pool worker each

The bounded queue is the backpressure mechanism: when ``queue_limit``
jobs are pending, new job requests are answered immediately with a
``queue_full`` error instead of stacking unbounded work.  Every job
reply carries per-request telemetry — queue wait, execution wall time,
dirty-cone size and store hit counters for analyze — and the server
aggregates counters/gauges into a :class:`~repro.engine.telemetry.
Telemetry` readable via ``status``.

Fault containment: jobs run in worker *processes* (the PR 3 pool), so a
SIGKILLed worker or a hard budget kill produces a structured error
diagnostic on that one request; the daemon itself never dies with a
request.  With ``jobs=0`` jobs run inline in the dispatcher thread
(deterministic test mode), guarded by a catch-all that converts
exceptions into ``internal`` error responses.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine.telemetry import Telemetry
from repro.service import diagnostics as D
from repro.service import protocol as P
from repro.service.checkcache import CheckFindingCache
from repro.service.jobs import (
    AssertRequest,
    CheckRequest,
    EquivalenceRequest,
    run_assert_request,
    run_check_request,
    run_equivalence_request,
)
from repro.service.session import Session


@dataclass
class ServerConfig:
    """Daemon knobs; ``socket_path`` (Unix) wins over host/port (TCP)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off server.address
    socket_path: Optional[str] = None
    jobs: int = 1  # worker processes per job; 0 = inline (test mode)
    store_dir: Optional[str] = None  # shared persistent summary store
    queue_limit: int = 16
    default_max_seconds: Optional[float] = None
    hard_grace: float = 10.0


@dataclass
class _Job:
    request: Dict[str, Any]
    verb: str
    reply: Callable[[Dict[str, Any]], None]
    enqueued: float = field(default_factory=time.monotonic)


class AnalysisServer:
    """One daemon instance: sessions, queue, dispatcher, listener."""

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self.sessions: Dict[str, Session] = {}
        self._sessions_lock = threading.Lock()
        # Warm per-procedure checker findings (shared implementation
        # with the gateway; see repro.service.checkcache).
        self._check_cache = CheckFindingCache()
        self.queue: "queue.Queue[Optional[_Job]]" = queue.Queue(
            maxsize=max(1, self.config.queue_limit)
        )
        self.telemetry = Telemetry()
        self.started = time.monotonic()
        self.shutting_down = threading.Event()
        self.stopped = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self.address: Optional[Tuple[str, Any]] = None  # ("tcp",(h,p)) | ("unix",path)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Bind, listen, and run accept + dispatcher threads (non-blocking)."""
        if self.config.socket_path is not None:
            path = self.config.socket_path
            try:
                os.unlink(path)
            except OSError:
                pass
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(path)
            self.address = ("unix", path)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.config.host, self.config.port))
            self.address = ("tcp", sock.getsockname())
        sock.listen(32)
        sock.settimeout(0.25)  # poll the shutdown flag between accepts
        self._listener = sock
        dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-dispatcher", daemon=True
        )
        acceptor = threading.Thread(
            target=self._accept_loop, name="repro-acceptor", daemon=True
        )
        self._threads = [dispatcher, acceptor]
        dispatcher.start()
        acceptor.start()

    def serve_forever(self) -> None:
        """``start()`` then block until a ``shutdown`` request lands."""
        if self._listener is None:
            self.start()
        self.stopped.wait()

    def stop(self) -> None:
        """Graceful stop: refuse new jobs, drain the queue, close up."""
        self.shutting_down.set()
        self._wake_dispatcher()
        for thread in self._threads:
            thread.join(timeout=30.0)
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self.address is not None and self.address[0] == "unix":
            try:
                os.unlink(self.address[1])
            except OSError:
                pass
        with self._sessions_lock:
            for session in self.sessions.values():
                session.close()
            self.sessions.clear()
        self.stopped.set()

    def _wake_dispatcher(self) -> None:
        """Nudge the dispatcher out of a blocking get during shutdown.
        A full queue needs no nudge — the dispatcher re-checks the flag
        after every job it drains."""
        try:
            self.queue.put_nowait(None)
        except queue.Full:
            pass

    # -- listener ----------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self.shutting_down.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        write_lock = threading.Lock()

        def reply(message: Dict[str, Any]) -> None:
            try:
                with write_lock:
                    conn.sendall(P.encode(message))
            except OSError:
                pass  # client went away; the job result is dropped

        fh = conn.makefile("rb")
        try:
            while True:
                line = fh.readline(P.MAX_LINE_BYTES + 1)
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = P.decode_line(line)
                    verb = P.validate_request(request)
                except P.ProtocolError as exc:
                    self.telemetry.count("requests.bad")
                    reply(P.error_response(None, exc.kind, str(exc)))
                    continue
                self.telemetry.count(f"requests.{verb}")
                if verb in P.CONTROL_VERBS:
                    reply(self._control(request, verb))
                    if verb == "shutdown":
                        break
                else:
                    self._enqueue(request, verb, reply)
        finally:
            try:
                fh.close()
                conn.close()
            except OSError:
                pass

    # -- queueing ----------------------------------------------------------------

    def _enqueue(
        self,
        request: Dict[str, Any],
        verb: str,
        reply: Callable[[Dict[str, Any]], None],
    ) -> None:
        if self.shutting_down.is_set():
            reply(
                P.error_response(
                    request, P.E_SHUTTING_DOWN, "server is shutting down", verb
                )
            )
            return
        job = _Job(request=request, verb=verb, reply=reply)
        try:
            self.queue.put_nowait(job)
        except queue.Full:
            self.telemetry.count("requests.shed")
            reply(
                P.shed_response(
                    request,
                    f"request queue full ({self.config.queue_limit} pending)",
                    retry_after_ms=self._retry_after_ms(),
                    verb=verb,
                    kind=P.E_QUEUE_FULL,
                )
            )
            return
        self.telemetry.gauge("queue.depth", self.queue.qsize())

    def _retry_after_ms(self) -> int:
        """Backoff hint for shed requests: the time to drain the queue at
        the recent median execution latency (clamped to [100ms, 60s])."""
        exec_p50 = self.telemetry.percentile("request.exec_s", 50.0) or 1.0
        estimate = (self.queue.qsize() + 1) * exec_p50 * 1000.0
        return int(min(60_000.0, max(100.0, estimate)))

    def _dispatch_loop(self) -> None:
        while True:
            job = self.queue.get()
            if job is None:
                if self.shutting_down.is_set() and self.queue.empty():
                    break
                continue
            queue_wait = time.monotonic() - job.enqueued
            start = time.monotonic()
            try:
                message = self._execute(job)
            except Exception as exc:  # never let a job kill the dispatcher
                self.telemetry.count("requests.internal_error")
                message = P.error_response(
                    job.request,
                    P.E_INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                    job.verb,
                )
            telemetry = message.setdefault("telemetry", {})
            exec_s = time.monotonic() - start
            telemetry["queue_wait_s"] = round(queue_wait, 6)
            telemetry["exec_s"] = round(exec_s, 6)
            self.telemetry.gauge("queue.wait_s", round(queue_wait, 6))
            self.telemetry.observe("request.queue_wait_s", queue_wait)
            self.telemetry.observe("request.exec_s", exec_s)
            job.reply(message)
            if self.shutting_down.is_set() and self.queue.empty():
                break

    # -- control verbs -----------------------------------------------------------

    def _control(self, request: Dict[str, Any], verb: str) -> Dict[str, Any]:
        if verb == "ping":
            return P.response(request, verb, {"protocol": P.PROTOCOL_VERSION})
        if verb == "status":
            with self._sessions_lock:
                sessions = {
                    name: {
                        "procs": len(session.index.bodies),
                        "generation": session.generation,
                        "retained": len(session._outputs),
                        "store_dir": session.store_dir,
                    }
                    for name, session in self.sessions.items()
                }
            return P.response(
                request,
                verb,
                {
                    "protocol": P.PROTOCOL_VERSION,
                    "uptime_s": round(time.monotonic() - self.started, 3),
                    "queue_depth": self.queue.qsize(),
                    "queue_limit": self.config.queue_limit,
                    "jobs": self.config.jobs,
                    "sessions": sessions,
                    "telemetry": self.telemetry.report(),
                },
            )
        if verb == "flush":
            program_id = request.get("program_id")
            dropped = 0
            with self._sessions_lock:
                targets = (
                    [self.sessions[program_id]]
                    if program_id in self.sessions
                    else list(self.sessions.values())
                    if program_id is None
                    else []
                )
                for session in targets:
                    dropped += session.flush()
            dropped += self._check_cache.flush(program_id)
            return P.response(request, verb, {"dropped": dropped})
        if verb == "metrics":
            from repro.gateway.metrics import render_prometheus

            self.telemetry.gauge("queue.depth", self.queue.qsize())
            return P.response(
                request,
                verb,
                {"text": render_prometheus(self.telemetry)},
            )
        if verb == "shutdown":
            self.shutting_down.set()
            self._wake_dispatcher()
            # Finish the reply first; a helper thread completes the stop.
            threading.Thread(target=self.stop, daemon=True).start()
            return P.response(request, verb, {"stopping": True})
        raise P.ProtocolError(f"unhandled control verb {verb!r}")

    # -- job verbs ---------------------------------------------------------------

    def _parse(self, source: str):
        from repro.lang.normalize import normalize_program
        from repro.lang.parser import parse_program
        from repro.lang.typecheck import typecheck_program

        return normalize_program(typecheck_program(parse_program(source)))

    def _session_for(self, program_id: str, program) -> Tuple[Session, Optional[Any]]:
        """The session for ``program_id``, updated to ``program`` when the
        source changed; returns (session, dirty-cone delta or None)."""
        from repro.engine.canon import icfg_fingerprint
        from repro.lang.cfg import build_icfg

        with self._sessions_lock:
            session = self.sessions.get(program_id)
            if session is None:
                session = Session(
                    program,
                    store_dir=self.config.store_dir,
                    jobs=self.config.jobs,
                    max_seconds=self.config.default_max_seconds,
                )
                self.sessions[program_id] = session
                return session, None
        if icfg_fingerprint(session.analyzer.icfg) == icfg_fingerprint(
            build_icfg(program)
        ):
            return session, None
        return session, session.update(program)

    def _execute(self, job: _Job) -> Dict[str, Any]:
        request, verb = job.request, job.verb
        try:
            program = self._parse(request["source"])
        except Exception as exc:
            self.telemetry.count("requests.parse_error")
            return P.error_response(
                request, P.E_BAD_REQUEST, f"source does not parse: {exc}", verb
            )
        max_seconds = request.get(
            "max_seconds", self.config.default_max_seconds
        )
        if verb == "analyze":
            return self._execute_analyze(request, program, max_seconds)
        if verb == "check":
            return self._execute_check(request, program, max_seconds)
        if verb == "assert":
            payload = AssertRequest(
                program=program,
                procs=tuple(request.get("procs") or ()),
                domain=request.get("domain", "au"),
                k=int(request.get("k", 0)),
                max_seconds=max_seconds,
            )
            return self._run_job_task(
                request, verb, run_assert_request, payload, max_seconds
            )
        if verb == "equivalence":
            payload = EquivalenceRequest(
                program=program,
                proc1=request["proc1"],
                proc2=request["proc2"],
                max_seconds=max_seconds,
            )
            return self._run_job_task(
                request, verb, run_equivalence_request, payload, max_seconds
            )
        raise P.ProtocolError(f"unhandled job verb {verb!r}")

    def _execute_analyze(
        self,
        request: Dict[str, Any],
        program,
        max_seconds: Optional[float],
    ) -> Dict[str, Any]:
        program_id = str(request.get("program_id", "default"))
        session, delta = self._session_for(program_id, program)
        report = session.analyze(
            procs=request.get("procs"),
            domains=tuple(request.get("domains") or ("am",)),
            k=int(request.get("k", 0)),
            max_seconds=max_seconds,
        )
        records: List[D.DiagnosticRecord] = []
        for task_id, error in sorted(report.errors.items()):
            records.append(
                D.from_task_error(
                    error["status"],
                    error.get("error"),
                    proc=task_id.rsplit(".", 1)[0],
                )
            )
        for task_id, output in sorted(report.outputs.items()):
            if task_id in report.errors:
                continue  # already encoded from the task-level error
            records.extend(
                D.from_engine_diagnostics(output.diagnostics, proc=output.proc)
            )
        store_stats: Dict[str, Any] = {}
        for output in report.outputs.values():
            for key, value in (output.stats.get("store") or {}).items():
                if isinstance(value, (int, float)):
                    store_stats[key] = store_stats.get(key, 0) + value
        self.telemetry.gauge(
            "analyze.dirty_cone", len(report.incremental["dirty_cone"])
        )
        self.telemetry.count("analyze.tasks", len(report.analyzed))
        self.telemetry.count("analyze.reused", len(report.reused))
        result = {
            "program_id": program_id,
            "summary_hashes": report.summary_hashes(),
            "incremental": report.incremental,
            "diagnostics": D.run_envelope(records),
            "ok": report.ok,
        }
        if delta is not None:
            result["delta"] = {
                "changed": sorted(delta.changed),
                "dirty": sorted(delta.dirty),
                "clean": sorted(delta.clean),
                "added": sorted(delta.added),
                "removed": sorted(delta.removed),
            }
        telemetry = {
            "wall_s": round(report.wall_time, 6),
            "reused": len(report.reused),
            "analyzed": len(report.analyzed),
            "dirty_cone": len(report.incremental["dirty_cone"]),
            "sccs_analyzed": report.incremental["sccs_analyzed"],
            "sccs_total": report.incremental["sccs_total"],
            "store": store_stats,
        }
        if report.ok:
            return P.response(request, "analyze", result, telemetry)
        statuses = {err["status"] for err in report.errors.values()}
        kind = statuses.pop() if len(statuses) == 1 else P.E_INTERNAL
        out = P.error_response(
            request,
            kind,
            "; ".join(
                f"{tid}: {err['status']}" for tid, err in sorted(report.errors.items())
            ),
            "analyze",
            diagnostics=D.run_envelope(records),
        )
        out["result"] = result
        out["telemetry"] = telemetry
        return out

    def _execute_check(
        self,
        request: Dict[str, Any],
        program,
        max_seconds: Optional[float],
    ) -> Dict[str, Any]:
        """The ``check`` verb: two-tier checker with warm per-proc reuse.

        Tier-A findings are a pure function of one procedure's body, so
        they are cached under its (line-sensitive) body key; Tier-B
        verdicts depend on the whole call cone (the engine analyzes
        callees transitively), so they are cached under the cone
        fingerprint — the same key the incremental analyzer trusts —
        plus the same line signature.  Only procedures whose key changed
        are re-dispatched; the rest answer from the cache.

        A request with a ``query`` field is a demand query instead: one
        (proc, line, rule) obligation answered through the backward-cone
        :class:`~repro.core.strategy.DemandStrategy`, cached under the
        cone-fingerprint key (see :mod:`repro.service.queries`).
        """
        if request.get("query") is not None:
            from repro.service.jobs import run_query_request
            from repro.service.queries import execute_query

            def run_query(payload):
                if self.config.jobs == 0:
                    return run_query_request(payload)
                from repro.parallel.pool import OK, PoolTask, WorkerPool

                pool = WorkerPool(jobs=1, hard_grace=self.config.hard_grace)
                (outcome,) = pool.run(
                    [
                        PoolTask(
                            task_id="query",
                            fn=run_query_request,
                            args=(payload,),
                            budget=max_seconds,
                        )
                    ]
                )
                if outcome.status != OK:
                    self.telemetry.count(f"requests.check.{outcome.status}")
                    record = D.from_task_error(outcome.status, outcome.error)
                    return P.error_response(
                        request,
                        outcome.status,
                        (outcome.error or {}).get(
                            "message", f"task {outcome.status}"
                        ),
                        "check",
                        diagnostics=D.run_envelope([record]),
                    )
                return outcome.result

            return execute_query(
                self._check_cache,
                self.telemetry,
                request,
                program,
                max_seconds,
                run_query,
            )
        program_id = str(request.get("program_id", "default"))
        tier = str(request.get("tier", "all"))
        if tier not in ("lint", "safety", "termination", "all"):
            return P.error_response(
                request, P.E_BAD_REQUEST, f"unknown tier {tier!r}", "check"
            )
        domain = str(request.get("domain", "am"))
        k = int(request.get("k", 0))
        # No session round-trip: the checker keys must see line/decl
        # changes that icfg_fingerprint (and thus Session.update)
        # deliberately ignores, so they come from the incoming program.
        from repro.lang.cfg import build_icfg
        from repro.service.depindex import DependencyIndex

        icfg = build_icfg(program)
        index = DependencyIndex.build(icfg)
        requested = list(request.get("procs") or sorted(index.bodies))
        unknown = [p for p in requested if p not in index.bodies]
        if unknown:
            return P.error_response(
                request,
                P.E_BAD_REQUEST,
                f"unknown procedure(s): {', '.join(sorted(unknown))}",
                "check",
            )
        want_lint = tier in ("lint", "all")
        want_safety = tier in ("safety", "all")
        want_termination = tier == "termination"

        keys = CheckFindingCache.keys_for(program, icfg, index)
        dirty = self._check_cache.partition(
            program_id, (tier, domain, k), requested, keys,
            want_lint, want_safety, want_termination,
        )
        reused = [p for p in requested if p not in set(dirty)]

        fresh: Dict[str, Any] = {"lint": {}, "safety": {}, "termination": {},
                                 "proc_status": {}, "termination_status": {},
                                 "stats": {}}
        telemetry: Dict[str, Any] = {"isolation": "warm"}
        if dirty:
            payload = CheckRequest(
                program=program,
                procs=tuple(dirty),
                tier=tier,
                domain=domain,
                k=k,
                max_seconds=max_seconds,
            )
            if self.config.jobs == 0:
                fresh = run_check_request(payload)
                telemetry["isolation"] = "inline"
            else:
                from repro.parallel.pool import OK, PoolTask, WorkerPool

                pool = WorkerPool(jobs=1, hard_grace=self.config.hard_grace)
                (outcome,) = pool.run(
                    [
                        PoolTask(
                            task_id="check",
                            fn=run_check_request,
                            args=(payload,),
                            budget=max_seconds,
                        )
                    ]
                )
                telemetry.update(
                    isolation="pool",
                    wall_s=round(outcome.wall_time, 6),
                    retries=outcome.retries,
                )
                if outcome.status != OK:
                    self.telemetry.count(f"requests.check.{outcome.status}")
                    record = D.from_task_error(outcome.status, outcome.error)
                    out = P.error_response(
                        request,
                        outcome.status,
                        (outcome.error or {}).get(
                            "message", f"task {outcome.status}"
                        ),
                        "check",
                        diagnostics=D.run_envelope([record]),
                    )
                    out["telemetry"] = telemetry
                    return out
                fresh = outcome.result

        # Merge fresh results into the cache, then answer every requested
        # procedure from it.
        records, proc_status = self._check_cache.merge_and_answer(
            program_id, requested, dirty, keys, fresh,
            want_lint, want_safety, want_termination,
        )
        for record in records:
            self.telemetry.count(f"checker.rule.{record['ruleId']}")
        self.telemetry.count("check.procs_checked", len(dirty))
        self.telemetry.count("check.procs_reused", len(reused))
        stats = dict(fresh.get("stats") or {})
        stats["checked"] = sorted(dirty)
        stats["reused"] = sorted(reused)
        ok = not any(
            r["verdict"]
            in (D.WARN, D.UNSAFE, D.POSSIBLY_NONTERMINATING, D.ERROR)
            for r in records
        )
        result = {
            "program_id": program_id,
            "tier": tier,
            "domain": domain,
            "ok": ok,
            "checked": sorted(dirty),
            "reused": sorted(reused),
            "proc_status": proc_status,
            "diagnostics": D.records_envelope(records, stats),
        }
        telemetry.update(checked=len(dirty), reused=len(reused))
        return P.response(request, "check", result, telemetry)

    def _run_job_task(
        self,
        request: Dict[str, Any],
        verb: str,
        fn: Callable,
        payload,
        max_seconds: Optional[float],
    ) -> Dict[str, Any]:
        """Run one assert/equivalence job, pool-isolated when jobs >= 1."""
        if self.config.jobs == 0:
            result = fn(payload)
            return P.response(
                request, verb, result, {"isolation": "inline"}
            )
        from repro.parallel.pool import OK, PoolTask, WorkerPool

        pool = WorkerPool(jobs=1, hard_grace=self.config.hard_grace)
        (outcome,) = pool.run(
            [
                PoolTask(
                    task_id=verb,
                    fn=fn,
                    args=(payload,),
                    budget=max_seconds,
                )
            ]
        )
        telemetry = {
            "isolation": "pool",
            "wall_s": round(outcome.wall_time, 6),
            "retries": outcome.retries,
        }
        if outcome.status == OK:
            return P.response(request, verb, outcome.result, telemetry)
        self.telemetry.count(f"requests.{verb}.{outcome.status}")
        record = D.from_task_error(outcome.status, outcome.error)
        out = P.error_response(
            request,
            outcome.status,
            (outcome.error or {}).get("message", f"task {outcome.status}"),
            verb,
            diagnostics=D.run_envelope([record]),
        )
        out["telemetry"] = telemetry
        return out
