"""The analysis engine subsystem: scheduling, caching, observability.

The tabulating fixpoint of :mod:`repro.core.interproc` is the *semantics*
of the inter-procedural analysis (paper §4); this package is its
*machinery* — the parts that decide in which order records are analyzed,
which results can be reused, and what the engine reports about its own
work:

- :mod:`repro.engine.canon` — canonical labeling and stable content
  hashing of backbone graphs, abstract heaps and heap sets (cached on the
  objects), plus program fingerprints for cache keys;
- :mod:`repro.engine.cache` — a summary cache keyed by
  ``(program, procedure, domain, patterns, k, hooks)`` with hit/miss/
  eviction accounting and an optional on-disk JSON store;
- :mod:`repro.engine.scheduler` — a priority worklist that condenses the
  call graph into SCCs (Tarjan) and analyzes the condensation bottom-up,
  ordering records within an SCC by dependency depth;
- :mod:`repro.engine.telemetry` — counters, phase timers and an opt-in
  JSONL event trace with a ``report()`` summary.

:class:`EngineOptions` is the single knob bundle threaded from
``Analyzer.analyze(..., engine_opts=...)`` down to the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.engine.cache import SummaryCache
from repro.engine.canon import (
    domain_descriptor,
    graph_hash,
    heap_hash,
    heapset_hash,
    icfg_fingerprint,
    stable_digest,
)
from repro.engine.scheduler import FifoScheduler, Scheduler, condensation, tarjan_scc
from repro.engine.telemetry import Telemetry, merge_traces


@dataclass
class EngineOptions:
    """Tuning and observability knobs for the tabulating engine.

    ``scheduler`` selects the worklist policy: ``"scc"`` (default) is the
    SCC-condensation priority worklist, ``"fifo"`` the seed engine's flat
    FIFO (kept for differential testing).  ``cache`` is a shared
    :class:`SummaryCache`; ``use_cache=False`` bypasses it for one run.
    ``trace_path``/``collect_events`` opt into the JSONL event trace.

    ``point_states`` makes per-program-point abstract states a
    first-class run output: every ``Record.states`` is guaranteed
    populated after ``analyze`` even when the run is answered from the
    summary cache (state tables ride along in the cached payload, and a
    cached run recorded without them is transparently recomputed and
    upgraded in place).  Pass a callable instead of ``True`` to also
    have it invoked with each finished :class:`Record` — a streaming
    recorder hook for checkers that consume states as they appear.
    Before this capability existed, per-point consumers (the Tier-B
    safety checker, the termination prover) had to run with
    ``use_cache=False``, which is exactly the anti-pattern it replaces.
    """

    scheduler: str = "scc"
    cache: Optional[SummaryCache] = None
    use_cache: bool = True
    # False | True | callable(record) -> None (see class docstring).
    point_states: object = False
    trace_path: Optional[str] = None
    collect_events: bool = False
    max_record_iterations: int = 60
    max_entry_widenings: int = 25
    max_steps: int = 200_000
    max_seconds: Optional[float] = None  # wall-clock cap on the fixpoint

    def make_telemetry(self) -> Telemetry:
        return Telemetry(
            trace_path=self.trace_path, collect_events=self.collect_events
        )


__all__ = [
    "EngineOptions",
    "SummaryCache",
    "Scheduler",
    "FifoScheduler",
    "Telemetry",
    "merge_traces",
    "condensation",
    "tarjan_scc",
    "stable_digest",
    "graph_hash",
    "heap_hash",
    "heapset_hash",
    "icfg_fingerprint",
    "domain_descriptor",
]
