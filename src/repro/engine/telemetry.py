"""Engine observability: counters, phase timers, and an event trace.

Telemetry is always on for counters and timers (they are a dict update and
two clock reads — negligible next to a single ``post#``), while the event
trace is opt-in: ``collect_events=True`` buffers structured events in
memory, ``trace_path=...`` appends them as JSON Lines to a file.  Events
cover the record lifecycle (created, re-run, entry widened), widening
applications, summary growth, and cache hits/misses, so a slow analysis
can be replayed from its trace.

``report()`` returns a plain dict (counters + timers + event count);
``format_report()`` renders it for benchmark drivers.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, IO, List, Optional


class Telemetry:
    """Counters, phase timers, and an optional JSONL event trace."""

    def __init__(
        self,
        trace_path: Optional[str] = None,
        collect_events: bool = False,
        clock=time.perf_counter,
        cpu_clock=time.process_time,
        sample_window: int = 1024,
    ):
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}  # wall seconds per phase
        self.cpu_timers: Dict[str, float] = {}  # CPU seconds per phase
        self.gauges: Dict[str, float] = {}  # point-in-time values (last wins)
        # name -> bounded ring of recent observations (latency samples);
        # percentiles are computed over the window, so they track the
        # recent distribution rather than the whole process lifetime.
        self.samples: Dict[str, List[float]] = {}
        self._sample_counts: Dict[str, int] = {}  # total observed, ever
        self._sample_window = max(2, sample_window)
        self.events: List[Dict[str, Any]] = []
        self._clock = clock
        self._cpu_clock = cpu_clock
        self._collect = collect_events
        self._trace_path = trace_path
        self._trace_file: Optional[IO[str]] = None
        self._seq = 0

    # -- counters ------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def __getitem__(self, name: str) -> int:
        return self.counters.get(name, 0)

    # -- gauges --------------------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        """Record a point-in-time measurement (queue depth, dirty-cone
        size, hit rate); unlike counters, later values replace earlier
        ones.  Used by the service layer for per-request telemetry."""
        self.gauges[name] = value

    # -- sample windows ------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Add one observation (a latency, a queue wait) to ``name``'s
        bounded sliding window; old samples fall off ring-buffer style."""
        ring = self.samples.setdefault(name, [])
        total = self._sample_counts.get(name, 0)
        if len(ring) < self._sample_window:
            ring.append(value)
        else:
            ring[total % self._sample_window] = value
        self._sample_counts[name] = total + 1

    def percentile(self, name: str, q: float) -> Optional[float]:
        """The ``q``-th percentile (0..100) of ``name``'s recent window,
        by the nearest-rank method; ``None`` when nothing was observed."""
        ring = self.samples.get(name)
        if not ring:
            return None
        ordered = sorted(ring)
        rank = max(0, min(len(ordered) - 1, int(len(ordered) * q / 100.0)))
        return ordered[rank]

    def sample_count(self, name: str) -> int:
        """Total observations ever made to ``name`` (not just the window)."""
        return self._sample_counts.get(name, 0)

    def sample_sum(self, name: str) -> float:
        """Sum of the *windowed* samples (Prometheus summary helper)."""
        return sum(self.samples.get(name, ()))

    # -- timers --------------------------------------------------------------

    @contextmanager
    def phase(self, name: str):
        """Time a phase, accumulating wall and CPU seconds separately.

        The split matters for parallel runs: a worker starved of a core
        shows wall >> CPU, while an exact-LP-bound fixpoint shows them
        equal — two very different slowdowns that one number conflates.
        """
        start = self._clock()
        cpu_start = self._cpu_clock()
        try:
            yield
        finally:
            self.timers[name] = self.timers.get(name, 0.0) + self._clock() - start
            self.cpu_timers[name] = (
                self.cpu_timers.get(name, 0.0) + self._cpu_clock() - cpu_start
            )

    # -- events --------------------------------------------------------------

    @property
    def tracing(self) -> bool:
        return self._collect or self._trace_path is not None

    def event(self, kind: str, **fields: Any) -> None:
        """Record one structured trace event (no-op unless tracing)."""
        if not self.tracing:
            return
        self._seq += 1
        # ``ts`` is epoch time so traces from different worker processes
        # can be merged into one ordered run trace (perf_counter origins
        # are per-process and incomparable).
        record = {"seq": self._seq, "ts": round(time.time(), 6), "event": kind}
        record.update(fields)
        if self._collect:
            self.events.append(record)
        if self._trace_path is not None:
            if self._trace_file is None:
                self._trace_file = open(self._trace_path, "a", encoding="utf-8")
            json.dump(record, self._trace_file, default=repr)
            self._trace_file.write("\n")

    def close(self) -> None:
        if self._trace_file is not None:
            self._trace_file.close()
            self._trace_file = None

    # -- reporting ------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        out: Dict[str, Any] = dict(sorted(self.counters.items()))
        for name, total in sorted(self.timers.items()):
            out[f"time.{name}"] = round(total, 6)
        for name, total in sorted(self.cpu_timers.items()):
            out[f"cpu.{name}"] = round(total, 6)
        for name, value in sorted(self.gauges.items()):
            out[f"gauge.{name}"] = value
        for name in sorted(self.samples):
            out[f"p50.{name}"] = round(self.percentile(name, 50.0), 6)
            out[f"p99.{name}"] = round(self.percentile(name, 99.0), 6)
        if self.tracing:
            out["events"] = self._seq
        return out

    def format_report(self) -> str:
        report = self.report()
        if not report:
            return "telemetry: (empty)"
        width = max(len(k) for k in report)
        lines = ["telemetry:"]
        for key, value in report.items():
            lines.append(f"  {key:<{width}}  {value}")
        return "\n".join(lines)

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def merge_traces(paths: List[str], out_path: str) -> int:
    """Merge per-worker JSONL traces into one ordered run trace.

    Events are ordered by their epoch timestamp (``ts``), breaking ties
    by source label and per-source sequence number, and re-sequenced
    with a global ``gseq``; each event is tagged with the ``task`` label
    derived from its source file name.  Returns the merged event count.
    The merged file is written atomically (tmp + rename), so a crashed
    merge never leaves a half-written trace.
    """
    merged: List[Dict[str, Any]] = []
    for path in paths:
        label = os.path.basename(path)
        for suffix in (".jsonl", ".trace"):
            if label.endswith(suffix):
                label = label[: -len(suffix)]
        try:
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn tail of a killed worker's trace
                    record["task"] = label
                    merged.append(record)
        except OSError:
            continue
    merged.sort(
        key=lambda r: (r.get("ts", 0.0), r.get("task", ""), r.get("seq", 0))
    )
    for gseq, record in enumerate(merged, start=1):
        record["gseq"] = gseq
    tmp = out_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        for record in merged:
            json.dump(record, fh, default=repr)
            fh.write("\n")
    os.replace(tmp, out_path)
    return len(merged)
