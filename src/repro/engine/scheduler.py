"""Worklist scheduling for the tabulating engine.

The seed engine used a flat FIFO over records, which interleaves callers
and callees arbitrarily: a caller record is frequently re-analyzed several
times while its callees' summaries are still growing.  The classic remedy
(IFDS/summary-based engines) is to exploit call-graph structure:

1. condense the call graph into strongly connected components (Tarjan);
2. analyze the condensation DAG bottom-up — a procedure's record is only
   taken from the worklist when no record of a *callee SCC* is pending, so
   summaries are complete before callers consume them;
3. inside an SCC (mutual recursion), prefer records created deeper in the
   call chain: they are the dependencies of the shallower ones.

:class:`Scheduler` implements this as a priority worklist (heap on
``(scc_rank, -depth, seq)``); :class:`FifoScheduler` reproduces the seed
behavior behind the same interface for differential testing.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set


def tarjan_scc(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components of a directed graph, iteratively.

    Components are returned in reverse topological order of the
    condensation: every component appears *before* any component that can
    reach it — i.e. callees before callers for a call graph.
    """
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return components


def condensation(graph: Dict[str, Set[str]]) -> Dict[str, int]:
    """Map each node to its SCC rank: rank 0 components have no callees
    outside themselves; callers always have a strictly larger rank than
    the procedures they (transitively) call, unless mutually recursive."""
    return {
        node: rank
        for rank, component in enumerate(tarjan_scc(graph))
        for node in component
    }


class Scheduler:
    """SCC-aware priority worklist over record keys.

    Keys are pushed with the procedure they belong to and the dependency
    depth at which the record was created (root analyses are depth 0, a
    record created for a call edge is one deeper than its caller).  Pops
    return the pending key with the smallest SCC rank — callees first —
    breaking ties by larger depth, then FIFO order.
    """

    name = "scc"

    def __init__(self, call_graph: Dict[str, Set[str]]):
        self._rank = condensation(call_graph)
        self._heap: List = []
        self._pending: Set[Hashable] = set()
        self._seq = 0
        self.pushes = 0
        self.pops = 0
        self.requeues = 0
        self.max_size = 0
        self._seen: Set[Hashable] = set()

    def rank(self, proc: str) -> int:
        return self._rank.get(proc, len(self._rank))

    def push(self, key: Hashable, proc: str, depth: int = 0) -> None:
        if key in self._pending:
            return
        self.pushes += 1
        if key in self._seen:
            self.requeues += 1
        self._seen.add(key)
        self._pending.add(key)
        self._seq += 1
        heapq.heappush(self._heap, (self.rank(proc), -depth, self._seq, key))
        self.max_size = max(self.max_size, len(self._pending))

    def pop(self) -> Hashable:
        while True:
            _, _, _, key = heapq.heappop(self._heap)
            if key in self._pending:
                self._pending.discard(key)
                self.pops += 1
                return key

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._pending

    def stats(self) -> Dict[str, int]:
        return {
            "policy": self.name,
            "pushes": self.pushes,
            "pops": self.pops,
            "requeues": self.requeues,
            "max_size": self.max_size,
            "sccs": 1 + max(self._rank.values(), default=-1),
        }


class FifoScheduler:
    """The seed engine's flat FIFO, behind the Scheduler interface."""

    name = "fifo"

    def __init__(self, call_graph: Optional[Dict[str, Set[str]]] = None):
        self._queue: List[Hashable] = []
        self.pushes = 0
        self.pops = 0
        self.requeues = 0
        self.max_size = 0
        self._seen: Set[Hashable] = set()

    def push(self, key: Hashable, proc: str = "", depth: int = 0) -> None:
        if key in self._queue:
            return
        self.pushes += 1
        if key in self._seen:
            self.requeues += 1
        self._seen.add(key)
        self._queue.append(key)
        self.max_size = max(self.max_size, len(self._queue))

    def pop(self) -> Hashable:
        self.pops += 1
        return self._queue.pop(0)

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._queue

    def stats(self) -> Dict[str, int]:
        return {
            "policy": self.name,
            "pushes": self.pushes,
            "pops": self.pops,
            "requeues": self.requeues,
            "max_size": self.max_size,
        }
