"""Canonical labeling and stable hashing for engine keys.

The backbone graph already carries a canonical form (:meth:`HeapGraph.
canonical`: BFS renaming from the sorted label set, so isomorphic graphs
have equal canonical keys).  This module turns those canonical forms into
short *stable digests* — hex strings that are deterministic across
processes (unlike ``hash()``, which is salted per interpreter) — so that
records, summary lookups and the on-disk cache can key on a compact hash
instead of nested tuples or repeated isomorphism searches.

Digests are cached on the hashed objects (``HeapGraph._stable_hash``,
``AbstractHeap._stable_hash``); graphs and heaps are immutable, so the
cache never invalidates.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Tuple

from repro.shape.abstract_heap import AbstractHeap
from repro.shape.graph import HeapGraph
from repro.shape.heap_set import HeapSet

_DIGEST_SIZE = 16  # bytes; 32 hex chars


def stable_digest(*parts: object) -> str:
    """A process-stable blake2b digest of the reprs of ``parts``."""
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


# -- graphs ------------------------------------------------------------------


def graph_hash(graph: HeapGraph) -> str:
    """Stable digest of the canonical key; equal iff graphs isomorphic."""
    cached = getattr(graph, "_stable_hash", None)
    if cached is None:
        cached = stable_digest(graph.key())
        graph._stable_hash = cached
    return cached


# -- heaps and heap sets -----------------------------------------------------


def heap_hash(heap: AbstractHeap, domain) -> str:
    """Stable digest of a heap modulo isomorphism: canonical graph plus the
    (canonically renamed) value's description."""
    cached = getattr(heap, "_stable_hash", None)
    if cached is None:
        canon = heap.canonicalize(domain)
        cached = stable_digest(canon.graph.key(), domain.describe(canon.value))
        heap._stable_hash = cached
        if canon is not heap:
            canon._stable_hash = cached
    return cached


def heapset_hash(heaps: HeapSet, domain) -> str:
    """Stable digest of a heap set: order-independent over member heaps."""
    cached = getattr(heaps, "_stable_hash", None)
    if cached is None:
        cached = stable_digest(tuple(sorted(heap_hash(h, domain) for h in heaps)))
        heaps._stable_hash = cached
    return cached


# -- programs and domains ----------------------------------------------------


def icfg_fingerprint(icfg) -> str:
    """Stable digest of a whole program's ICFG (procedure CFGs with their
    edge operations), used to key summary caches across processes."""
    cached = getattr(icfg, "_fingerprint", None)
    if cached is None:
        parts = []
        for name in sorted(icfg.cfgs):
            cfg = icfg.cfg(name)
            parts.append((name, str(cfg), tuple(sorted(cfg.widen_points))))
        cached = stable_digest(tuple(parts))
        icfg._fingerprint = cached
    return cached


def domain_descriptor(domain) -> Tuple:
    """A hashable, process-stable descriptor of an LDW domain instance.

    AM has no parameters; AU is determined by its (closed) pattern set.
    Unknown domains fall back to their class name.
    """
    patterns = getattr(domain, "patterns", None)
    name = type(domain).__name__
    if patterns is not None:
        return (name, tuple(sorted(patterns)))
    return (name,)
