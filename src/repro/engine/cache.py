"""Hash-keyed summary cache with optional on-disk persistence.

The engine tabulates one record per ``(procedure, entry configuration)``
*within* a run, but the seed threw all of that work away between runs —
and the workloads re-run constantly: ``analyze_strengthened`` re-analyzes
the AM domain that ``check_equivalence`` just computed, equivalence checks
analyze both programs in both domains, and benchmarks repeat analyses for
timing.  This cache keys a whole run's record table by

    (program fingerprint, root procedure, domain descriptor,
     pattern set, fold bound k, hook tags)

so a repeated analysis is a dictionary lookup.  Caching whole record
tables (every ``(proc, entry, summary)`` of the run, not only the root's)
keeps the AM-strengthening hook exact: it looks up callee records of the
AM engine by entry key, and those must all be present on a hit.

The optional on-disk store is a JSON file mapping cache keys to metadata
plus a base64-pickled record payload (summaries contain domain values —
exact rationals, polyhedra — with no faithful pure-JSON form).  Corrupt or
incompatible files are discarded, never trusted.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

# Bump when the pickled payload layout changes; old stores are discarded.
STORE_VERSION = 1


CacheKey = Tuple  # (program_fp, proc, domain_desc, k, hook_tag, assume_tag)


def encode_payload(payload: Any) -> str:
    """Base64-pickle a run payload for a JSON store (see module docstring
    for why payloads have no faithful pure-JSON form)."""
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return base64.b64encode(blob).decode("ascii")


def decode_payload(encoded: str) -> Any:
    return pickle.loads(base64.b64decode(encoded))


class SummaryCache:
    """An LRU cache of analysis-run payloads with accounting.

    A payload is whatever the engine wants to reuse — the engine stores a
    list of ``(proc, entry_heap, summary)`` triples covering every record
    of the run.  The cache treats payloads as opaque.
    """

    def __init__(self, max_entries: int = 128, store_path: Optional[str] = None):
        self.max_entries = max_entries
        self.store_path = store_path
        self._entries: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.disk_loads = 0
        self.disk_errors = 0
        if store_path is not None and os.path.exists(store_path):
            self._load(store_path)

    # -- lookup ----------------------------------------------------------------

    def get(self, key: CacheKey) -> Optional[Any]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: CacheKey, payload: Any) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = payload
        self.stores += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()

    # -- accounting -------------------------------------------------------------

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate(), 4),
            "stores": self.stores,
            "evictions": self.evictions,
            "disk_loads": self.disk_loads,
            "disk_errors": self.disk_errors,
        }

    # -- persistence ------------------------------------------------------------

    def save(self, path: Optional[str] = None) -> int:
        """Write all entries to the JSON store; returns the entry count."""
        path = path or self.store_path
        if path is None:
            raise ValueError("no store path configured")
        entries: List[Dict[str, Any]] = []
        for key, payload in self._entries.items():
            try:
                encoded = encode_payload(payload)
            except Exception:
                self.disk_errors += 1
                continue
            entries.append({"key": list(key), "payload": encoded})
        doc = {"version": STORE_VERSION, "entries": entries}
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        os.replace(tmp, path)
        return len(entries)

    def _load(self, path: str) -> None:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            if doc.get("version") != STORE_VERSION:
                return
            for entry in doc.get("entries", []):
                key = _freeze(entry["key"])
                self._entries[key] = decode_payload(entry["payload"])
                self.disk_loads += 1
        except Exception:
            self.disk_errors += 1


def _freeze(obj: Any) -> Any:
    """JSON round-trips tuples as lists; restore hashability."""
    if isinstance(obj, list):
        return tuple(_freeze(item) for item in obj)
    return obj
