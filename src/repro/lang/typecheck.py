"""Type checking (and comparison reclassification) for LISL.

Checks:

- every variable is declared exactly once; every use is declared;
- pointer expressions and data expressions are well-typed;
- data expressions are *affine* (multiplication only by literals), matching
  the paper's terms "built using operations over Z" that the numeric domain
  can represent;
- calls match the callee's signature (arity and types, call-by-value);
- ``new`` appears only as a whole right-hand side.

The parser cannot distinguish ``p == q`` on pointers from ``a == b`` on
integers; the checker reclassifies comparison nodes using declared types
(rebuilding the statement tree, since AST nodes are immutable-ish).
"""

from __future__ import annotations

from typing import Dict, List

from repro.lang import ast as A


class TypeError_(Exception):
    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.message = message
        self.line = line


class _ProcChecker:
    def __init__(self, proc: A.Procedure, signatures: Dict[str, A.Procedure]):
        self.proc = proc
        self.signatures = signatures
        self.types: Dict[str, str] = {}
        for p in proc.all_vars():
            # Declarations carry their own source line (parser-threaded);
            # fall back to the procedure header for synthesized params.
            line = p.line or proc.line
            if p.name in self.types:
                raise TypeError_(
                    f"duplicate variable {p.name!r} in {proc.name}", line
                )
            if p.type not in (A.LIST, A.INT):
                raise TypeError_(f"unknown type {p.type!r}", line)
            self.types[p.name] = p.type

    # -- expressions ------------------------------------------------------------

    def type_of(self, expr: A.Expr, line: int) -> str:
        if isinstance(expr, A.Var):
            if expr.name not in self.types:
                raise TypeError_(f"undeclared variable {expr.name!r}", line)
            return self.types[expr.name]
        if isinstance(expr, A.Null):
            return A.LIST
        if isinstance(expr, A.NewCell):
            raise TypeError_("'new' is only allowed as a full right-hand side", line)
        if isinstance(expr, A.NextOf):
            if self.type_of(expr.base, line) != A.LIST:
                raise TypeError_(f"{expr.base} is not a list", line)
            return A.LIST
        if isinstance(expr, A.PrevOf):
            if self.type_of(expr.base, line) != A.LIST:
                raise TypeError_(f"{expr.base} is not a list", line)
            return A.LIST
        if isinstance(expr, A.DataOf):
            if self.type_of(expr.base, line) != A.LIST:
                raise TypeError_(f"{expr.base} is not a list", line)
            return A.INT
        if isinstance(expr, A.IntLit):
            return A.INT
        if isinstance(expr, A.BinOp):
            lt = self.type_of(expr.left, line)
            rt = self.type_of(expr.right, line)
            if lt != A.INT or rt != A.INT:
                raise TypeError_("arithmetic requires integer operands", line)
            if expr.op == "*" and not (
                isinstance(expr.left, A.IntLit) or isinstance(expr.right, A.IntLit)
            ):
                raise TypeError_(
                    "multiplication must have a literal operand (affine terms only)",
                    line,
                )
            return A.INT
        raise TypeError_(f"unexpected expression {expr!r}", line)

    # -- conditions ----------------------------------------------------------------

    def check_cond(self, cond: A.Cond, line: int) -> A.Cond:
        if isinstance(cond, A.BoolOp):
            return A.BoolOp(
                cond.op,
                self.check_cond(cond.left, line),
                self.check_cond(cond.right, line),
            )
        if isinstance(cond, A.NotCond):
            return A.NotCond(self.check_cond(cond.inner, line))
        if isinstance(cond, (A.PtrCmp, A.DataCmp)):
            lt = self.type_of(cond.left, line)
            rt = self.type_of(cond.right, line)
            if lt != rt:
                raise TypeError_(f"comparison mixes {lt} and {rt}", line)
            if lt == A.LIST:
                if cond.op not in ("==", "!="):
                    raise TypeError_("pointers compare only with == or !=", line)
                return A.PtrCmp(cond.op, cond.left, cond.right)
            return A.DataCmp(cond.op, cond.left, cond.right)
        raise TypeError_(f"unexpected condition {cond!r}", line)

    # -- statements -------------------------------------------------------------------

    def check_body(self, body: List[A.Stmt]) -> List[A.Stmt]:
        return [self.check_stmt(s) for s in body]

    def check_stmt(self, stmt: A.Stmt) -> A.Stmt:
        line = stmt.line
        if isinstance(stmt, A.Assign):
            if stmt.target not in self.types:
                raise TypeError_(f"undeclared variable {stmt.target!r}", line)
            target_t = self.types[stmt.target]
            if isinstance(stmt.value, A.NewCell):
                if target_t != A.LIST:
                    raise TypeError_("'new' assigns to a list variable", line)
                return stmt
            value_t = self.type_of(stmt.value, line)
            if value_t != target_t:
                raise TypeError_(
                    f"assigning {value_t} to {target_t} variable {stmt.target!r}",
                    line,
                )
            return stmt
        if isinstance(stmt, A.StoreNext):
            if self.types.get(stmt.target) != A.LIST:
                raise TypeError_(f"{stmt.target!r} is not a list", line)
            if self.type_of(stmt.value, line) != A.LIST:
                raise TypeError_("p->next takes a pointer value", line)
            if isinstance(stmt.value, (A.NextOf, A.PrevOf)):
                raise TypeError_(
                    "p->next = q->next is not primitive; use a temporary", line
                )
            return stmt
        if isinstance(stmt, A.StorePrev):
            if self.types.get(stmt.target) != A.LIST:
                raise TypeError_(f"{stmt.target!r} is not a list", line)
            if self.type_of(stmt.value, line) != A.LIST:
                raise TypeError_("p->prev takes a pointer value", line)
            if isinstance(stmt.value, (A.NextOf, A.PrevOf)):
                raise TypeError_(
                    "p->prev = q->next is not primitive; use a temporary", line
                )
            return stmt
        if isinstance(stmt, A.StoreData):
            if self.types.get(stmt.target) != A.LIST:
                raise TypeError_(f"{stmt.target!r} is not a list", line)
            if self.type_of(stmt.value, line) != A.INT:
                raise TypeError_("p->data takes an integer value", line)
            return stmt
        if isinstance(stmt, A.Call):
            callee = self.signatures.get(stmt.proc)
            if callee is None:
                raise TypeError_(f"unknown procedure {stmt.proc!r}", line)
            if len(stmt.args) != len(callee.inputs):
                raise TypeError_(
                    f"{stmt.proc} expects {len(callee.inputs)} argument(s)", line
                )
            # An empty target tuple discards every result (`p(x);`); a
            # non-empty one must match the callee's output arity.
            if stmt.targets and len(stmt.targets) != len(callee.outputs):
                raise TypeError_(
                    f"{stmt.proc} returns {len(callee.outputs)} value(s)", line
                )
            for arg, param in zip(stmt.args, callee.inputs):
                if self.type_of(arg, line) != param.type:
                    raise TypeError_(
                        f"argument for {param.name!r} must be {param.type}", line
                    )
            for tgt, param in zip(stmt.targets, callee.outputs):
                if self.types.get(tgt) != param.type:
                    raise TypeError_(
                        f"target {tgt!r} must be {param.type}", line
                    )
            return stmt
        if isinstance(stmt, A.If):
            return A.If(
                line=line,
                cond=self.check_cond(stmt.cond, line),
                then_body=self.check_body(stmt.then_body),
                else_body=self.check_body(stmt.else_body),
            )
        if isinstance(stmt, A.While):
            return A.While(
                line=line,
                cond=self.check_cond(stmt.cond, line),
                body=self.check_body(stmt.body),
            )
        if isinstance(stmt, (A.Assert, A.Assume)):
            for atom in stmt.formula.atoms:
                self._check_spec_atom(atom, line)
            return stmt
        if isinstance(stmt, A.Skip):
            return stmt
        raise TypeError_(f"unexpected statement {stmt!r}", line)

    def _check_spec_atom(self, atom: A.SpecAtom, line: int) -> None:
        if atom.kind == "data":
            checked = self.check_cond(atom.cmp, line)
            if not isinstance(checked, A.DataCmp):
                raise TypeError_("spec data atoms must compare integers", line)
            return
        for name in atom.args:
            if self.types.get(name) != A.LIST:
                raise TypeError_(
                    f"{atom.kind} expects list variables, got {name!r}", line
                )


def typecheck_program(program: A.Program) -> A.Program:
    """Check a program; returns a program with reclassified comparisons."""
    signatures = {}
    for proc in program.procedures:
        if proc.name in signatures:
            raise TypeError_(f"duplicate procedure {proc.name!r}", proc.line)
        signatures[proc.name] = proc
    checked = []
    for proc in program.procedures:
        checker = _ProcChecker(proc, signatures)
        checked.append(
            A.Procedure(
                proc.name,
                proc.inputs,
                proc.outputs,
                proc.locals,
                checker.check_body(proc.body),
                proc.line,
            )
        )
    return A.Program(checked)
