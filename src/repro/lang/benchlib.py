"""The CELIA benchmark programs (paper §7, Table 1), written in LISL.

Every function from the paper's Table 1 sample is here, grouped in the
same six classes (sll, map, map2, fold, fold2, sort), plus the recursive
variants the paper mentions for the tail-recursive classes and the helper
procedures quicksort/mergesort need (``qsplit``, ``concat3``, ``msplit``).

``TABLE1`` records, per function, the paper's reported numbers: the
nesting column ``(loops, recursive calls)``, the guard-pattern sets used,
and the AM/AU analysis times on the authors' machine -- the benchmark
harness prints ours next to them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lang.ast import Program
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck_program

BENCHMARK_SOURCE = r"""
// ===== class sll: elementary operations ==================================

proc create(n: int) returns (x: list) {
  local t: list;
  local i: int;
  x = NULL;
  i = 0;
  while (i < n) {
    t = new;
    t->data = 0;
    t->next = x;
    x = t;
    i = i + 1;
  }
}

proc addfst(x: list, v: int) returns (r: list) {
  local t: list;
  t = new;
  t->data = v;
  t->next = x;
  r = t;
}

proc addlst(x: list, v: int) returns (r: list) {
  local c, n, t: list;
  t = new;
  t->data = v;
  t->next = NULL;
  if (x == NULL) {
    r = t;
  } else {
    r = x;
    c = x;
    n = c->next;
    while (n != NULL) {
      c = n;
      n = c->next;
    }
    c->next = NULL;
    c->next = t;
  }
}

proc delfst(x: list) returns (r: list) {
  if (x == NULL) {
    r = NULL;
  } else {
    r = x->next;
  }
}

proc dellst(x: list) returns (r: list) {
  local c, n, m: list;
  if (x == NULL) {
    r = NULL;
  } else {
    n = x->next;
    if (n == NULL) {
      r = NULL;
    } else {
      r = x;
      c = x;
      m = n->next;
      while (m != NULL) {
        c = n;
        n = m;
        m = n->next;
      }
      c->next = NULL;
    }
  }
}

proc init(x: list, v: int) returns (r: list) {
  local c: list;
  r = x;
  c = x;
  while (c != NULL) {
    c->data = v;
    c = c->next;
  }
}

// ===== class map: one-list traversals modifying data ======================

proc initSeq(x: list) returns (r: list) {
  local c: list;
  local i: int;
  r = x;
  c = x;
  i = 0;
  while (c != NULL) {
    c->data = i;
    i = i + 1;
    c = c->next;
  }
}

proc mapadd(x: list, v: int) returns (r: list) {
  local c: list;
  local e: int;
  r = x;
  c = x;
  while (c != NULL) {
    e = c->data;
    c->data = e + v;
    c = c->next;
  }
}

// ===== class map2: two-list traversals =====================================

proc map2add(x: list, z: list, v: int) returns (r: list) {
  local cx, cz: list;
  local e: int;
  r = z;
  cx = x;
  cz = z;
  while (cx != NULL && cz != NULL) {
    e = cx->data;
    cz->data = e + v;
    cx = cx->next;
    cz = cz->next;
  }
}

proc copy(x: list, z: list) returns (r: list) {
  local cx, cz: list;
  local e: int;
  r = z;
  cx = x;
  cz = z;
  while (cx != NULL && cz != NULL) {
    e = cx->data;
    cz->data = e;
    cx = cx->next;
    cz = cz->next;
  }
}

// ===== class fold: one input list, computed outputs ==========================

proc max(x: list) returns (m: int) {
  local c: list;
  local e: int;
  m = 0;
  if (x != NULL) {
    m = x->data;
    c = x->next;
    while (c != NULL) {
      e = c->data;
      if (e > m) {
        m = e;
      }
      c = c->next;
    }
  }
}

proc clone(x: list) returns (y: list) {
  local c, t, last: list;
  local e: int;
  y = NULL;
  last = NULL;
  c = x;
  while (c != NULL) {
    e = c->data;
    t = new;
    t->data = e;
    t->next = NULL;
    if (last == NULL) {
      y = t;
      last = t;
    } else {
      last->next = NULL;
      last->next = t;
      last = t;
    }
    c = c->next;
  }
}

proc split(x: list, v: int) returns (l: list, u: list) {
  local c, cell: list;
  local e: int;
  l = NULL;
  u = NULL;
  c = x;
  while (c != NULL) {
    e = c->data;
    cell = new;
    cell->data = e;
    if (e <= v) {
      cell->next = l;
      l = cell;
    } else {
      cell->next = u;
      u = cell;
    }
    c = c->next;
  }
}

proc delPred(x: list, v: int) returns (r: list) {
  // keep only the elements <= v (copying fold)
  local c, cell, last: list;
  local e: int;
  r = NULL;
  last = NULL;
  c = x;
  while (c != NULL) {
    e = c->data;
    if (e <= v) {
      cell = new;
      cell->data = e;
      cell->next = NULL;
      if (last == NULL) {
        r = cell;
        last = cell;
      } else {
        last->next = NULL;
        last->next = cell;
        last = cell;
      }
    }
    c = c->next;
  }
}

// ===== class fold2: two input lists ===========================================

proc equal(x: list, z: list) returns (b: int) {
  local cx, cz: list;
  local dx, dz: int;
  b = 1;
  cx = x;
  cz = z;
  while (cx != NULL && cz != NULL) {
    dx = cx->data;
    dz = cz->data;
    if (dx != dz) {
      b = 0;
    }
    cx = cx->next;
    cz = cz->next;
  }
  if (cx != NULL) {
    b = 0;
  }
  if (cz != NULL) {
    b = 0;
  }
}

proc concat(x: list, z: list) returns (r: list) {
  local c, n: list;
  if (x == NULL) {
    r = z;
  } else {
    r = x;
    c = x;
    n = c->next;
    while (n != NULL) {
      c = n;
      n = c->next;
    }
    c->next = NULL;
    c->next = z;
  }
}

proc merge(x: list, z: list) returns (r: list) {
  local cx, cz, t, cell: list;
  local dx, dz: int;
  r = NULL;
  t = NULL;
  cx = x;
  cz = z;
  while (cx != NULL && cz != NULL) {
    dx = cx->data;
    dz = cz->data;
    cell = new;
    cell->next = NULL;
    if (dx <= dz) {
      cell->data = dx;
      cx = cx->next;
    } else {
      cell->data = dz;
      cz = cz->next;
    }
    if (t == NULL) {
      r = cell;
      t = cell;
    } else {
      t->next = NULL;
      t->next = cell;
      t = cell;
    }
  }
  while (cx != NULL) {
    dx = cx->data;
    cell = new;
    cell->data = dx;
    cell->next = NULL;
    if (t == NULL) {
      r = cell;
      t = cell;
    } else {
      t->next = NULL;
      t->next = cell;
      t = cell;
    }
    cx = cx->next;
  }
  while (cz != NULL) {
    dz = cz->data;
    cell = new;
    cell->data = dz;
    cell->next = NULL;
    if (t == NULL) {
      r = cell;
      t = cell;
    } else {
      t->next = NULL;
      t->next = cell;
      t = cell;
    }
    cz = cz->next;
  }
}

// ===== class sort ==============================================================

proc bubblesort(x: list) returns (r: list) {
  local p, q: list;
  local swapped, a, b: int;
  r = x;
  swapped = 1;
  while (swapped > 0) {
    swapped = 0;
    if (r != NULL) {
      p = r;
      q = p->next;
      while (q != NULL) {
        a = p->data;
        b = q->data;
        if (a > b) {
          p->data = b;
          q->data = a;
          swapped = 1;
        }
        p = q;
        q = q->next;
      }
    }
  }
}

proc insertsort(x: list) returns (r: list) {
  local c, n, p, q, cell: list;
  local d, pd: int;
  r = NULL;
  c = x;
  while (c != NULL) {
    n = c->next;
    d = c->data;
    cell = new;
    cell->data = d;
    cell->next = NULL;
    if (r == NULL) {
      r = cell;
    } else {
      pd = r->data;
      if (d <= pd) {
        cell->next = r;
        r = cell;
      } else {
        p = r;
        q = p->next;
        while (q != NULL && q->data < d) {
          p = q;
          q = q->next;
        }
        cell->next = q;
        p->next = NULL;
        p->next = cell;
      }
    }
    c = n;
  }
}

proc qsplit(x: list, d: int) returns (l: list, u: list) {
  local c, cell: list;
  local e: int;
  l = NULL;
  u = NULL;
  c = x;
  while (c != NULL) {
    e = c->data;
    cell = new;
    cell->data = e;
    if (e <= d) {
      cell->next = l;
      l = cell;
    } else {
      cell->next = u;
      u = cell;
    }
    c = c->next;
  }
}

proc concat3(l: list, p: list, r: list) returns (res: list) {
  local c, n: list;
  p->next = NULL;
  p->next = r;
  if (l == NULL) {
    res = p;
  } else {
    res = l;
    c = l;
    n = c->next;
    while (n != NULL) {
      c = n;
      n = c->next;
    }
    c->next = NULL;
    c->next = p;
  }
}

proc quicksort(a: list) returns (res: list) {
  local left, right, pivot, start: list;
  local d: int;
  if (a == NULL) {
    res = clone(a);
  } else {
    start = a->next;
    if (start == NULL) {
      res = clone(a);
    } else {
      d = a->data;
      pivot = new;
      pivot->data = d;
      pivot->next = NULL;
      (left, right) = qsplit(start, d);
      left = quicksort(left);
      right = quicksort(right);
      res = concat3(left, pivot, right);
    }
  }
}

proc msplit(x: list) returns (a: list, b: list) {
  local c, cell: list;
  local e, turn: int;
  a = NULL;
  b = NULL;
  turn = 0;
  c = x;
  while (c != NULL) {
    e = c->data;
    cell = new;
    cell->data = e;
    if (turn == 0) {
      cell->next = a;
      a = cell;
      turn = 1;
    } else {
      cell->next = b;
      b = cell;
      turn = 0;
    }
    c = c->next;
  }
}

proc mergesort(x: list) returns (r: list) {
  local a, b, n: list;
  if (x == NULL) {
    r = clone(x);
  } else {
    n = x->next;
    if (n == NULL) {
      r = clone(x);
    } else {
      n = NULL;
      (a, b) = msplit(x);
      a = mergesort(a);
      b = mergesort(b);
      r = merge(a, b);
    }
  }
}

// ===== recursive variants (the paper analyzes both versions) ================

proc init_rec(x: list, v: int) returns (r: list) {
  local n, m: list;
  if (x == NULL) {
    r = NULL;
  } else {
    x->data = v;
    n = x->next;
    m = init_rec(n, v);
    x->next = NULL;
    x->next = m;
    r = x;
  }
}

proc mapadd_rec(x: list, v: int) returns (r: list) {
  local n, m: list;
  local e: int;
  if (x == NULL) {
    r = NULL;
  } else {
    e = x->data;
    x->data = e + v;
    n = x->next;
    m = mapadd_rec(n, v);
    x->next = NULL;
    x->next = m;
    r = x;
  }
}

proc max_rec(x: list) returns (m: int) {
  local n: list;
  local e, sub: int;
  m = 0;
  if (x != NULL) {
    e = x->data;
    n = x->next;
    if (n == NULL) {
      m = e;
    } else {
      sub = max_rec(n);
      if (e > sub) {
        m = e;
      } else {
        m = sub;
      }
    }
  }
}

proc clone_rec(x: list) returns (y: list) {
  local n, m, t: list;
  local e: int;
  if (x == NULL) {
    y = NULL;
  } else {
    e = x->data;
    n = x->next;
    m = clone_rec(n);
    t = new;
    t->data = e;
    t->next = m;
    y = t;
  }
}
"""


@dataclass(frozen=True)
class BenchEntry:
    """One row of the paper's Table 1."""

    name: str  # our procedure name
    paper_name: str  # name as printed in the paper
    cls: str  # sll / map / map2 / fold / fold2 / sort
    nesting: Tuple[Optional[int], Optional[int]]  # (loops, recursive calls)
    patterns: Tuple[str, ...]  # paper's pattern column
    paper_am_time: Optional[float]  # seconds, Intel i3-370M
    paper_au_time: Optional[float]


TABLE1: List[BenchEntry] = [
    BenchEntry("create", "create", "sll", (1, None), ("P=", "P1"), 0.013, 0.021),
    BenchEntry("addfst", "addfst", "sll", (0, None), ("P=",), 0.003, 0.002),
    BenchEntry("addlst", "addlst", "sll", (0, 1), ("P=",), 0.031, 0.033),
    BenchEntry("delfst", "delfst", "sll", (0, None), ("P=",), 0.001, 0.001),
    BenchEntry("dellst", "dellst", "sll", (0, 1), ("P=",), 0.034, 0.042),
    BenchEntry("init", "init(v)", "sll", (0, 1), ("P=", "P1"), 0.024, 0.034),
    BenchEntry("initSeq", "initSeq", "map", (0, 1), ("P=", "P1"), 0.024, 0.034),
    BenchEntry("mapadd", "add(v)", "map", (0, 1), ("P=",), 0.021, 0.032),
    BenchEntry("map2add", "add(v)", "map2", (0, 1), ("P=",), 0.089, 0.517),
    BenchEntry("copy", "copy", "map2", (0, 1), ("P=",), 0.063, 0.078),
    BenchEntry("delPred", "delPred", "fold", (0, 1), ("P=", "P1"), 0.062, 0.145),
    BenchEntry("max", "max", "fold", (0, 1), ("P=", "P1"), 0.031, 0.048),
    BenchEntry("clone", "clone", "fold", (0, 1), ("P=",), 0.071, 0.315),
    BenchEntry("split", "split", "fold", (0, 1), ("P=", "P1"), 0.245, 0.871),
    BenchEntry("equal", "equal", "fold2", (0, 1), ("P=",), 0.127, 0.261),
    BenchEntry("concat", "concat", "fold2", (0, 1), ("P=", "P1", "P2"), 0.217, 0.806),
    BenchEntry("merge", "merge", "fold2", (0, 1), ("P=", "P1", "P2"), 1.014, 2.306),
    BenchEntry("bubblesort", "bubble", "sort", (1, None), ("P=", "P1", "P2"), 0.387, 2.190),
    BenchEntry("insertsort", "insert", "sort", (1, None), ("P=", "P1", "P2"), 0.557, 3.292),
    BenchEntry("quicksort", "quick", "sort", (None, 2), ("P=", "P1", "P2"), 1.541, 121.1),
    BenchEntry("mergesort", "merge", "sort", (None, 2), ("P=", "P1", "P2"), 1.547, 95.94),
]


_CACHE: Dict[str, Program] = {}


def benchmark_program() -> Program:
    """The parsed, typechecked, normalized benchmark program."""
    if "program" not in _CACHE:
        program = parse_program(BENCHMARK_SOURCE)
        program = typecheck_program(program)
        _CACHE["program"] = normalize_program(program)
    return _CACHE["program"]


def entry(name: str) -> BenchEntry:
    for e in TABLE1:
        if e.name == name:
            return e
    raise KeyError(f"no Table 1 entry for {name!r}")
