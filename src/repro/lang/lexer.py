"""Tokenizer for LISL."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = {
    "proc",
    "returns",
    "local",
    "list",
    "int",
    "if",
    "else",
    "while",
    "assert",
    "assume",
    "skip",
    "new",
    "NULL",
    "next",
    "prev",
    "data",
    "true",
    "false",
}

SYMBOLS = [
    "->",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "(",
    ")",
    "{",
    "}",
    ",",
    ";",
    ":",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "!",
]


@dataclass(frozen=True)
class Token:
    kind: str  # "id" | "num" | "kw" | "sym" | "eof"
    text: str
    line: int

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text}@{self.line}"


class LexError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


def tokenize(source: str) -> List[Token]:
    """Turn LISL source text into a token list ending with an EOF token."""
    tokens: List[Token] = []
    line = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Token("num", source[i:j], line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "id"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(Token("sym", sym, line))
                i += len(sym)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
