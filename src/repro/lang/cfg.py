"""Control-flow graphs and the inter-procedural CFG (paper §2).

Each procedure gets a CFG whose edges carry *operations* -- the primitive
statement alphabet the abstract transformers implement:

=====================  =====================================================
operation              meaning
=====================  =====================================================
``OpAssignPtr``        ``p = NULL | q | q->next | new``
``OpStoreNext``        ``p->next = q`` (q a variable or None for NULL)
``OpStoreData``        ``p->data = t``
``OpAssignData``       ``d = t``
``OpAssumePtr``        branch: ``p == q`` / ``p != q`` (q may be None=NULL)
``OpAssumeData``       branch: affine comparison (``!=`` is split in two)
``OpCall``             ``(y...) = Q(x...)`` -- replaced by call/return
                       edges in the ICFG sense during the analysis
``OpAssume/OpAssert``  spec formulas (§6)
``OpSkip``             no-op
=====================  =====================================================

Boolean conditions are compiled to short-circuit branches; dereferences in
conditions (``p->next == NULL``, ``p->data < d``) are lifted onto fresh
temporary variables *at the evaluation point*, so loops re-evaluate them
each iteration.  While-loop heads are flagged as widening points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lang import ast as A


# ---------------------------------------------------------------------------
# Edge operations


@dataclass(frozen=True)
class Op:
    pass


@dataclass(frozen=True)
class OpSkip(Op):
    def __str__(self) -> str:
        return "skip"


@dataclass(frozen=True)
class OpAssignPtr(Op):
    target: str
    kind: str  # "null" | "var" | "next" | "prev" | "new"
    source: Optional[str] = None  # for var/next/prev

    def __str__(self) -> str:
        rhs = {
            "null": "NULL",
            "var": self.source,
            "next": f"{self.source}->next",
            "prev": f"{self.source}->prev",
            "new": "new",
        }[self.kind]
        return f"{self.target} = {rhs}"


@dataclass(frozen=True)
class OpStoreNext(Op):
    target: str
    source: Optional[str]  # None = NULL

    def __str__(self) -> str:
        return f"{self.target}->next = {self.source or 'NULL'}"


@dataclass(frozen=True)
class OpStorePrev(Op):
    target: str
    source: Optional[str]  # None = NULL

    def __str__(self) -> str:
        return f"{self.target}->prev = {self.source or 'NULL'}"


@dataclass(frozen=True)
class OpStoreData(Op):
    target: str
    expr: A.Expr

    def __str__(self) -> str:
        return f"{self.target}->data = {self.expr}"


@dataclass(frozen=True)
class OpAssignData(Op):
    target: str
    expr: A.Expr

    def __str__(self) -> str:
        return f"{self.target} = {self.expr}"


@dataclass(frozen=True)
class OpAssumePtr(Op):
    left: str
    right: Optional[str]  # None = NULL
    equal: bool

    def __str__(self) -> str:
        op = "==" if self.equal else "!="
        return f"assume {self.left} {op} {self.right or 'NULL'}"


@dataclass(frozen=True)
class OpAssumeData(Op):
    op: str  # == < <= > >=
    left: A.Expr
    right: A.Expr

    def __str__(self) -> str:
        return f"assume {self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class OpCall(Op):
    targets: Tuple[str, ...]
    proc: str
    args: Tuple[str, ...]

    def __str__(self) -> str:
        return f"({', '.join(self.targets)}) = {self.proc}({', '.join(self.args)})"


@dataclass(frozen=True)
class OpAssume(Op):
    formula: A.SpecFormula

    def __str__(self) -> str:
        return f"assume {self.formula}"


@dataclass(frozen=True)
class OpAssert(Op):
    formula: A.SpecFormula

    def __str__(self) -> str:
        return f"assert {self.formula}"


# ---------------------------------------------------------------------------
# Graphs


@dataclass(frozen=True)
class Edge:
    src: int
    dst: int
    op: Op
    line: int = 0

    def __str__(self) -> str:
        return f"{self.src} --[{self.op}]--> {self.dst}"


class CFG:
    """The control-flow graph of one procedure."""

    def __init__(self, proc: A.Procedure):
        self.proc_name = proc.name
        self.inputs = list(proc.inputs)
        self.outputs = list(proc.outputs)
        self.locals = list(proc.locals)
        self.pointer_vars: List[str] = [
            p.name for p in proc.all_vars() if p.type == A.LIST
        ]
        self.data_vars: List[str] = [
            p.name for p in proc.all_vars() if p.type == A.INT
        ]
        self.edges: List[Edge] = []
        self.widen_points: Set[int] = set()
        self._count = 0
        self.entry = self.new_node()
        self.exit: int = -1  # set by the builder
        self.node_lines: Dict[int, int] = {}

    def new_node(self, line: int = 0) -> int:
        node = self._count
        self._count += 1
        if line:
            self.node_lines[node] = line
        return node

    def add_edge(self, src: int, dst: int, op: Op, line: int = 0) -> None:
        self.edges.append(Edge(src, dst, op, line))

    def nodes(self) -> range:
        return range(self._count)

    def out_edges(self, node: int) -> List[Edge]:
        return [e for e in self.edges if e.src == node]

    def add_temp(self, name: str, typ: str) -> None:
        self.locals.append(A.Param(name, typ))
        if typ == A.LIST:
            self.pointer_vars.append(name)
        else:
            self.data_vars.append(name)

    def call_sites(self) -> List[Edge]:
        return [e for e in self.edges if isinstance(e.op, OpCall)]

    def loop_count(self) -> int:
        return len(self.widen_points)

    def __str__(self) -> str:
        lines = [f"proc {self.proc_name}: entry={self.entry} exit={self.exit}"]
        lines.extend(f"  {e}" for e in self.edges)
        return "\n".join(lines)


class _Builder:
    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.temp_count = 0

    def fresh(self, typ: str) -> str:
        self.temp_count += 1
        name = f"$c{self.temp_count}"
        self.cfg.add_temp(name, typ)
        return name

    # -- statements ---------------------------------------------------------

    def build_body(self, body: List[A.Stmt], src: int) -> int:
        current = src
        for stmt in body:
            current = self.build_stmt(stmt, current)
        return current

    def build_stmt(self, stmt: A.Stmt, src: int) -> int:
        cfg = self.cfg
        line = stmt.line
        if isinstance(stmt, A.Skip):
            return src
        if isinstance(stmt, A.Assign):
            return self._build_assign(stmt, src)
        if isinstance(stmt, A.StoreNext):
            dst = cfg.new_node(line)
            value = None if isinstance(stmt.value, A.Null) else stmt.value.name
            cfg.add_edge(src, dst, OpStoreNext(stmt.target, value), line)
            return dst
        if isinstance(stmt, A.StorePrev):
            dst = cfg.new_node(line)
            value = None if isinstance(stmt.value, A.Null) else stmt.value.name
            cfg.add_edge(src, dst, OpStorePrev(stmt.target, value), line)
            return dst
        if isinstance(stmt, A.StoreData):
            dst = cfg.new_node(line)
            cfg.add_edge(src, dst, OpStoreData(stmt.target, stmt.value), line)
            return dst
        if isinstance(stmt, A.Call):
            dst = cfg.new_node(line)
            args = tuple(a.name for a in stmt.args)  # normalized: vars only
            cfg.add_edge(src, dst, OpCall(stmt.targets, stmt.proc, args), line)
            return dst
        if isinstance(stmt, A.If):
            then_entry = cfg.new_node(line)
            else_entry = cfg.new_node(line)
            join = cfg.new_node(line)
            self.build_cond(stmt.cond, src, then_entry, else_entry, line)
            then_end = self.build_body(stmt.then_body, then_entry)
            else_end = self.build_body(stmt.else_body, else_entry)
            cfg.add_edge(then_end, join, OpSkip(), line)
            cfg.add_edge(else_end, join, OpSkip(), line)
            return join
        if isinstance(stmt, A.While):
            head = cfg.new_node(line)
            cfg.add_edge(src, head, OpSkip(), line)
            cfg.widen_points.add(head)
            body_entry = cfg.new_node(line)
            after = cfg.new_node(line)
            self.build_cond(stmt.cond, head, body_entry, after, line)
            body_end = self.build_body(stmt.body, body_entry)
            cfg.add_edge(body_end, head, OpSkip(), line)
            return after
        if isinstance(stmt, A.Assume):
            dst = cfg.new_node(line)
            cfg.add_edge(src, dst, OpAssume(stmt.formula), line)
            return dst
        if isinstance(stmt, A.Assert):
            dst = cfg.new_node(line)
            cfg.add_edge(src, dst, OpAssert(stmt.formula), line)
            return dst
        raise ValueError(f"cannot build CFG for {stmt!r}")

    def _build_assign(self, stmt: A.Assign, src: int) -> int:
        cfg = self.cfg
        line = stmt.line
        dst = cfg.new_node(line)
        value = stmt.value
        if isinstance(value, A.NewCell):
            cfg.add_edge(src, dst, OpAssignPtr(stmt.target, "new"), line)
        elif isinstance(value, A.Null):
            cfg.add_edge(src, dst, OpAssignPtr(stmt.target, "null"), line)
        elif isinstance(value, A.NextOf):
            cfg.add_edge(
                src, dst, OpAssignPtr(stmt.target, "next", value.base.name), line
            )
        elif isinstance(value, A.PrevOf):
            cfg.add_edge(
                src, dst, OpAssignPtr(stmt.target, "prev", value.base.name), line
            )
        elif isinstance(value, A.Var) and stmt.target in cfg.pointer_vars:
            cfg.add_edge(
                src, dst, OpAssignPtr(stmt.target, "var", value.name), line
            )
        else:
            cfg.add_edge(src, dst, OpAssignData(stmt.target, value), line)
        return dst

    # -- conditions ------------------------------------------------------------

    def build_cond(
        self, cond: A.Cond, src: int, then_dst: int, else_dst: int, line: int
    ) -> None:
        cfg = self.cfg
        if isinstance(cond, A.BoolOp) and cond.op == "&&":
            mid = cfg.new_node(line)
            self.build_cond(cond.left, src, mid, else_dst, line)
            self.build_cond(cond.right, mid, then_dst, else_dst, line)
            return
        if isinstance(cond, A.BoolOp) and cond.op == "||":
            mid = cfg.new_node(line)
            self.build_cond(cond.left, src, then_dst, mid, line)
            self.build_cond(cond.right, mid, then_dst, else_dst, line)
            return
        if isinstance(cond, A.NotCond):
            self.build_cond(cond.inner, src, else_dst, then_dst, line)
            return
        if isinstance(cond, A.PtrCmp):
            src, left = self._ptr_operand(cond.left, src, line)
            src, right = self._ptr_operand(cond.right, src, line)
            if left is None and right is None:  # NULL == NULL
                target = then_dst if cond.op == "==" else else_dst
                cfg.add_edge(src, target, OpSkip(), line)
                return
            if left is None:  # keep a variable on the left
                left, right = right, left
            cfg.add_edge(src, then_dst, OpAssumePtr(left, right, cond.op == "=="), line)
            cfg.add_edge(src, else_dst, OpAssumePtr(left, right, cond.op != "=="), line)
            return
        if isinstance(cond, A.DataCmp):
            if cond.op == "!=":
                cfg.add_edge(
                    src, then_dst, OpAssumeData("<", cond.left, cond.right), line
                )
                cfg.add_edge(
                    src, then_dst, OpAssumeData(">", cond.left, cond.right), line
                )
                cfg.add_edge(
                    src, else_dst, OpAssumeData("==", cond.left, cond.right), line
                )
                return
            negations = {"==": "!=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
            cfg.add_edge(
                src, then_dst, OpAssumeData(cond.op, cond.left, cond.right), line
            )
            neg = negations[cond.op]
            if neg == "!=":
                cfg.add_edge(
                    src, else_dst, OpAssumeData("<", cond.left, cond.right), line
                )
                cfg.add_edge(
                    src, else_dst, OpAssumeData(">", cond.left, cond.right), line
                )
            else:
                cfg.add_edge(
                    src, else_dst, OpAssumeData(neg, cond.left, cond.right), line
                )
            return
        raise ValueError(f"cannot build condition {cond!r}")

    def _ptr_operand(
        self, expr: A.Expr, src: int, line: int
    ) -> Tuple[int, Optional[str]]:
        """Return (new src node, variable name or None for NULL)."""
        cfg = self.cfg
        if isinstance(expr, A.Null):
            return src, None
        if isinstance(expr, A.Var):
            return src, expr.name
        if isinstance(expr, (A.NextOf, A.PrevOf)):
            tmp = self.fresh(A.LIST)
            mid = cfg.new_node(line)
            kind = "next" if isinstance(expr, A.NextOf) else "prev"
            cfg.add_edge(
                src, mid, OpAssignPtr(tmp, kind, expr.base.name), line
            )
            return mid, tmp
        raise ValueError(f"bad pointer operand {expr!r}")


def build_cfg(proc: A.Procedure) -> CFG:
    cfg = CFG(proc)
    builder = _Builder(cfg)
    end = builder.build_body(proc.body, cfg.entry)
    cfg.exit = end
    return cfg


class ICFG:
    """All procedure CFGs plus call-graph metadata."""

    def __init__(self, cfgs: Dict[str, CFG]):
        self.cfgs = cfgs

    def cfg(self, name: str) -> CFG:
        return self.cfgs[name]

    def call_graph(self) -> Dict[str, Set[str]]:
        graph: Dict[str, Set[str]] = {name: set() for name in self.cfgs}
        for name, cfg in self.cfgs.items():
            for edge in cfg.call_sites():
                graph[name].add(edge.op.proc)
        return graph

    def recursive_procs(self) -> Set[str]:
        """Procedures on a call-graph cycle (including self-recursion)."""
        graph = self.call_graph()
        recursive: Set[str] = set()
        for start in graph:
            stack = [start]
            seen: Set[str] = set()
            while stack:
                current = stack.pop()
                for callee in graph.get(current, ()):
                    if callee == start:
                        recursive.add(start)
                        stack = []
                        break
                    if callee not in seen:
                        seen.add(callee)
                        stack.append(callee)
        return recursive

    def recursion_count(self, name: str) -> int:
        """Number of call sites in ``name`` that may recurse back to it."""
        recursive = self.recursive_procs()
        if name not in recursive:
            return 0
        return sum(
            1
            for e in self.cfgs[name].call_sites()
            if e.op.proc == name or e.op.proc in recursive
        )


def build_icfg(program: A.Program) -> ICFG:
    return ICFG({p.name: build_cfg(p) for p in program.procedures})


def cfg_uses_prev(cfg: CFG) -> bool:
    for edge in cfg.edges:
        op = edge.op
        if isinstance(op, OpStorePrev):
            return True
        if isinstance(op, OpAssignPtr) and op.kind == "prev":
            return True
    return False


def icfg_uses_prev(icfg: ICFG) -> bool:
    """True iff any op in any CFG touches ``prev`` — the DLL-mode gate."""
    return any(cfg_uses_prev(c) for c in icfg.cfgs.values())
