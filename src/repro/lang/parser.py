"""Recursive-descent parser for LISL.

Grammar (see :mod:`repro.lang` for the surface description)::

    program   := proc*
    proc      := "proc" ID "(" params? ")" "returns" "(" params? ")" block
    params    := param ("," param)*          param := ID ":" ("list"|"int")
    block     := "{" local* stmt* "}"
    local     := "local" ID ("," ID)* ":" ("list"|"int") ";"
    stmt      := simple ";" | if | while | "assert" spec ";" | "assume" spec ";"
    simple    := lhs "=" rhs | ID "->" ("next"|"prev"|"data") "=" expr
               | "(" ID ("," ID)* ")" "=" ID "(" args ")" | "skip"
    rhs       := "new" | expr | ID "(" args ")"
    expr      := additive over atoms; atom := NUM | "NULL" | ID
               | ID "->" ("next"|"prev"|"data") | "(" expr ")" | "-" atom
    cond      := disjunction of conjunctions of (possibly negated) atoms;
                 atomcond := expr ("=="|"!="|"<"|"<="|">"|">=") expr
    spec      := specatom ("&&" specatom)*
    specatom  := "sorted" "(" ID ")" | "ms_eq" "(" ID "," ID ")"
               | "equal" "(" ID "," ID ")" | atomcond
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang import ast as A
from repro.lang.lexer import Token, tokenize


class ParseError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.message = message
        self.line = line


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.line)
        return tok

    def expect_id(self) -> Token:
        tok = self.next()
        if tok.kind != "id":
            raise ParseError(f"expected identifier, found {tok.text!r}", tok.line)
        return tok

    def at(self, text: str) -> bool:
        return self.peek().text == text

    # -- grammar --------------------------------------------------------------

    def program(self) -> A.Program:
        procs = []
        while not self.at(""):
            procs.append(self.procedure())
        return A.Program(procs)

    def procedure(self) -> A.Procedure:
        start = self.expect("proc")
        name = self.expect_id().text
        self.expect("(")
        inputs = self.params()
        self.expect(")")
        self.expect("returns")
        self.expect("(")
        outputs = self.params()
        self.expect(")")
        locals_, body = self.block()
        return A.Procedure(name, inputs, outputs, locals_, body, start.line)

    def params(self) -> List[A.Param]:
        out: List[A.Param] = []
        if self.at(")"):
            return out
        while True:
            first = self.expect_id()
            names = [(first.text, first.line)]
            while self.at(","):
                # lookahead: "a, b: t" groups names; "a: t, b: u" starts anew
                save = self.pos
                self.next()
                if self.peek().kind == "id" and self.peek(1).text in (",", ":"):
                    tok = self.expect_id()
                    names.append((tok.text, tok.line))
                else:
                    self.pos = save
                    break
            self.expect(":")
            typ = self.type_name()
            out.extend(A.Param(n, typ, line=ln) for n, ln in names)
            if self.at(","):
                self.next()
            else:
                break
        return out

    def type_name(self) -> str:
        tok = self.next()
        if tok.text not in (A.LIST, A.INT):
            raise ParseError(f"expected a type, found {tok.text!r}", tok.line)
        return tok.text

    def block(self) -> Tuple[List[A.Param], List[A.Stmt]]:
        self.expect("{")
        locals_: List[A.Param] = []
        while self.at("local"):
            self.next()
            first = self.expect_id()
            names = [(first.text, first.line)]
            while self.at(","):
                self.next()
                tok = self.expect_id()
                names.append((tok.text, tok.line))
            self.expect(":")
            typ = self.type_name()
            self.expect(";")
            locals_.extend(A.Param(n, typ, line=ln) for n, ln in names)
        body: List[A.Stmt] = []
        while not self.at("}"):
            body.append(self.statement())
        self.expect("}")
        return locals_, body

    def inner_block(self) -> List[A.Stmt]:
        self.expect("{")
        body: List[A.Stmt] = []
        while not self.at("}"):
            body.append(self.statement())
        self.expect("}")
        return body

    def statement(self) -> A.Stmt:
        tok = self.peek()
        if tok.text == "if":
            return self.if_stmt()
        if tok.text == "while":
            return self.while_stmt()
        if tok.text == "assert":
            self.next()
            spec = self.spec_formula()
            self.expect(";")
            return A.Assert(line=tok.line, formula=spec)
        if tok.text == "assume":
            self.next()
            spec = self.spec_formula()
            self.expect(";")
            return A.Assume(line=tok.line, formula=spec)
        if tok.text == "skip":
            self.next()
            self.expect(";")
            return A.Skip(line=tok.line)
        if tok.text == "(":
            return self.tuple_call()
        # `p(x);` at statement level: a call whose results are discarded.
        # Unambiguous -- an assignment continues with `=` or `->` instead.
        if tok.kind == "id" and self.peek(1).text == "(":
            proc = self.expect_id().text
            self.expect("(")
            args = self.call_args()
            self.expect(")")
            self.expect(";")
            return A.Call(line=tok.line, targets=(), proc=proc, args=tuple(args))
        return self.assignment()

    def if_stmt(self) -> A.If:
        tok = self.expect("if")
        self.expect("(")
        cond = self.condition()
        self.expect(")")
        then_body = self.inner_block()
        else_body: List[A.Stmt] = []
        if self.at("else"):
            self.next()
            if self.at("if"):
                else_body = [self.if_stmt()]
            else:
                else_body = self.inner_block()
        return A.If(line=tok.line, cond=cond, then_body=then_body, else_body=else_body)

    def while_stmt(self) -> A.While:
        tok = self.expect("while")
        self.expect("(")
        cond = self.condition()
        self.expect(")")
        body = self.inner_block()
        return A.While(line=tok.line, cond=cond, body=body)

    def tuple_call(self) -> A.Call:
        tok = self.expect("(")
        targets: List[str] = []
        if not self.at(")"):  # `() = p(x);` discards every result
            targets.append(self.expect_id().text)
            while self.at(","):
                self.next()
                targets.append(self.expect_id().text)
        self.expect(")")
        self.expect("=")
        proc = self.expect_id().text
        self.expect("(")
        args = self.call_args()
        self.expect(")")
        self.expect(";")
        return A.Call(line=tok.line, targets=tuple(targets), proc=proc, args=tuple(args))

    def assignment(self) -> A.Stmt:
        tok = self.expect_id()
        name = tok.text
        if self.at("->"):
            self.next()
            field = self.next()
            self.expect("=")
            value = self.expression()
            self.expect(";")
            if field.text == "next":
                return A.StoreNext(line=tok.line, target=name, value=value)
            if field.text == "prev":
                return A.StorePrev(line=tok.line, target=name, value=value)
            if field.text == "data":
                return A.StoreData(line=tok.line, target=name, value=value)
            raise ParseError(f"unknown field {field.text!r}", field.line)
        self.expect("=")
        # Call?  ID "(" only when followed by a call argument shape.
        if self.peek().kind == "id" and self.peek(1).text == "(":
            proc = self.expect_id().text
            self.expect("(")
            args = self.call_args()
            self.expect(")")
            self.expect(";")
            return A.Call(line=tok.line, targets=(name,), proc=proc, args=tuple(args))
        value = self.expression()
        self.expect(";")
        return A.Assign(line=tok.line, target=name, value=value)

    def call_args(self) -> List[A.Expr]:
        args: List[A.Expr] = []
        if self.at(")"):
            return args
        args.append(self.expression())
        while self.at(","):
            self.next()
            args.append(self.expression())
        return args

    # -- expressions -------------------------------------------------------------

    def expression(self) -> A.Expr:
        left = self.term()
        while self.peek().text in ("+", "-"):
            op = self.next().text
            right = self.term()
            left = A.BinOp(op, left, right)
        return left

    def term(self) -> A.Expr:
        left = self.atom()
        while self.at("*"):
            op = self.next().text
            right = self.atom()
            left = A.BinOp(op, left, right)
        return left

    def atom(self) -> A.Expr:
        tok = self.next()
        if tok.text == "new":
            return A.NewCell()
        if tok.text == "NULL":
            return A.Null()
        if tok.kind == "num":
            return A.IntLit(int(tok.text))
        if tok.text == "-":
            # A negative literal is one token pair: fold it into the
            # IntLit so `-3` round-trips through the pretty-printer
            # (anything else keeps the explicit `0 - x` form).
            if self.peek().kind == "num":
                return A.IntLit(-int(self.next().text))
            inner = self.atom()
            return A.BinOp("-", A.IntLit(0), inner)
        if tok.text == "(":
            inner = self.expression()
            self.expect(")")
            return inner
        if tok.kind == "id":
            if self.at("->"):
                self.next()
                field = self.next()
                if field.text == "next":
                    return A.NextOf(A.Var(tok.text))
                if field.text == "prev":
                    return A.PrevOf(A.Var(tok.text))
                if field.text == "data":
                    return A.DataOf(A.Var(tok.text))
                raise ParseError(f"unknown field {field.text!r}", field.line)
            return A.Var(tok.text)
        raise ParseError(f"unexpected token {tok.text!r}", tok.line)

    # -- conditions ----------------------------------------------------------------

    def condition(self) -> A.Cond:
        left = self.conjunction()
        while self.at("||"):
            self.next()
            right = self.conjunction()
            left = A.BoolOp("||", left, right)
        return left

    def conjunction(self) -> A.Cond:
        left = self.cond_atom()
        while self.at("&&"):
            self.next()
            right = self.cond_atom()
            left = A.BoolOp("&&", left, right)
        return left

    def cond_atom(self) -> A.Cond:
        if self.at("!"):
            self.next()
            return A.NotCond(self.cond_atom())
        if self.at("("):
            # Could be a parenthesized condition or an arithmetic group;
            # try condition first, fall back to comparison parsing.
            save = self.pos
            self.next()
            try:
                inner = self.condition()
                self.expect(")")
                return inner
            except ParseError:
                self.pos = save
        left = self.expression()
        op_tok = self.next()
        if op_tok.text not in ("==", "!=", "<", "<=", ">", ">="):
            raise ParseError(
                f"expected comparison operator, found {op_tok.text!r}", op_tok.line
            )
        right = self.expression()
        if _is_pointer_shape(left) or _is_pointer_shape(right):
            if op_tok.text not in ("==", "!="):
                raise ParseError("pointers compare only with == or !=", op_tok.line)
            return A.PtrCmp(op_tok.text, left, right)
        return A.DataCmp(op_tok.text, left, right)

    # -- spec formulas ---------------------------------------------------------------

    def spec_formula(self) -> A.SpecFormula:
        atoms = [self.spec_atom()]
        while self.at("&&"):
            self.next()
            atoms.append(self.spec_atom())
        return A.SpecFormula(tuple(atoms))

    def spec_atom(self) -> A.SpecAtom:
        tok = self.peek()
        if tok.kind == "id" and tok.text in ("sorted", "ms_eq", "equal"):
            kind = self.next().text
            self.expect("(")
            args = [self.expect_id().text]
            while self.at(","):
                self.next()
                args.append(self.expect_id().text)
            self.expect(")")
            expected = 1 if kind == "sorted" else 2
            if len(args) != expected:
                raise ParseError(f"{kind} expects {expected} argument(s)", tok.line)
            return A.SpecAtom(kind, tuple(args))
        cond = self.cond_atom()
        if not isinstance(cond, A.DataCmp):
            raise ParseError("spec atoms must be data comparisons", tok.line)
        return A.SpecAtom("data", (), cond)


def _is_pointer_shape(expr: A.Expr) -> bool:
    return isinstance(expr, (A.Null, A.NextOf, A.NewCell))


def parse_program(source: str) -> A.Program:
    """Parse LISL source into an (untyped) AST."""
    return _Parser(tokenize(source)).program()


def parse_procedure(source: str) -> A.Procedure:
    program = parse_program(source)
    if len(program.procedures) != 1:
        raise ParseError("expected exactly one procedure", 1)
    return program.procedures[0]
