"""AST normalization: three-address form for the statement alphabet of §2.

After this pass:

- call arguments are plain variables (nested expressions are lifted into
  fresh temporaries ``$a<i>``);
- list-typed *formal parameters are never reassigned*: a procedure that
  assigns one of its list inputs has every use renamed to a fresh local
  (``x$in``) initialized from the formal at entry.  Parameters are passed
  by value so this is semantics-preserving, and it is what makes the
  local-heap return composition sound: the callee's exit label for a
  formal is trusted to still name the *entry* cell, so the caller's
  actual pointer can re-attach to it (see ``core/localheap.py``);
- ``p = <complex data expr>`` stays (the transformer handles affine terms
  with ``q->data`` occurrences directly);
- conditions keep their boolean structure; dereferences *inside* conditions
  are lifted by the CFG builder (which controls evaluation points), not
  here.

Fresh temporaries use ``$`` which cannot appear in source identifiers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.lang import ast as A


class _Normalizer:
    def __init__(self, proc: A.Procedure):
        self.proc = proc
        self.counter = 0
        self.new_locals: List[A.Param] = []

    def fresh(self, typ: str) -> str:
        self.counter += 1
        name = f"$a{self.counter}"
        self.new_locals.append(A.Param(name, typ))
        return name

    def normalize_body(self, body: List[A.Stmt]) -> List[A.Stmt]:
        out: List[A.Stmt] = []
        for stmt in body:
            out.extend(self.normalize_stmt(stmt))
        return out

    def normalize_stmt(self, stmt: A.Stmt) -> List[A.Stmt]:
        if isinstance(stmt, A.Call):
            pre: List[A.Stmt] = []
            args = []
            types = {p.name: p.type for p in self.proc.all_vars()}
            types.update({p.name: p.type for p in self.new_locals})
            for arg in stmt.args:
                if isinstance(arg, A.Var):
                    args.append(arg)
                    continue
                typ = A.LIST if isinstance(arg, (A.Null, A.NextOf, A.PrevOf)) else A.INT
                tmp = self.fresh(typ)
                pre.append(A.Assign(line=stmt.line, target=tmp, value=arg))
                args.append(A.Var(tmp))
            return pre + [
                A.Call(
                    line=stmt.line,
                    targets=stmt.targets,
                    proc=stmt.proc,
                    args=tuple(args),
                )
            ]
        if isinstance(stmt, A.If):
            return [
                A.If(
                    line=stmt.line,
                    cond=stmt.cond,
                    then_body=self.normalize_body(stmt.then_body),
                    else_body=self.normalize_body(stmt.else_body),
                )
            ]
        if isinstance(stmt, A.While):
            return [
                A.While(
                    line=stmt.line,
                    cond=stmt.cond,
                    body=self.normalize_body(stmt.body),
                )
            ]
        return [stmt]


# ---------------------------------------------------------------------------
# Formal-parameter protection


def _assigned_vars(body: Sequence[A.Stmt]) -> Set[str]:
    out: Set[str] = set()
    for stmt in body:
        if isinstance(stmt, A.Assign):
            out.add(stmt.target)
        elif isinstance(stmt, A.Call):
            out.update(stmt.targets)
        elif isinstance(stmt, A.If):
            out |= _assigned_vars(stmt.then_body)
            out |= _assigned_vars(stmt.else_body)
        elif isinstance(stmt, A.While):
            out |= _assigned_vars(stmt.body)
    return out


def _rename_expr(expr: A.Expr, ren: Dict[str, str]) -> A.Expr:
    if isinstance(expr, A.Var):
        return A.Var(ren.get(expr.name, expr.name))
    if isinstance(expr, A.NextOf):
        return A.NextOf(_rename_expr(expr.base, ren))
    if isinstance(expr, A.PrevOf):
        return A.PrevOf(_rename_expr(expr.base, ren))
    if isinstance(expr, A.DataOf):
        return A.DataOf(_rename_expr(expr.base, ren))
    if isinstance(expr, A.BinOp):
        return A.BinOp(
            expr.op, _rename_expr(expr.left, ren), _rename_expr(expr.right, ren)
        )
    return expr


def _rename_cond(cond: A.Cond, ren: Dict[str, str]) -> A.Cond:
    if isinstance(cond, (A.PtrCmp, A.DataCmp)):
        return type(cond)(
            cond.op, _rename_expr(cond.left, ren), _rename_expr(cond.right, ren)
        )
    if isinstance(cond, A.BoolOp):
        return A.BoolOp(
            cond.op, _rename_cond(cond.left, ren), _rename_cond(cond.right, ren)
        )
    if isinstance(cond, A.NotCond):
        return A.NotCond(_rename_cond(cond.inner, ren))
    return cond


def _rename_formula(formula: A.SpecFormula, ren: Dict[str, str]) -> A.SpecFormula:
    atoms = []
    for atom in formula.atoms:
        atoms.append(
            A.SpecAtom(
                atom.kind,
                tuple(ren.get(a, a) for a in atom.args),
                _rename_cond(atom.cmp, ren) if atom.cmp is not None else None,
            )
        )
    return A.SpecFormula(tuple(atoms))


def _rename_body(body: Sequence[A.Stmt], ren: Dict[str, str]) -> List[A.Stmt]:
    out: List[A.Stmt] = []
    for stmt in body:
        if isinstance(stmt, A.Assign):
            out.append(
                A.Assign(
                    line=stmt.line,
                    target=ren.get(stmt.target, stmt.target),
                    value=_rename_expr(stmt.value, ren),
                )
            )
        elif isinstance(stmt, (A.StoreNext, A.StorePrev, A.StoreData)):
            out.append(
                type(stmt)(
                    line=stmt.line,
                    target=ren.get(stmt.target, stmt.target),
                    value=_rename_expr(stmt.value, ren),
                )
            )
        elif isinstance(stmt, A.Call):
            out.append(
                A.Call(
                    line=stmt.line,
                    targets=tuple(ren.get(t, t) for t in stmt.targets),
                    proc=stmt.proc,
                    args=tuple(_rename_expr(a, ren) for a in stmt.args),
                )
            )
        elif isinstance(stmt, A.If):
            out.append(
                A.If(
                    line=stmt.line,
                    cond=_rename_cond(stmt.cond, ren),
                    then_body=_rename_body(stmt.then_body, ren),
                    else_body=_rename_body(stmt.else_body, ren),
                )
            )
        elif isinstance(stmt, A.While):
            out.append(
                A.While(
                    line=stmt.line,
                    cond=_rename_cond(stmt.cond, ren),
                    body=_rename_body(stmt.body, ren),
                )
            )
        elif isinstance(stmt, (A.Assert, A.Assume)):
            out.append(
                type(stmt)(line=stmt.line, formula=_rename_formula(stmt.formula, ren))
            )
        else:
            out.append(stmt)
    return out


def _protect_formals(proc: A.Procedure) -> Tuple[List[A.Stmt], List[A.Param]]:
    """Rename every *assigned* list formal to a fresh local, prepending
    ``x$in = x``.  Afterwards no list input is ever the target of an
    assignment, so a formal's exit node always names the entry cell."""
    assigned = _assigned_vars(proc.body)
    protected = [
        p for p in proc.inputs if p.type == A.LIST and p.name in assigned
    ]
    if not protected:
        return list(proc.body), []
    ren = {p.name: f"{p.name}$in" for p in protected}
    new_locals = [A.Param(ren[p.name], A.LIST) for p in protected]
    prologue: List[A.Stmt] = [
        A.Assign(line=proc.line, target=ren[p.name], value=A.Var(p.name))
        for p in protected
    ]
    return prologue + _rename_body(proc.body, ren), new_locals


def normalize_procedure(proc: A.Procedure) -> A.Procedure:
    body, protect_locals = _protect_formals(proc)
    proc = A.Procedure(
        proc.name,
        proc.inputs,
        proc.outputs,
        list(proc.locals) + protect_locals,
        body,
        proc.line,
    )
    normalizer = _Normalizer(proc)
    body = normalizer.normalize_body(proc.body)
    return A.Procedure(
        proc.name,
        proc.inputs,
        proc.outputs,
        list(proc.locals) + normalizer.new_locals,
        body,
        proc.line,
    )


def normalize_program(program: A.Program) -> A.Program:
    return A.Program([normalize_procedure(p) for p in program.procedures])
