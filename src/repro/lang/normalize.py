"""AST normalization: three-address form for the statement alphabet of §2.

After this pass:

- call arguments are plain variables (nested expressions are lifted into
  fresh temporaries ``$a<i>``);
- ``p = <complex data expr>`` stays (the transformer handles affine terms
  with ``q->data`` occurrences directly);
- conditions keep their boolean structure; dereferences *inside* conditions
  are lifted by the CFG builder (which controls evaluation points), not
  here.

Fresh temporaries use ``$`` which cannot appear in source identifiers.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.lang import ast as A


class _Normalizer:
    def __init__(self, proc: A.Procedure):
        self.proc = proc
        self.counter = 0
        self.new_locals: List[A.Param] = []

    def fresh(self, typ: str) -> str:
        self.counter += 1
        name = f"$a{self.counter}"
        self.new_locals.append(A.Param(name, typ))
        return name

    def normalize_body(self, body: List[A.Stmt]) -> List[A.Stmt]:
        out: List[A.Stmt] = []
        for stmt in body:
            out.extend(self.normalize_stmt(stmt))
        return out

    def normalize_stmt(self, stmt: A.Stmt) -> List[A.Stmt]:
        if isinstance(stmt, A.Call):
            pre: List[A.Stmt] = []
            args = []
            types = {p.name: p.type for p in self.proc.all_vars()}
            types.update({p.name: p.type for p in self.new_locals})
            for arg in stmt.args:
                if isinstance(arg, A.Var):
                    args.append(arg)
                    continue
                typ = A.LIST if isinstance(arg, (A.Null, A.NextOf)) else A.INT
                tmp = self.fresh(typ)
                pre.append(A.Assign(line=stmt.line, target=tmp, value=arg))
                args.append(A.Var(tmp))
            return pre + [
                A.Call(
                    line=stmt.line,
                    targets=stmt.targets,
                    proc=stmt.proc,
                    args=tuple(args),
                )
            ]
        if isinstance(stmt, A.If):
            return [
                A.If(
                    line=stmt.line,
                    cond=stmt.cond,
                    then_body=self.normalize_body(stmt.then_body),
                    else_body=self.normalize_body(stmt.else_body),
                )
            ]
        if isinstance(stmt, A.While):
            return [
                A.While(
                    line=stmt.line,
                    cond=stmt.cond,
                    body=self.normalize_body(stmt.body),
                )
            ]
        return [stmt]


def normalize_procedure(proc: A.Procedure) -> A.Procedure:
    normalizer = _Normalizer(proc)
    body = normalizer.normalize_body(proc.body)
    return A.Procedure(
        proc.name,
        proc.inputs,
        proc.outputs,
        list(proc.locals) + normalizer.new_locals,
        body,
        proc.line,
    )


def normalize_program(program: A.Program) -> A.Program:
    return A.Program([normalize_procedure(p) for p in program.procedures])
