"""LISL: the list/scalar language of the paper (§2), with frontend.

The paper analyzes C programs (through Frama-C) restricted to
singly-linked lists with one integer data field and integer scalars.  LISL
is a small concrete language generating exactly the paper's statement
alphabet:

- pointer statements ``p = NULL | q | q->next | new``, ``p->next = q``;
- data statements ``p->data = t``, ``d = t`` with ``t`` affine over data
  variables and ``q->data`` terms;
- conditions on pointers (``p == q``) and on data;
- ``assert``/``assume``, ``if``/``while``, and procedure calls
  ``(y, ...) = Q(x, ...)`` with call-by-value parameters.

Pipeline: :mod:`lexer` → :mod:`parser` → :mod:`typecheck` →
:mod:`normalize` (three-address form: dereferences lifted out of
conditions and nested expressions) → :mod:`cfg` (intra-procedural CFGs and
the ICFG).  :mod:`benchlib` holds the paper's benchmark programs.
"""

from repro.lang.ast import Program, Procedure
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck_program, TypeError_
from repro.lang.normalize import normalize_program
from repro.lang.cfg import build_icfg, ICFG, CFG

__all__ = [
    "Program",
    "Procedure",
    "parse_program",
    "typecheck_program",
    "TypeError_",
    "normalize_program",
    "build_icfg",
    "ICFG",
    "CFG",
]
