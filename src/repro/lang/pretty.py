"""Pretty-printer for LISL ASTs.

Produces source text that the frontend round-trips exactly::

    typecheck_program(parse_program(pretty_program(p))) == p

for any well-typed program ``p`` (the comparison goes through the type
checker because the parser alone cannot reclassify ``p == q`` between
pointer and data comparison -- declared types decide that).  The fuzzing
harness (:mod:`repro.fuzz`) relies on this property to store corpus
entries as plain source files, and :mod:`tests.test_fuzz_progen` checks
it on generated programs.

Printing conventions (all accepted by the parser):

- every ``BinOp`` and boolean connective is parenthesized, so the tree
  structure survives re-parsing without precedence reasoning;
- negative integer literals print as ``-3`` (the parser folds a unary
  minus on a literal back into one ``IntLit``);
- calls print as ``x = p(a);`` for one target, ``(x, y) = p(a);`` for
  several, and ``p(a);`` for none (a call whose results are discarded);
- an ``If`` with an empty else branch omits the ``else`` block.
"""

from __future__ import annotations

from typing import List

from repro.lang import ast as A


def pretty_expr(expr: A.Expr) -> str:
    if isinstance(expr, A.Var):
        return expr.name
    if isinstance(expr, A.Null):
        return "NULL"
    if isinstance(expr, A.NewCell):
        return "new"
    if isinstance(expr, A.NextOf):
        return f"{expr.base.name}->next"
    if isinstance(expr, A.PrevOf):
        return f"{expr.base.name}->prev"
    if isinstance(expr, A.DataOf):
        return f"{expr.base.name}->data"
    if isinstance(expr, A.IntLit):
        return str(expr.value)
    if isinstance(expr, A.BinOp):
        return f"({pretty_expr(expr.left)} {expr.op} {pretty_expr(expr.right)})"
    raise ValueError(f"cannot print expression {expr!r}")


def pretty_cond(cond: A.Cond) -> str:
    if isinstance(cond, (A.PtrCmp, A.DataCmp)):
        return f"{pretty_expr(cond.left)} {cond.op} {pretty_expr(cond.right)}"
    if isinstance(cond, A.BoolOp):
        return f"({pretty_cond(cond.left)} {cond.op} {pretty_cond(cond.right)})"
    if isinstance(cond, A.NotCond):
        return f"!({pretty_cond(cond.inner)})"
    raise ValueError(f"cannot print condition {cond!r}")


def pretty_spec(formula: A.SpecFormula) -> str:
    parts: List[str] = []
    for atom in formula.atoms:
        if atom.kind == "data":
            parts.append(
                f"{pretty_expr(atom.cmp.left)} {atom.cmp.op} "
                f"{pretty_expr(atom.cmp.right)}"
            )
        else:
            parts.append(f"{atom.kind}({', '.join(atom.args)})")
    return " && ".join(parts)


def _pretty_stmt(stmt: A.Stmt, indent: int, out: List[str]) -> None:
    pad = "  " * indent
    if isinstance(stmt, A.Skip):
        out.append(f"{pad}skip;")
        return
    if isinstance(stmt, A.Assign):
        out.append(f"{pad}{stmt.target} = {pretty_expr(stmt.value)};")
        return
    if isinstance(stmt, A.StoreNext):
        out.append(f"{pad}{stmt.target}->next = {pretty_expr(stmt.value)};")
        return
    if isinstance(stmt, A.StorePrev):
        out.append(f"{pad}{stmt.target}->prev = {pretty_expr(stmt.value)};")
        return
    if isinstance(stmt, A.StoreData):
        out.append(f"{pad}{stmt.target}->data = {pretty_expr(stmt.value)};")
        return
    if isinstance(stmt, A.Call):
        args = ", ".join(pretty_expr(a) for a in stmt.args)
        if not stmt.targets:
            out.append(f"{pad}{stmt.proc}({args});")
        elif len(stmt.targets) == 1:
            out.append(f"{pad}{stmt.targets[0]} = {stmt.proc}({args});")
        else:
            lhs = ", ".join(stmt.targets)
            out.append(f"{pad}({lhs}) = {stmt.proc}({args});")
        return
    if isinstance(stmt, A.If):
        out.append(f"{pad}if ({pretty_cond(stmt.cond)}) {{")
        for inner in stmt.then_body:
            _pretty_stmt(inner, indent + 1, out)
        if stmt.else_body:
            out.append(f"{pad}}} else {{")
            for inner in stmt.else_body:
                _pretty_stmt(inner, indent + 1, out)
        out.append(f"{pad}}}")
        return
    if isinstance(stmt, A.While):
        out.append(f"{pad}while ({pretty_cond(stmt.cond)}) {{")
        for inner in stmt.body:
            _pretty_stmt(inner, indent + 1, out)
        out.append(f"{pad}}}")
        return
    if isinstance(stmt, A.Assert):
        out.append(f"{pad}assert {pretty_spec(stmt.formula)};")
        return
    if isinstance(stmt, A.Assume):
        out.append(f"{pad}assume {pretty_spec(stmt.formula)};")
        return
    raise ValueError(f"cannot print statement {stmt!r}")


def _pretty_params(params: List[A.Param]) -> str:
    return ", ".join(f"{p.name}: {p.type}" for p in params)


def pretty_procedure(proc: A.Procedure) -> str:
    out: List[str] = [
        f"proc {proc.name}({_pretty_params(proc.inputs)}) "
        f"returns ({_pretty_params(proc.outputs)}) {{"
    ]
    for p in proc.locals:
        out.append(f"  local {p.name}: {p.type};")
    for stmt in proc.body:
        _pretty_stmt(stmt, 1, out)
    out.append("}")
    return "\n".join(out)


def pretty_program(program: A.Program) -> str:
    return "\n\n".join(pretty_procedure(p) for p in program.procedures) + "\n"
