"""Abstract syntax of LISL.

Expressions
-----------
- pointer expressions: ``Var`` (of list type), ``Null``, ``NextOf(p)``;
- data expressions: integer literals, ``Var`` (of int type), ``DataOf(p)``,
  and affine combinations via ``BinOp`` (+, -, and * by a constant);
- conditions: pointer (in)equality, data comparisons, boolean combinations.

Statements
----------
Assignments, heap writes, ``new``, calls with tuple results, ``if``,
``while``, ``assert``/``assume`` and ``skip``.  ``assert``/``assume`` take
:class:`SpecFormula` -- a conjunction of shape atoms (``ls``-described
graphs are built by the assertion layer) and data formulas, plus the
derived predicates used in §6 (``sorted``, ``ms_eq``, ``equal``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

LIST = "list"
INT = "int"


# ---------------------------------------------------------------------------
# Expressions


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Var(Expr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Null(Expr):
    def __str__(self) -> str:
        return "NULL"


@dataclass(frozen=True)
class NewCell(Expr):
    def __str__(self) -> str:
        return "new"


@dataclass(frozen=True)
class NextOf(Expr):
    base: Var

    def __str__(self) -> str:
        return f"{self.base}->next"


@dataclass(frozen=True)
class PrevOf(Expr):
    base: Var

    def __str__(self) -> str:
        return f"{self.base}->prev"


@dataclass(frozen=True)
class IntLit(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class DataOf(Expr):
    base: Var

    def __str__(self) -> str:
        return f"{self.base}->data"


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # + - *
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


# ---------------------------------------------------------------------------
# Conditions


@dataclass(frozen=True)
class Cond:
    pass


@dataclass(frozen=True)
class PtrCmp(Cond):
    op: str  # == or !=
    left: Expr  # pointer expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class DataCmp(Cond):
    op: str  # == != < <= > >=
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class BoolOp(Cond):
    op: str  # && or ||
    left: Cond
    right: Cond

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class NotCond(Cond):
    inner: Cond

    def __str__(self) -> str:
        return f"!({self.inner})"


# ---------------------------------------------------------------------------
# Spec formulas (assert / assume, §6)


@dataclass(frozen=True)
class SpecAtom:
    """Derived predicates: sorted(x), ms_eq(x, y), equal(x, y), or a data
    comparison over program variables (and len(x) pseudo-terms)."""

    kind: str  # "sorted" | "ms_eq" | "equal" | "data"
    args: Tuple[str, ...] = ()
    cmp: Optional[DataCmp] = None

    def __str__(self) -> str:
        if self.kind == "data":
            return str(self.cmp)
        return f"{self.kind}({', '.join(self.args)})"


@dataclass(frozen=True)
class SpecFormula:
    atoms: Tuple[SpecAtom, ...]

    def __str__(self) -> str:
        return " && ".join(str(a) for a in self.atoms) if self.atoms else "true"


# ---------------------------------------------------------------------------
# Statements


@dataclass
class Stmt:
    line: int = field(default=0, compare=False)


@dataclass
class Assign(Stmt):
    """``target = value`` where value is a pointer/data expression or new."""

    target: str = ""
    value: Expr = None

    def __str__(self) -> str:
        return f"{self.target} = {self.value};"


@dataclass
class StoreNext(Stmt):
    """``p->next = q`` (q a pointer variable or NULL)."""

    target: str = ""
    value: Expr = None

    def __str__(self) -> str:
        return f"{self.target}->next = {self.value};"


@dataclass
class StorePrev(Stmt):
    """``p->prev = q`` (q a pointer variable or NULL)."""

    target: str = ""
    value: Expr = None

    def __str__(self) -> str:
        return f"{self.target}->prev = {self.value};"


@dataclass
class StoreData(Stmt):
    """``p->data = t``."""

    target: str = ""
    value: Expr = None

    def __str__(self) -> str:
        return f"{self.target}->data = {self.value};"


@dataclass
class Call(Stmt):
    """``(y1, ..., yk) = proc(x1, ..., xn)``."""

    targets: Tuple[str, ...] = ()
    proc: str = ""
    args: Tuple[Expr, ...] = ()

    def __str__(self) -> str:
        lhs = ", ".join(self.targets)
        rhs = ", ".join(str(a) for a in self.args)
        return f"({lhs}) = {self.proc}({rhs});"


@dataclass
class If(Stmt):
    cond: Cond = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Cond = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Assert(Stmt):
    formula: SpecFormula = None


@dataclass
class Assume(Stmt):
    formula: SpecFormula = None


@dataclass
class Skip(Stmt):
    pass


# ---------------------------------------------------------------------------
# Procedures and programs


@dataclass
class Param:
    name: str
    type: str  # LIST or INT
    # Declaration line (0 when synthesized); excluded from equality so
    # normalizer-introduced params compare by name and type alone.
    line: int = field(default=0, compare=False)


@dataclass
class Procedure:
    name: str
    inputs: List[Param]
    outputs: List[Param]
    locals: List[Param]
    body: List[Stmt]
    line: int = field(default=0, compare=False)

    def all_vars(self) -> List[Param]:
        return list(self.inputs) + list(self.outputs) + list(self.locals)

    def pointer_vars(self) -> List[str]:
        return [p.name for p in self.all_vars() if p.type == LIST]

    def data_vars(self) -> List[str]:
        return [p.name for p in self.all_vars() if p.type == INT]


@dataclass
class Program:
    procedures: List[Procedure]

    def proc(self, name: str) -> Procedure:
        for p in self.procedures:
            if p.name == name:
                return p
        raise KeyError(f"no procedure named {name!r}")

    def names(self) -> List[str]:
        return [p.name for p in self.procedures]


# ---------------------------------------------------------------------------
# DLL detection

def _expr_uses_prev(expr) -> bool:
    if isinstance(expr, PrevOf):
        return True
    if isinstance(expr, BinOp):
        return _expr_uses_prev(expr.left) or _expr_uses_prev(expr.right)
    return False


def _cond_uses_prev(cond) -> bool:
    if isinstance(cond, (PtrCmp, DataCmp)):
        return _expr_uses_prev(cond.left) or _expr_uses_prev(cond.right)
    if isinstance(cond, BoolOp):
        return _cond_uses_prev(cond.left) or _cond_uses_prev(cond.right)
    if isinstance(cond, NotCond):
        return _cond_uses_prev(cond.inner)
    return False


def _stmts_use_prev(body) -> bool:
    for stmt in body:
        if isinstance(stmt, StorePrev):
            return True
        if isinstance(stmt, (Assign, StoreNext, StoreData)):
            if _expr_uses_prev(stmt.value):
                return True
        elif isinstance(stmt, Call):
            if any(_expr_uses_prev(a) for a in stmt.args):
                return True
        elif isinstance(stmt, If):
            if (
                _cond_uses_prev(stmt.cond)
                or _stmts_use_prev(stmt.then_body)
                or _stmts_use_prev(stmt.else_body)
            ):
                return True
        elif isinstance(stmt, While):
            if _cond_uses_prev(stmt.cond) or _stmts_use_prev(stmt.body):
                return True
    return False


def uses_prev(program: "Program") -> bool:
    """True iff any procedure touches the ``prev`` field.

    This is the gate for every DLL code path: prev-free programs must
    analyze bit-identically to the singly-linked seed analysis.
    """
    return any(_stmts_use_prev(p.body) for p in program.procedures)
