"""Finite sets of non-isomorphic abstract heaps: AHS(k, AW) (Def. 3.3).

The join of two heap sets unions them, joining the values of heaps with
isomorphic graphs.  The number of distinct backbones is bounded for
programs over singly-linked lists (bounded crucial nodes, [19]), so the
widening only needs to widen per-graph values.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.datawords.base import LDWDomain
from repro.shape.abstract_heap import AbstractHeap


class HeapSet:
    """An immutable set of abstract heaps keyed by canonical graph."""

    __slots__ = ("heaps", "_stable_hash")

    def __init__(self, heaps: Dict[Tuple, AbstractHeap]):
        self.heaps: Dict[Tuple, AbstractHeap] = heaps
        self._stable_hash = None  # filled by repro.engine.canon.heapset_hash

    # -- constructors -------------------------------------------------------------

    @staticmethod
    def bottom() -> "HeapSet":
        return HeapSet({})

    @staticmethod
    def of(domain: LDWDomain, heaps: Iterable[AbstractHeap]) -> "HeapSet":
        out: Dict[Tuple, AbstractHeap] = {}
        for heap in heaps:
            if heap.is_bottom(domain):
                continue
            canon = heap.canonicalize(domain)
            key = canon.graph.key()
            existing = out.get(key)
            out[key] = canon if existing is None else existing.join(canon, domain)
        return HeapSet(out)

    @staticmethod
    def single(domain: LDWDomain, heap: AbstractHeap) -> "HeapSet":
        return HeapSet.of(domain, [heap])

    # -- queries -------------------------------------------------------------------

    def is_bottom(self) -> bool:
        return not self.heaps

    def __len__(self) -> int:
        return len(self.heaps)

    def __iter__(self):
        return iter(self.heaps.values())

    # -- lattice ---------------------------------------------------------------------

    def leq(self, other: "HeapSet", domain: LDWDomain) -> bool:
        for key, heap in self.heaps.items():
            match = other.heaps.get(key)
            if match is None or not domain.leq(heap.value, match.value):
                return False
        return True

    def join(self, other: "HeapSet", domain: LDWDomain) -> "HeapSet":
        if not other.heaps or other is self:
            return self
        if not self.heaps:
            return other
        out = dict(self.heaps)
        for key, heap in other.heaps.items():
            mine = out.get(key)
            out[key] = heap if mine is None else mine.join(heap, domain)
        return HeapSet(out)

    def widen(self, other: "HeapSet", domain: LDWDomain) -> "HeapSet":
        if not other.heaps or other is self:
            return self
        if not self.heaps:
            return other
        out = dict(self.heaps)
        for key, heap in other.heaps.items():
            mine = out.get(key)
            out[key] = heap if mine is None else mine.widen(heap, domain)
        return HeapSet(out)

    # -- transformation -----------------------------------------------------------------

    def map(
        self,
        domain: LDWDomain,
        transform: Callable[[AbstractHeap], Iterable[AbstractHeap]],
    ) -> "HeapSet":
        """Apply a heap transformer (possibly one-to-many) and renormalize."""
        results: List[AbstractHeap] = []
        identical = True
        for heap in self.heaps.values():
            outs = list(transform(heap))
            if identical and not (len(outs) == 1 and outs[0] is heap):
                identical = False
            results.extend(outs)
        if identical:
            # Identity transform: members are already canonical and keyed;
            # reuse this set (and its cached stable hash) unchanged.
            return self
        return HeapSet.of(domain, results)

    def describe(self, domain: LDWDomain) -> str:
        if not self.heaps:
            return "bottom"
        return "\n".join(h.describe(domain) for h in self.heaps.values())

    def __repr__(self) -> str:
        return f"HeapSet({len(self.heaps)} heaps)"
