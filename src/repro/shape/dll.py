"""Doubly-linked list reasoning over the backbone graph.

The backbone abstraction (:mod:`repro.shape.graph`) tracks three optional
attributes for DLL programs, all of which are empty for ``prev``-free
programs:

``prevof[n] = t``
    ``first(n).prev == first(t)`` (or ``NULL``) — the fact a single
    ``p->prev = q`` store creates.

``n in dllseg``
    Every *interior* link of the collapsed segment ``n`` is back-linked:
    ``c.next.prev == c`` for consecutive cells inside ``n``.  Vacuously
    true for singleton segments.

``n in backlink``
    The *boundary* link of ``n`` is back-linked:
    ``first(succ(n)).prev == last(n)``.

This module turns those per-segment facts into a verdict about whole
lists: :func:`classify` decides whether the chain reachable from a set of
root labels is certainly a well-formed DLL (every forward link matched by
a back link, head's ``prev`` is ``NULL``), certainly broken, or unknown.
The Tier-B checker's ``safety.dll-consistent`` rule evaluates it on every
exit heap of the analyzed procedure.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

from repro.shape.graph import NULL, HeapGraph

__all__ = [
    "chain",
    "classify",
    "classify_heap",
    "CONSISTENT",
    "BROKEN",
    "UNKNOWN",
]

CONSISTENT = "consistent"
BROKEN = "broken"
UNKNOWN = "unknown"

# Decides whether the LDW value entails ``len(node) == 1``; the shape
# graph alone cannot (a collapsed segment denotes any non-empty list).
EntailsLen1 = Callable[[str], bool]


def chain(graph: HeapGraph, node: str) -> Optional[List[str]]:
    """The succ chain from ``node`` to ``NULL``; ``None`` if it cycles."""
    out: List[str] = []
    seen = set()
    here = node
    while here != NULL:
        if here in seen:
            return None
        seen.add(here)
        out.append(here)
        here = graph.succ.get(here, NULL)
    return out


def _boundary_ok(
    graph: HeapGraph, n: str, m: str, entails_len1: EntailsLen1
) -> Tuple[bool, bool]:
    """(definitely back-linked, definitely broken) for the link n -> m."""
    if n in graph.backlink:
        return True, False
    t = graph.prevof.get(m)
    if t is None:
        return False, False
    if t != n:
        # first(m).prev is a cell of a *different* segment (or NULL),
        # never last(n): the back pointer provably mismatches.
        return False, True
    # prevof[m] == n says first(m).prev == first(n); that is last(n)
    # exactly when the segment is a single cell.
    return entails_len1(n), False


def _head_ok(
    graph: HeapGraph, head: str, entails_len1: EntailsLen1
) -> Tuple[bool, bool]:
    """(definitely fine, definitely broken) for a chain's first node.

    The invariant at the head is ``head.prev.next == head`` whenever
    ``head.prev`` is a cell: a ``NULL`` prev is a true head, and a defined
    non-NULL prev must be matched by its owner's forward link.  A root may
    point mid-list, so an *unknown* prev is vouched for by a unique
    backbone predecessor whose boundary is back-linked.
    """
    t = graph.prevof.get(head)
    if t == NULL:
        return True, False  # a true head
    preds = [p for p in graph.preds(head) if p != NULL]
    if t is not None:
        # head.prev == first(t): matched exactly when t's forward link
        # closes back onto head and t is a single cell.
        if t in preds:
            return entails_len1(t), False
        return False, True  # t's forward link provably bypasses head
    if len(preds) == 1:
        return _boundary_ok(graph, preds[0], head, entails_len1)
    # No (or several) predecessors and an unknown prev: can't decide.
    return False, False


def classify(
    graph: HeapGraph,
    roots: Iterable[str],
    entails_len1: EntailsLen1,
) -> str:
    """Classify the lists hanging off ``roots`` (label names).

    ``consistent``: every chain from a root is provably a well-formed
    DLL — all interior links back-linked (``dllseg``), every boundary
    back-linked (``backlink`` or a matching singleton ``prevof``), and
    the head's ``prev`` is ``NULL``.

    ``broken``: some back pointer provably mismatches its forward link,
    or a head's ``prev`` is provably a non-NULL cell.

    ``unknown``: neither is provable from the attributes.
    """
    verdict = CONSISTENT
    for root in roots:
        node = graph.labels.get(root, NULL)
        if node == NULL:
            continue  # the empty list is a (vacuous) DLL
        nodes = chain(graph, node)
        if nodes is None:
            return UNKNOWN  # cyclic backbone: out of this fragment's scope
        head_ok, head_broken = _head_ok(graph, nodes[0], entails_len1)
        if head_broken:
            return BROKEN
        if not head_ok:
            verdict = UNKNOWN
        for n in nodes:
            if n not in graph.dllseg:
                verdict = UNKNOWN
        for n, m in zip(nodes, nodes[1:]):
            ok, broken = _boundary_ok(graph, n, m, entails_len1)
            if broken:
                return BROKEN
            if not ok:
                verdict = UNKNOWN
    return verdict


def classify_heap(heap, domain, roots: Iterable[str]) -> str:
    """:func:`classify` with length entailment read off the heap's value."""
    from repro.core.transfer import Transfer

    transfer = Transfer(domain, dll=True)

    def entails_len1(node: str) -> bool:
        return transfer._entails_len1(heap.value, node)

    return classify(heap.graph, roots, entails_len1)
