"""Abstract heaps: a backbone graph plus an LDW value (paper Def. 3.2).

The LDW value constrains one data word per non-NULL node (the word
variable is the node name).  All operations are parameterized by the LDW
domain, so the same heap machinery serves AHS(AU) and AHS(AM).

``fold()`` implements the k-bound of k-abstract heaps: while more than
``k`` simple nodes remain, a simple node is merged into its unique
predecessor with the domain's ``concat#``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.datawords.base import LDWDomain
from repro.shape.graph import NULL, HeapGraph, ShapeError


class AbstractHeap:
    """An immutable (graph, LDW value) pair."""

    __slots__ = ("graph", "value", "_stable_hash")

    def __init__(self, graph: HeapGraph, value):
        self.graph = graph
        self.value = value
        self._stable_hash = None  # filled by repro.engine.canon.heap_hash

    # -- basics -------------------------------------------------------------------

    @staticmethod
    def empty(domain: LDWDomain, pointer_vars: Iterable[str]) -> "AbstractHeap":
        return AbstractHeap(HeapGraph.empty(pointer_vars), domain.top())

    def is_bottom(self, domain: LDWDomain) -> bool:
        return domain.is_bottom(self.value)

    def words(self) -> List[str]:
        return self.graph.word_nodes()

    def canonicalize(self, domain: LDWDomain) -> "AbstractHeap":
        graph, renaming = self.graph.canonical()
        if graph is self.graph:
            # Identity renaming: this heap already is its canonical form.
            # Returning self keeps the cached _stable_hash slot alive.
            return self
        nontrivial = {a: b for a, b in renaming.items() if a != b}
        if not nontrivial:
            return AbstractHeap(graph, self.value)
        return AbstractHeap(graph, domain.rename_words(self.value, nontrivial))

    def gc(self, domain: LDWDomain) -> "AbstractHeap":
        """Drop unreachable nodes (the paper assumes garbage collection)."""
        garbage = self.graph.garbage()
        if not garbage:
            return self
        graph = self.graph.without_nodes(garbage)
        value = domain.project_words(self.value, garbage)
        return AbstractHeap(graph, value)

    # -- lattice (isomorphic graphs only; heap sets handle the rest) ----------------

    def leq(self, other: "AbstractHeap", domain: LDWDomain) -> bool:
        if domain.is_bottom(self.value):
            return True
        mine = self.canonicalize(domain)
        theirs = other.canonicalize(domain)
        if mine.graph is not theirs.graph:
            # Unequal signatures prove non-isomorphism without touching
            # the (larger) node/succ/label dict comparison.
            if mine.graph.signature() != theirs.graph.signature():
                return False
            if mine.graph != theirs.graph:
                return False
        return domain.leq(mine.value, theirs.value)

    def join(self, other: "AbstractHeap", domain: LDWDomain) -> "AbstractHeap":
        mine = self.canonicalize(domain)
        theirs = other.canonicalize(domain)
        if mine.graph != theirs.graph:
            raise ShapeError("join of non-isomorphic heaps")
        return AbstractHeap(mine.graph, domain.join(mine.value, theirs.value))

    def widen(self, other: "AbstractHeap", domain: LDWDomain) -> "AbstractHeap":
        mine = self.canonicalize(domain)
        theirs = other.canonicalize(domain)
        if mine.graph != theirs.graph:
            raise ShapeError("widen of non-isomorphic heaps")
        return AbstractHeap(mine.graph, domain.widen(mine.value, theirs.value))

    def meet_value(self, value, domain: LDWDomain) -> "AbstractHeap":
        return AbstractHeap(self.graph, domain.meet(self.value, value))

    # -- folding -----------------------------------------------------------------------

    def fold(self, domain: LDWDomain, k: int = 0) -> "AbstractHeap":
        """Merge simple nodes into predecessors until at most k remain."""
        heap = self
        guard = 0
        while True:
            simple = heap.graph.simple_nodes()
            if len(simple) <= k:
                return heap
            guard += 1
            if guard > 1000:  # pragma: no cover - structural safety net
                raise ShapeError("fold did not converge")
            merged = False
            for node in simple:
                preds = heap.graph.preds(node)
                if len(preds) != 1 or preds[0] == node:
                    continue  # shared from elsewhere or a self-loop
                pred = preds[0]
                heap = heap._merge_into(pred, node, domain)
                merged = True
                break
            if not merged:
                return heap  # only unfoldable simple nodes remain

    def _merge_into(self, pred: str, node: str, domain: LDWDomain) -> "AbstractHeap":
        graph = self.graph
        succ_of_node = graph.succ.get(node)
        new_succ = dict(graph.succ)
        new_succ.pop(node)
        if succ_of_node is not None:
            new_succ[pred] = succ_of_node
        else:
            new_succ.pop(pred, None)
        # prevof facts name *first* cells: ``prevof[m] = t`` says
        # ``first(m).prev == first(t)``.  Merging node into pred makes
        # first(node) an interior cell, so facts about it (either side)
        # die; facts about first(pred) survive unchanged.
        prevof: Dict[str, str] = {
            m: t
            for m, t in graph.prevof.items()
            if m != node and t != node
        }
        # The merged segment's interior is interior(pred) + the pred->node
        # boundary + interior(node); its boundary link is node's.
        dllseg = set(graph.dllseg)
        merged_dll = (
            pred in graph.dllseg
            and node in graph.dllseg
            and pred in graph.backlink
        )
        dllseg.discard(pred)
        dllseg.discard(node)
        if merged_dll:
            dllseg.add(pred)
        backlink = set(graph.backlink)
        backlink.discard(pred)
        backlink.discard(node)
        if node in graph.backlink:
            backlink.add(pred)
        new_graph = HeapGraph(
            (graph.nodes - {NULL}) - {node}, new_succ, graph.labels,
            prevof, dllseg, backlink
        )
        value = _concat(domain, self.value, pred, [pred, node], graph.word_nodes())
        return AbstractHeap(new_graph, value)

    # -- display ------------------------------------------------------------------------

    def describe(self, domain: LDWDomain) -> str:
        return f"{self.graph!r} with {domain.describe(self.value)}"

    def __repr__(self) -> str:
        return f"AbstractHeap({self.graph!r})"


def _concat(domain: LDWDomain, value, target: str, parts, all_words):
    """Call the domain's concat, passing the vocabulary when supported."""
    try:
        return domain.concat(value, target, parts, all_words=all_words)
    except TypeError:
        return domain.concat(value, target, parts)


def split_word(domain: LDWDomain, value, word: str, tail: str, all_words):
    """Call the domain's split, passing the vocabulary when supported."""
    try:
        return domain.split(value, word, tail, all_words=all_words)
    except TypeError:
        return domain.split(value, word, tail)
