"""Heap backbone graphs (paper §3.1).

A backbone abstracts the heap graph: every *crucial* node (pointed to by a
program variable, or with ≥ 2 predecessors) is kept; an edge ``n -> m``
abstracts a ``next``-path without intermediate crucial nodes; the node's
*data word* carries the integers along the collapsed path.  The
distinguished node :data:`NULL` represents the null pointer and carries no
word.

Graphs here are immutable; mutation helpers return fresh graphs.  Node
identity is by name (``n0``, ``n1``, ...); :meth:`HeapGraph.canonical`
renames nodes into a deterministic BFS order from the sorted label set, so
two graphs are isomorphic iff their canonical forms are equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

NULL = "null"


class ShapeError(Exception):
    pass


class HeapGraph:
    """An immutable backbone: nodes, successor map, variable labels.

    Doubly-linked heaps add three optional components, all empty for
    singly-linked programs (empty attributes leave ``key()``,
    ``signature()`` and equality bit-identical to the SLL representation):

    - ``prevof[n] = t``: the *first* cell of segment ``n`` has an explicit
      ``prev`` pointer to the *first* cell of ``t`` (or to NULL) — the
      exact fact a ``p->prev = q`` store creates;
    - ``dllseg``: segments whose *interior* links are back-linked, i.e.
      every adjacent cell pair inside the collapsed segment satisfies
      ``c.next.prev == c`` (vacuously true for length-1 segments);
    - ``backlink``: segments ``n`` whose *boundary* link is back-linked:
      ``first(succ(n)).prev == last(n)``.
    """

    __slots__ = ("nodes", "succ", "labels", "prevof", "dllseg", "backlink",
                 "_key", "_stable_hash", "_renaming", "_sig")

    def __init__(
        self,
        nodes: Iterable[str],
        succ: Mapping[str, str],
        labels: Mapping[str, str],
        prevof: Optional[Mapping[str, str]] = None,
        dllseg: Iterable[str] = (),
        backlink: Iterable[str] = (),
    ):
        self.nodes: FrozenSet[str] = frozenset(nodes) | {NULL}
        self.succ: Dict[str, str] = dict(succ)
        self.labels: Dict[str, str] = dict(labels)
        self.prevof: Dict[str, str] = dict(prevof) if prevof else {}
        self.dllseg: FrozenSet[str] = frozenset(dllseg)
        self.backlink: FrozenSet[str] = frozenset(backlink)
        self._key = None
        self._stable_hash = None  # filled by repro.engine.canon.graph_hash
        self._renaming = None  # cached canonical renaming (BFS order)
        self._sig = None  # cached cheap isomorphism-invariant signature
        if NULL in self.succ:
            raise ShapeError("NULL has no successor")
        for n, m in self.succ.items():
            if n not in self.nodes or m not in self.nodes:
                raise ShapeError(f"dangling edge {n} -> {m}")
        for var, n in self.labels.items():
            if n not in self.nodes:
                raise ShapeError(f"label {var} on missing node {n}")
        if self.prevof:
            for n, t in self.prevof.items():
                if n not in self.nodes or n == NULL or t not in self.nodes:
                    raise ShapeError(f"dangling prev {n} -> {t}")
        for n in self.dllseg | self.backlink:
            if n not in self.nodes or n == NULL:
                raise ShapeError(f"DLL attribute on missing node {n}")

    def dll_attrs(self) -> Tuple[Dict[str, str], FrozenSet[str], FrozenSet[str]]:
        return self.prevof, self.dllseg, self.backlink

    def has_dll_attrs(self) -> bool:
        return bool(self.prevof or self.dllseg or self.backlink)

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def empty(pointer_vars: Iterable[str]) -> "HeapGraph":
        """All pointers NULL."""
        return HeapGraph((), {}, {v: NULL for v in pointer_vars})

    # -- queries -------------------------------------------------------------------

    def node_of(self, var: str) -> str:
        if var not in self.labels:
            raise ShapeError(f"unlabeled variable {var!r}")
        return self.labels[var]

    def vars_of(self, node: str) -> List[str]:
        return sorted(v for v, n in self.labels.items() if n == node)

    def preds(self, node: str) -> List[str]:
        return sorted(n for n, m in self.succ.items() if m == node)

    def word_nodes(self) -> List[str]:
        """All nodes carrying a data word (everything but NULL)."""
        return sorted(self.nodes - {NULL})

    def is_crucial(self, node: str) -> bool:
        if node == NULL:
            return True
        if self.vars_of(node):
            return True
        return len(self.preds(node)) >= 2

    def simple_nodes(self) -> List[str]:
        return [n for n in self.word_nodes() if not self.is_crucial(n)]

    def reachable_from(self, roots: Iterable[str]) -> FrozenSet[str]:
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.nodes]
        dll = bool(self.prevof or self.backlink)
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            nxt = self.succ.get(n)
            if nxt is not None:
                stack.append(nxt)
            if dll:
                # prev pointers keep cells reachable: follow explicit
                # head back-pointers and reversed boundary back-links.
                t = self.prevof.get(n)
                if t is not None and t != NULL:
                    stack.append(t)
                for p in self.backlink:
                    if self.succ.get(p) == n:
                        stack.append(p)
        return frozenset(seen)

    def reachable_from_vars(self, variables: Iterable[str]) -> FrozenSet[str]:
        return self.reachable_from(
            self.labels[v] for v in variables if v in self.labels
        )

    def garbage(self) -> FrozenSet[str]:
        live = self.reachable_from(self.labels.values()) | {NULL}
        return self.nodes - live

    # -- mutation helpers (return fresh graphs) ---------------------------------------

    def with_label(self, var: str, node: str) -> "HeapGraph":
        labels = dict(self.labels)
        labels[var] = node
        return HeapGraph(self.nodes - {NULL}, self.succ, labels,
                         self.prevof, self.dllseg, self.backlink)

    def without_labels(self, variables: Iterable[str]) -> "HeapGraph":
        drop = set(variables)
        labels = {v: n for v, n in self.labels.items() if v not in drop}
        return HeapGraph(self.nodes - {NULL}, self.succ, labels,
                         self.prevof, self.dllseg, self.backlink)

    def with_node(self, node: str, succ: Optional[str] = None) -> "HeapGraph":
        nodes = set(self.nodes - {NULL})
        nodes.add(node)
        succs = dict(self.succ)
        if succ is not None:
            succs[node] = succ
        return HeapGraph(nodes, succs, self.labels,
                         self.prevof, self.dllseg, self.backlink)

    def with_succ(self, node: str, succ: Optional[str]) -> "HeapGraph":
        succs = dict(self.succ)
        if succ is None:
            succs.pop(node, None)
        else:
            succs[node] = succ
        return HeapGraph(self.nodes - {NULL}, succs, self.labels,
                         self.prevof, self.dllseg, self.backlink)

    def with_dll_attrs(
        self,
        prevof: Optional[Mapping[str, str]] = None,
        dllseg: Optional[Iterable[str]] = None,
        backlink: Optional[Iterable[str]] = None,
    ) -> "HeapGraph":
        """Replace DLL attributes (None keeps the current component)."""
        return HeapGraph(
            self.nodes - {NULL},
            self.succ,
            self.labels,
            self.prevof if prevof is None else prevof,
            self.dllseg if dllseg is None else dllseg,
            self.backlink if backlink is None else backlink,
        )

    def without_nodes(self, drop: Iterable[str]) -> "HeapGraph":
        dropped = set(drop)
        if NULL in dropped:
            raise ShapeError("cannot drop NULL")
        for var, n in self.labels.items():
            if n in dropped:
                raise ShapeError(f"cannot drop labeled node {n} ({var})")
        nodes = self.nodes - {NULL} - dropped
        succs = {
            n: m
            for n, m in self.succ.items()
            if n not in dropped and m not in dropped
        }
        prevof = {
            n: t
            for n, t in self.prevof.items()
            if n not in dropped and t not in dropped
        }
        # A boundary back-link is a fact about the succ edge; it dies
        # with either endpoint.
        backlink = frozenset(
            n
            for n in self.backlink
            if n not in dropped and self.succ.get(n) not in dropped
        )
        return HeapGraph(nodes, succs, self.labels,
                         prevof, self.dllseg - dropped, backlink)

    def rename_nodes(self, mapping: Mapping[str, str]) -> "HeapGraph":
        def rn(n: str) -> str:
            return mapping.get(n, n)

        nodes = {rn(n) for n in self.nodes - {NULL}}
        succ = {rn(n): rn(m) for n, m in self.succ.items()}
        labels = {v: rn(n) for v, n in self.labels.items()}
        prevof = {rn(n): rn(t) for n, t in self.prevof.items()}
        dllseg = frozenset(rn(n) for n in self.dllseg)
        backlink = frozenset(rn(n) for n in self.backlink)
        return HeapGraph(nodes, succ, labels, prevof, dllseg, backlink)

    def fresh_node_name(self, taken: Iterable[str] = ()) -> str:
        used = set(self.nodes) | set(taken)
        i = 0
        while f"n{i}" in used:
            i += 1
        return f"n{i}"

    # -- canonicalization ----------------------------------------------------------------

    def canonical_renaming(self) -> Dict[str, str]:
        """Deterministic BFS naming from the sorted variable labels."""
        if self._renaming is not None:
            return self._renaming
        order: List[str] = []
        seen: Set[str] = set([NULL])
        for var in sorted(self.labels):
            node = self.labels[var]
            current = node
            while current is not None and current not in seen:
                seen.add(current)
                order.append(current)
                current = self.succ.get(current)
        if self.prevof or self.backlink:
            # Nodes reachable only through prev pointers: chase them in
            # discovery order so DLL canonical naming stays deterministic.
            i = 0
            while i < len(order):
                here = order[i]
                i += 1
                nexts = []
                t = self.prevof.get(here)
                if t is not None:
                    nexts.append(t)
                nexts.extend(
                    p for p in sorted(self.backlink) if self.succ.get(p) == here
                )
                for current in nexts:
                    while current is not None and current not in seen:
                        seen.add(current)
                        order.append(current)
                        current = self.succ.get(current)
        # Unreachable (garbage) nodes, in sorted order, at the end.
        for node in sorted(self.nodes - seen):
            order.append(node)
        self._renaming = {n: f"n{i}" for i, n in enumerate(order)}
        return self._renaming

    def canonical(self) -> Tuple["HeapGraph", Dict[str, str]]:
        renaming = self.canonical_renaming()
        if all(a == b for a, b in renaming.items()):
            # Already canonically named: renaming is the identity, so the
            # renamed graph would equal this one -- reuse it (and its
            # cached key/hash/signature slots) instead of rebuilding.
            return self, renaming
        return self.rename_nodes(renaming), renaming

    def signature(self) -> Tuple:
        """Cheap isomorphism-invariant fingerprint (pre-filter for keys).

        Components -- node count, edge count, and program variables
        grouped by their target node (with a NULL marker) -- are all
        invariant under node renaming, so unequal signatures prove two
        graphs non-isomorphic without computing a canonical renaming.
        Equal signatures decide nothing; callers fall through to the
        full canonical key.
        """
        if self._sig is None:
            groups: Dict[str, List[str]] = {}
            for var, node in self.labels.items():
                groups.setdefault(node, []).append(var)
            self._sig = (
                len(self.nodes),
                len(self.succ),
                tuple(sorted(
                    (tuple(sorted(vs)), node == NULL)
                    for node, vs in groups.items()
                )),
            )
            if self.has_dll_attrs():
                # Counts are renaming-invariant; appended only for DLL
                # graphs so SLL signatures stay bit-identical.
                self._sig = self._sig + (
                    len(self.prevof),
                    len(self.dllseg),
                    len(self.backlink),
                )
        return self._sig

    def key(self) -> Tuple:
        """Hashable canonical key: equal iff graphs are isomorphic
        (respecting variable labels)."""
        if self._key is None:
            canon, _ = self.canonical()
            self._key = (
                tuple(sorted(canon.nodes)),
                tuple(sorted(canon.succ.items())),
                tuple(sorted(canon.labels.items())),
            )
            if canon.has_dll_attrs():
                # Appended only when present: prev-free graphs keep the
                # exact pre-DLL key (and stable hash).
                self._key = self._key + (
                    tuple(sorted(canon.prevof.items())),
                    tuple(sorted(canon.dllseg)),
                    tuple(sorted(canon.backlink)),
                )
        return self._key

    def isomorphic(self, other: "HeapGraph") -> bool:
        if self.signature() != other.signature():
            return False
        return self.key() == other.key()

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, HeapGraph)
            and self.nodes == other.nodes
            and self.succ == other.succ
            and self.labels == other.labels
            and self.prevof == other.prevof
            and self.dllseg == other.dllseg
            and self.backlink == other.backlink
        )

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        parts = []
        for n in self.word_nodes():
            vars_ = ",".join(self.vars_of(n))
            nxt = self.succ.get(n, "?")
            label = f"{n}({vars_})" if vars_ else n
            marks = ""
            if n in self.dllseg:
                marks += "="
            if n in self.backlink:
                marks += "<"
            if n in self.prevof:
                marks += f"^{self.prevof[n]}"
            parts.append(f"{label}{marks}->{nxt}")
        null_vars = ",".join(self.vars_of(NULL))
        if null_vars:
            parts.append(f"null({null_vars})")
        return "Graph[" + " ".join(parts) + "]"
