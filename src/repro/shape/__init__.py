"""Abstract heaps (paper §3.1): bounded backbone graphs + LDW formulas.

- :mod:`repro.shape.graph` -- the heap backbone: nodes are list segments
  without sharing, edges follow ``next`` paths, labels place the program's
  pointer variables; canonicalization decides isomorphism.
- :mod:`repro.shape.abstract_heap` -- a backbone paired with a value from a
  logical data-word domain constraining the node words (Def. 3.2), plus
  ``fold#`` (the k-bound on simple nodes) and garbage collection.
- :mod:`repro.shape.heap_set` -- finite sets of non-isomorphic abstract
  heaps, the elements of AHS(k, AW) (Def. 3.3).
"""

from repro.shape.graph import NULL, HeapGraph
from repro.shape.abstract_heap import AbstractHeap
from repro.shape.heap_set import HeapSet

__all__ = ["NULL", "HeapGraph", "AbstractHeap", "HeapSet"]
