"""Concrete semantics of LISL (paper §2): heaps and an ICFG interpreter.

Used as the *soundness oracle*: the differential test harness runs each
benchmark procedure concretely on randomized inputs and checks that every
synthesized abstract summary holds of the observed input/output relation.
"""

from repro.concrete.heap import Cell, from_cells, to_cells
from repro.concrete.interp import (
    AssertFailure,
    AssumeFailure,
    ConcreteError,
    Interpreter,
)

__all__ = [
    "Cell",
    "to_cells",
    "from_cells",
    "Interpreter",
    "ConcreteError",
    "AssertFailure",
    "AssumeFailure",
]
