"""A small-step interpreter over the ICFG (concrete semantics, paper §2).

Executes exactly the normalized operation alphabet the abstract
transformers handle, so the differential tests exercise the same pipeline
end to end (parser → normalizer → CFG → semantics).

Call-by-value: at a call, argument *values* (cell references and integers)
are bound to the callee's formal inputs; the callee runs to its exit; the
output parameter values flow back into the caller's targets.  Since cell
references are shared, heap mutations by the callee are visible to the
caller -- the paper's local-heap semantics.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Union

from repro.concrete.heap import Cell, from_cells
from repro.lang import ast as A
from repro.lang.cfg import (
    CFG,
    ICFG,
    OpAssert,
    OpAssignData,
    OpAssignPtr,
    OpAssume,
    OpAssumeData,
    OpAssumePtr,
    OpCall,
    OpSkip,
    OpStoreData,
    OpStoreNext,
    OpStorePrev,
)

Value = Union[int, Optional[Cell]]


class ConcreteError(Exception):
    """Null dereference, non-determinism, or step-budget exhaustion.

    ``proc``/``line`` locate the faulting edge when known (attributed by
    :meth:`Interpreter._step`, innermost frame wins) so differential
    harnesses can match concrete faults against checker sites.
    """

    def __init__(self, message: str, proc: Optional[str] = None,
                 line: Optional[int] = None):
        super().__init__(message)
        self.proc = proc
        self.line = line


class AssumeFailure(Exception):
    """An ``assume`` did not hold: the path is infeasible."""


class AssertFailure(Exception):
    """An ``assert`` was violated."""


class Interpreter:
    def __init__(self, icfg: ICFG, max_steps: int = 2_000_000):
        self.icfg = icfg
        self.max_steps = max_steps
        self.steps = 0
        # Optional hook called at every frame exit with
        # (proc_name, env, cfg); used by the checker cross-validation to
        # observe leaks/cycles without changing the semantics.
        self.frame_observer = None
        # Optional hook called with (cfg, edge, env) just before the taken
        # edge executes (assume or action); used by the termination
        # cross-validation to count loop-head arrivals and watch measures.
        # Observers may stash per-frame state in env under "$"-prefixed
        # keys ("$" never occurs in LISL identifiers).
        self.edge_observer = None

    # -- public API ------------------------------------------------------------

    def run(self, proc_name: str, args: Sequence[Value]) -> List[Value]:
        """Run a procedure on argument values; returns output values."""
        self.steps = 0
        return self._run_proc(proc_name, list(args))

    # -- engine -------------------------------------------------------------------

    def _run_proc(self, proc_name: str, args: List[Value]) -> List[Value]:
        cfg = self.icfg.cfg(proc_name)
        if len(args) != len(cfg.inputs):
            raise ConcreteError(
                f"{proc_name} expects {len(cfg.inputs)} arguments"
            )
        env: Dict[str, Value] = {}
        for param in cfg.inputs:
            env[param.name] = args.pop(0)
        for param in list(cfg.outputs) + list(cfg.locals):
            env[param.name] = 0 if param.type == A.INT else None
        node = cfg.entry
        while node != cfg.exit:
            self.steps += 1
            if self.steps > self.max_steps:
                raise ConcreteError("step budget exhausted (diverging run?)")
            node = self._step(cfg, node, env)
        if self.frame_observer is not None:
            self.frame_observer(proc_name, env, cfg)
        return [env[p.name] for p in cfg.outputs]

    def _step(self, cfg: CFG, node: int, env: Dict[str, Value]) -> int:
        edges = cfg.out_edges(node)
        if not edges:
            raise ConcreteError(f"stuck at node {node} of {cfg.proc_name}")
        assume_edges = [
            e for e in edges if isinstance(e.op, (OpAssumePtr, OpAssumeData))
        ]
        if assume_edges:
            if len(assume_edges) != len(edges):
                raise ConcreteError("mixed assume and action edges")
            for edge in assume_edges:
                if self._locate(edge, cfg, self._test, edge.op, env):
                    if self.edge_observer is not None:
                        self.edge_observer(cfg, edge, env)
                    return edge.dst
            raise ConcreteError(
                f"no branch taken at node {node} of {cfg.proc_name}"
            )
        if len(edges) != 1:
            # Join points carry several skip edges inward, never outward.
            raise ConcreteError(f"non-deterministic action at node {node}")
        edge = edges[0]
        if self.edge_observer is not None:
            self.edge_observer(cfg, edge, env)
        self._locate(edge, cfg, self._execute, edge.op, env)
        return edge.dst

    def _locate(self, edge, cfg: CFG, fn, *args):
        """Run ``fn``, attributing a raised :class:`ConcreteError` to this
        edge's (proc, line) unless an inner frame already claimed it."""
        try:
            return fn(*args)
        except ConcreteError as exc:
            if exc.proc is None:
                exc.proc = cfg.proc_name
                exc.line = edge.line or None
            raise

    # -- operations ---------------------------------------------------------------

    def _execute(self, op, env: Dict[str, Value]) -> None:
        if isinstance(op, OpSkip):
            return
        if isinstance(op, OpAssignPtr):
            if op.kind == "null":
                env[op.target] = None
            elif op.kind == "new":
                env[op.target] = Cell(0)
            elif op.kind == "var":
                env[op.target] = env[op.source]
            elif op.kind == "prev":
                base = env[op.source]
                if base is None:
                    raise ConcreteError(f"NULL dereference: {op.source}->prev")
                env[op.target] = base.prev
            else:  # next
                base = env[op.source]
                if base is None:
                    raise ConcreteError(f"NULL dereference: {op.source}->next")
                env[op.target] = base.next
            return
        if isinstance(op, OpStoreNext):
            base = env[op.target]
            if base is None:
                raise ConcreteError(f"NULL dereference: {op.target}->next=")
            base.next = None if op.source is None else env[op.source]
            return
        if isinstance(op, OpStorePrev):
            base = env[op.target]
            if base is None:
                raise ConcreteError(f"NULL dereference: {op.target}->prev=")
            base.prev = None if op.source is None else env[op.source]
            return
        if isinstance(op, OpStoreData):
            base = env[op.target]
            if base is None:
                raise ConcreteError(f"NULL dereference: {op.target}->data=")
            base.data = self._eval_data(op.expr, env)
            return
        if isinstance(op, OpAssignData):
            env[op.target] = self._eval_data(op.expr, env)
            return
        if isinstance(op, OpCall):
            args = [env[a] for a in op.args]
            results = self._run_proc(op.proc, args)
            for target, value in zip(op.targets, results):
                env[target] = value
            return
        if isinstance(op, OpAssume):
            if not self._eval_spec(op.formula, env):
                raise AssumeFailure(str(op.formula))
            return
        if isinstance(op, OpAssert):
            if not self._eval_spec(op.formula, env):
                raise AssertFailure(str(op.formula))
            return
        raise ConcreteError(f"unknown operation {op!r}")

    def _test(self, op, env: Dict[str, Value]) -> bool:
        if isinstance(op, OpAssumePtr):
            left = env[op.left]
            right = None if op.right is None else env[op.right]
            return (left is right) == op.equal
        left = self._eval_data(op.left, env)
        right = self._eval_data(op.right, env)
        return {
            "==": left == right,
            "<": left < right,
            "<=": left <= right,
            ">": left > right,
            ">=": left >= right,
        }[op.op]

    def _eval_data(self, expr: A.Expr, env: Dict[str, Value]) -> int:
        if isinstance(expr, A.IntLit):
            return expr.value
        if isinstance(expr, A.Var):
            value = env[expr.name]
            if not isinstance(value, int):
                raise ConcreteError(f"{expr.name} is not an integer")
            return value
        if isinstance(expr, A.DataOf):
            base = env[expr.base.name]
            if base is None:
                raise ConcreteError(f"NULL dereference: {expr.base}->data")
            return base.data
        if isinstance(expr, A.BinOp):
            left = self._eval_data(expr.left, env)
            right = self._eval_data(expr.right, env)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
        raise ConcreteError(f"cannot evaluate {expr!r}")

    def _eval_spec(self, formula: A.SpecFormula, env: Dict[str, Value]) -> bool:
        for atom in formula.atoms:
            if atom.kind == "sorted":
                values = from_cells(env[atom.args[0]])
                if any(a > b for a, b in zip(values, values[1:])):
                    return False
            elif atom.kind == "ms_eq":
                a = Counter(from_cells(env[atom.args[0]]))
                b = Counter(from_cells(env[atom.args[1]]))
                if a != b:
                    return False
            elif atom.kind == "equal":
                if from_cells(env[atom.args[0]]) != from_cells(env[atom.args[1]]):
                    return False
            else:  # data comparison
                cmp = atom.cmp
                left = self._eval_data(cmp.left, env)
                right = self._eval_data(cmp.right, env)
                ok = {
                    "==": left == right,
                    "!=": left != right,
                    "<": left < right,
                    "<=": left <= right,
                    ">": left > right,
                    ">=": left >= right,
                }[cmp.op]
                if not ok:
                    return False
        return True
