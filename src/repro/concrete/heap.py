"""Concrete heap cells (paper Def. 2.1, operationally).

A heap is implicit in the Python object graph: :class:`Cell` objects with a
``data`` integer and a ``next`` reference (None encodes the distinguished
NULL node).  Helpers convert between Python lists of integers and cell
chains, and observe structure (length, values, sharing).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set


class Cell:
    """One list cell: ``struct list { int data; struct list *next; }``."""

    __slots__ = ("data", "next")

    def __init__(self, data: int = 0, next: Optional["Cell"] = None):
        self.data = data
        self.next = next

    def __repr__(self) -> str:
        return f"Cell({self.data})"


def to_cells(values: Iterable[int]) -> Optional[Cell]:
    """Build a fresh singly-linked list holding ``values`` in order."""
    head: Optional[Cell] = None
    tail: Optional[Cell] = None
    for value in values:
        cell = Cell(int(value))
        if head is None:
            head = cell
        else:
            tail.next = cell
        tail = cell
    return head


def from_cells(head: Optional[Cell], limit: int = 1_000_000) -> List[int]:
    """Read a list's values; raises on cycles (via the limit)."""
    out: List[int] = []
    seen: Set[int] = set()
    current = head
    while current is not None:
        if id(current) in seen or len(out) >= limit:
            raise ValueError("cyclic or overlong list")
        seen.add(id(current))
        out.append(current.data)
        current = current.next
    return out


def length(head: Optional[Cell]) -> int:
    return len(from_cells(head))


def cells_of(head: Optional[Cell]) -> List[Cell]:
    """The cell objects in order (for sharing/aliasing assertions)."""
    out: List[Cell] = []
    seen: Set[int] = set()
    current = head
    while current is not None:
        if id(current) in seen:
            raise ValueError("cyclic list")
        seen.add(id(current))
        out.append(current)
        current = current.next
    return out


def is_acyclic(head: Optional[Cell]) -> bool:
    try:
        from_cells(head)
        return True
    except ValueError:
        return False
