"""Concrete heap cells (paper Def. 2.1, operationally).

A heap is implicit in the Python object graph: :class:`Cell` objects with a
``data`` integer and a ``next`` reference (None encodes the distinguished
NULL node).  Helpers convert between Python lists of integers and cell
chains, and observe structure (length, values, sharing).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set


class Cell:
    """One list cell: ``struct list { int data; struct list *next, *prev; }``.

    ``prev`` stays None for singly-linked programs; the DLL builders and
    the back-pointer invariant oracle are the only consumers.
    """

    __slots__ = ("data", "next", "prev")

    def __init__(
        self,
        data: int = 0,
        next: Optional["Cell"] = None,
        prev: Optional["Cell"] = None,
    ):
        self.data = data
        self.next = next
        self.prev = prev

    def __repr__(self) -> str:
        return f"Cell({self.data})"


def to_cells(values: Iterable[int]) -> Optional[Cell]:
    """Build a fresh singly-linked list holding ``values`` in order."""
    head: Optional[Cell] = None
    tail: Optional[Cell] = None
    for value in values:
        cell = Cell(int(value))
        if head is None:
            head = cell
        else:
            tail.next = cell
        tail = cell
    return head


def from_cells(head: Optional[Cell], limit: int = 1_000_000) -> List[int]:
    """Read a list's values; raises on cycles (via the limit)."""
    out: List[int] = []
    seen: Set[int] = set()
    current = head
    while current is not None:
        if id(current) in seen or len(out) >= limit:
            raise ValueError("cyclic or overlong list")
        seen.add(id(current))
        out.append(current.data)
        current = current.next
    return out


def to_dll_cells(values: Iterable[int]) -> Optional[Cell]:
    """Build a fresh well-formed doubly-linked list holding ``values``."""
    head = to_cells(values)
    prev: Optional[Cell] = None
    current = head
    while current is not None:
        current.prev = prev
        prev = current
        current = current.next
    return head


def dll_violations(head: Optional[Cell], limit: int = 1_000_000) -> List[str]:
    """Concrete back-pointer invariant check (the ``--dll`` fuzz oracle).

    The invariant is the segment attribute's meaning, ``n.prev.next == n``
    for every reachable cell with a non-None ``prev``, plus matched
    interior links (``c.next.prev is c`` along the chain).  The head's
    ``prev`` may legitimately be non-None -- a returned pointer can aim
    mid-list while its predecessor's forward link still vouches for the
    back pointer -- but a *dangling* head back pointer
    (``head.prev.next is not head``) is a violation.
    Raises on cyclic/overlong chains like :func:`from_cells`.
    """
    out: List[str] = []
    if (
        head is not None
        and head.prev is not None
        and head.prev.next is not head
    ):
        out.append(
            f"head {head!r}: prev.next is {head.prev.next!r}, "
            f"expected {head!r}"
        )
    for i, cell in enumerate(cells_of(head)):
        if len(out) >= limit:  # pragma: no cover - defensive
            break
        if cell.next is not None and cell.next.prev is not cell:
            out.append(
                f"cell {i} ({cell!r}): next.prev is "
                f"{cell.next.prev!r}, expected {cell!r}"
            )
    return out


def is_wellformed_dll(head: Optional[Cell]) -> bool:
    return is_acyclic(head) and not dll_violations(head)


def length(head: Optional[Cell]) -> int:
    return len(from_cells(head))


def cells_of(head: Optional[Cell]) -> List[Cell]:
    """The cell objects in order (for sharing/aliasing assertions)."""
    out: List[Cell] = []
    seen: Set[int] = set()
    current = head
    while current is not None:
        if id(current) in seen:
            raise ValueError("cyclic list")
        seen.add(id(current))
        out.append(current)
        current = current.next
    return out


def is_acyclic(head: Optional[Cell]) -> bool:
    try:
        from_cells(head)
        return True
    except ValueError:
        return False
